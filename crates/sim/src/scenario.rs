//! Ready-made scenarios: the synthetic campus trace, the interception
//! attack, and a SYN flood — the workloads behind every figure in the
//! paper's evaluation.

use crate::endpoint::EndpointCfg;
use crate::flowgen::{Access, AddressPlan, ExternalRttModel, InternalRttModel, SizeModel};
use crate::netsim::{simulate, ConnSpec, Exchange, PathParams};
use crate::rng::SimRng;
use dart_packet::{FlowKey, Nanos, PacketMeta, MILLISECOND, SECOND};
use std::net::Ipv4Addr;

/// Per-connection metadata the scenario keeps alongside the trace.
#[derive(Clone, Debug)]
pub struct ConnInfo {
    /// Flow key (client → server).
    pub flow: FlowKey,
    /// Access class of the client.
    pub access: Access,
    /// Whether a live server existed (false = incomplete handshake).
    pub complete: bool,
    /// Whether the handshake actually finished in simulation.
    pub established: bool,
    /// Ground-truth base external-leg RTT.
    pub base_ext_rtt: Nanos,
    /// Ground-truth base internal-leg RTT.
    pub base_int_rtt: Nanos,
    /// Total retransmissions on the connection.
    pub retransmissions: u64,
}

/// Per-spin-flow metadata: ground truth for the QUIC flows a scenario
/// mixes into the trace (see [`crate::adversarial`]).
#[derive(Clone, Copy, Debug)]
pub struct SpinInfo {
    /// Flow key (client → server).
    pub flow: FlowKey,
    /// Ground-truth base RTT: `2 · (int_owd + ext_owd)`.
    pub base_rtt: Nanos,
    /// Post-interception RTT, when the flow's path steps mid-trace.
    pub stepped_rtt: Option<Nanos>,
}

/// A generated trace plus its ground truth.
#[derive(Clone, Debug)]
pub struct GeneratedTrace {
    /// Time-ordered packets as captured at the monitor.
    pub packets: Vec<PacketMeta>,
    /// Per-connection metadata (parallel to the generating specs).
    pub conns: Vec<ConnInfo>,
    /// Per-spin-flow metadata for the QUIC flows in the mix (empty for the
    /// TCP-only scenarios in this module).
    pub spin_flows: Vec<SpinInfo>,
}

impl GeneratedTrace {
    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when no packets were captured.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }
}

/// Configuration of the synthetic campus workload.
#[derive(Clone, Copy, Debug)]
pub struct CampusConfig {
    /// Total connections (complete + incomplete).
    pub connections: usize,
    /// Fraction with no live server (the paper's trace: 72.5%).
    pub incomplete_frac: f64,
    /// Connection arrivals spread uniformly over this window.
    pub duration: Nanos,
    /// Fraction of clients on the wireless subnet.
    pub wireless_frac: f64,
    /// Mean per-direction loss probability (drawn per connection).
    pub mean_loss: f64,
    /// Per-packet reordering probability.
    pub reorder: f64,
    /// Monitor capture-miss probability (creates §7's missed-ACK giants).
    pub monitor_miss: f64,
    /// Fraction of complete connections that linger and send keep-alives.
    pub keepalive_frac: f64,
    /// Fraction of connections that are uploads (request/response sizes
    /// swapped): client-to-server bulk data exercises the external leg with
    /// multi-segment windows, holes, and collapses.
    pub upload_frac: f64,
    /// Fraction of connections starting near the top of sequence space
    /// (forces wraparounds; the paper's trace had 4 in 15 minutes).
    pub wrap_frac: f64,
    /// Fraction of connections negotiating RFC 7323 timestamps (paper §8:
    /// "many services do not use them at all").
    pub ts_frac: f64,
    /// Fraction of complete connections whose server silently cuts off
    /// mid-transfer (§3.2): their in-flight records strand in the PT.
    pub cutoff_frac: f64,
    /// Transfer-size model.
    pub sizes: SizeModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CampusConfig {
    fn default() -> Self {
        CampusConfig {
            connections: 2_000,
            incomplete_frac: 0.725,
            duration: 30 * SECOND,
            wireless_frac: 0.80,
            mean_loss: 0.011,
            reorder: 0.005,
            monitor_miss: 0.008,
            keepalive_frac: 0.03,
            upload_frac: 0.12,
            wrap_frac: 0.003,
            ts_frac: 0.6,
            cutoff_frac: 0.015,
            sizes: SizeModel::default(),
            seed: 0xDA27,
        }
    }
}

/// Generate the synthetic campus trace.
pub fn campus(cfg: CampusConfig) -> GeneratedTrace {
    let mut rng = SimRng::new(cfg.seed);
    let mut plan = AddressPlan::new(200, &mut rng);
    let ext_model = ExternalRttModel::default();
    let int_model = InternalRttModel::default();

    let mut specs = Vec::with_capacity(cfg.connections);
    let mut metas = Vec::with_capacity(cfg.connections);
    for _ in 0..cfg.connections {
        let access = if rng.chance(cfg.wireless_frac) {
            Access::Wireless
        } else {
            Access::Wired
        };
        let flow = plan.flow(access, &mut rng);
        let complete = !rng.chance(cfg.incomplete_frac);
        let ext_rtt = ext_model.sample(&mut rng);
        let int_rtt = int_model.sample(access, &mut rng);
        let loss = (rng.exponential(cfg.mean_loss)).min(0.08);
        let keepalive = (complete && rng.chance(cfg.keepalive_frac))
            .then(|| (rng.range(5 * SECOND, 15 * SECOND), rng.range(1, 3) as u32));
        // Keep-alive (lingering) connections model endpoints behind flaky
        // capture: the monitor misses some of their ACKs, so the stranded
        // data packet is finally matched by a keep-alive ACK seconds later
        // (the paper's Fig. 9c multi-second tail).
        let monitor_miss = if keepalive.is_some() {
            0.08
        } else {
            cfg.monitor_miss
        };
        let path = PathParams {
            int_owd: int_rtt / 2,
            ext_owd: ext_rtt / 2,
            jitter: 0.04,
            loss_pre: loss / 2.0,
            loss_post: loss / 2.0,
            monitor_miss,
            reorder: cfg.reorder,
            reorder_extra: 2 * MILLISECOND,
            ext_owd_step: None,
        };
        let n_exchanges = cfg.sizes.exchanges(&mut rng);
        let upload = rng.chance(cfg.upload_frac);
        let exchanges: Vec<Exchange> = (0..n_exchanges)
            .map(|_| {
                let (a, b) = (cfg.sizes.request(&mut rng), cfg.sizes.response(&mut rng));
                if upload {
                    // Bulk upload: heavy data client -> server (capped so a
                    // single elephant doesn't dominate the sample count).
                    Exchange {
                        request: b.min(400_000),
                        response: a.min(2_000),
                    }
                } else {
                    Exchange {
                        request: a,
                        response: b,
                    }
                }
            })
            .collect();
        let total_bytes: u64 = exchanges.iter().map(|e| e.request + e.response).sum();
        // ISS: random; a small fraction is pinned just below the wrap point
        // so the transfer crosses sequence zero.
        let server_iss = if rng.chance(cfg.wrap_frac) {
            u32::MAX.wrapping_sub((total_bytes / 2) as u32)
        } else {
            rng.next_u32()
        };
        // Incomplete handshakes retry the SYN only twice (observed client
        // behaviour; keeps their packet share realistic at ~3 SYNs).
        let endpoint = EndpointCfg {
            max_retries: if complete { 5 } else { 2 },
            rto_initial: (200 * MILLISECOND).max(3 * (ext_rtt + int_rtt)),
            ..EndpointCfg::default()
        };
        // Timestamp clocks: mixed granularities as observed in the wild
        // (1000 Hz common, 100 Hz and 10 Hz legacy stacks).
        let ts_clocks = rng.chance(cfg.ts_frac).then(|| {
            let rates = [10u32, 100, 1000];
            (
                rates[rng.pick_weighted(&[0.1, 0.3, 0.6])],
                rates[rng.pick_weighted(&[0.1, 0.3, 0.6])],
            )
        });
        // Silent server cut-off partway through the client's send volume.
        let server_cutoff =
            (complete && total_bytes > 2_000 && rng.chance(cfg.cutoff_frac)).then(|| {
                let c2s: u64 = exchanges.iter().map(|e| e.request).sum();
                rng.range(c2s / 4 + 1, c2s.max(c2s / 4 + 2))
            });
        specs.push(ConnSpec {
            flow,
            start: rng.range(0, cfg.duration),
            path,
            exchanges,
            server_alive: complete,
            endpoint,
            client_iss: rng.next_u32(),
            server_iss,
            keepalive,
            ts_clocks,
            server_cutoff,
        });
        metas.push((access, complete));
    }

    let out = simulate(specs, rng.fork(1).next_u32() as u64);
    let conns = out
        .reports
        .iter()
        .zip(metas)
        .map(|(r, (access, complete))| ConnInfo {
            flow: r.flow,
            access,
            complete,
            established: r.established,
            base_ext_rtt: r.base_ext_rtt,
            base_int_rtt: r.base_int_rtt,
            retransmissions: r.retransmissions,
        })
        .collect();
    GeneratedTrace {
        packets: out.packets,
        conns,
        spin_flows: Vec::new(),
    }
}

/// Configuration of the §5.2 interception-attack scenario.
#[derive(Clone, Copy, Debug)]
pub struct AttackConfig {
    /// Pre-attack path RTT (the paper observed ≈25 ms Princeton ↔
    /// Northeastern).
    pub normal_rtt: Nanos,
    /// Post-attack RTT through the adversary (≈120 ms via Amsterdam).
    pub attacked_rtt: Nanos,
    /// When the BGP hijack takes effect.
    pub attack_at: Nanos,
    /// Request/response rounds of the victim connection.
    pub rounds: usize,
    /// Gap between rounds.
    pub round_gap: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            normal_rtt: 25 * MILLISECOND,
            attacked_rtt: 120 * MILLISECOND,
            attack_at: 36 * SECOND,
            rounds: 240,
            round_gap: 300 * MILLISECOND,
            seed: 0xA77AC4,
        }
    }
}

/// Generate the interception-attack trace: a steady stream of short
/// request/response connections between a campus host and the victim
/// prefix (one every `round_gap`), with the external-leg delay stepping up
/// when the hijack takes effect — the PEERING experiment's traffic pattern
/// seen from the monitor.
pub fn interception(cfg: AttackConfig) -> GeneratedTrace {
    let mut rng = SimRng::new(cfg.seed);
    let client = Ipv4Addr::new(10, 8, 1, 17);
    let victim = Ipv4Addr::new(184, 164, 240, 9); // PEERING-style prefix
    let specs: Vec<ConnSpec> = (0..cfg.rounds)
        .map(|i| {
            let path = PathParams {
                int_owd: 300 * dart_packet::MICROSECOND,
                ext_owd: cfg.normal_rtt / 2,
                jitter: 0.03,
                ext_owd_step: Some((cfg.attack_at, cfg.attacked_rtt / 2)),
                ..PathParams::default()
            };
            ConnSpec {
                flow: FlowKey::new(client, 45_000 + (i % 20_000) as u16, victim, 443),
                start: i as Nanos * cfg.round_gap,
                path,
                exchanges: vec![Exchange {
                    request: 600,
                    response: 1400,
                }],
                server_alive: true,
                endpoint: EndpointCfg {
                    rto_initial: SECOND,
                    ..EndpointCfg::default()
                },
                client_iss: rng.next_u32(),
                server_iss: rng.next_u32(),
                keepalive: None,
                ts_clocks: None,
                server_cutoff: None,
            }
        })
        .collect();
    let out = simulate(specs, rng.fork(2).next_u32() as u64);
    let conns = out
        .reports
        .iter()
        .map(|r| ConnInfo {
            flow: r.flow,
            access: Access::Wired,
            complete: true,
            established: r.established,
            base_ext_rtt: r.base_ext_rtt,
            base_int_rtt: r.base_int_rtt,
            retransmissions: r.retransmissions,
        })
        .collect();
    GeneratedTrace {
        packets: out.packets,
        conns,
        spin_flows: Vec::new(),
    }
}

/// Configuration of a SYN flood (robustness experiment, §3.1).
#[derive(Clone, Copy, Debug)]
pub struct SynFloodConfig {
    /// Spoofed SYNs.
    pub syns: usize,
    /// Flood duration.
    pub duration: Nanos,
    /// Background legitimate connections.
    pub background: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynFloodConfig {
    fn default() -> Self {
        SynFloodConfig {
            syns: 20_000,
            duration: 5 * SECOND,
            background: 50,
            seed: 0x5F00D,
        }
    }
}

/// Generate a SYN-flood trace: spoofed single-SYN connections against one
/// victim server, over a trickle of legitimate traffic.
pub fn syn_flood(cfg: SynFloodConfig) -> GeneratedTrace {
    let mut rng = SimRng::new(cfg.seed);
    let victim = Ipv4Addr::new(93, 184, 216, 34);
    let mut specs = Vec::with_capacity(cfg.syns + cfg.background);
    let mut metas = Vec::with_capacity(specs.capacity());
    for _ in 0..cfg.syns {
        // Spoofed source: random campus-looking address, no retries (the
        // attacker fires and forgets).
        let flow = FlowKey::new(
            Ipv4Addr::from(0x0a00_0000 | rng.range(2, 1 << 24) as u32),
            rng.range(1024, 65_535) as u16,
            victim,
            443,
        );
        specs.push(ConnSpec {
            flow,
            start: rng.range(0, cfg.duration),
            path: PathParams::default(),
            exchanges: vec![],
            server_alive: false,
            endpoint: EndpointCfg {
                max_retries: 0,
                ..EndpointCfg::default()
            },
            client_iss: rng.next_u32(),
            server_iss: 0,
            keepalive: None,
            ts_clocks: None,
            server_cutoff: None,
        });
        metas.push((Access::Wired, false));
    }
    let mut plan = AddressPlan::new(20, &mut rng);
    let sizes = SizeModel::default();
    for _ in 0..cfg.background {
        let flow = plan.flow(Access::Wireless, &mut rng);
        specs.push(ConnSpec {
            flow,
            start: rng.range(0, cfg.duration),
            path: PathParams::default(),
            exchanges: vec![Exchange {
                request: sizes.request(&mut rng),
                response: sizes.response(&mut rng).min(100_000),
            }],
            server_alive: true,
            endpoint: EndpointCfg::default(),
            client_iss: rng.next_u32(),
            server_iss: rng.next_u32(),
            keepalive: None,
            ts_clocks: None,
            server_cutoff: None,
        });
        metas.push((Access::Wireless, true));
    }
    let out = simulate(specs, rng.fork(3).next_u32() as u64);
    let conns = out
        .reports
        .iter()
        .zip(metas)
        .map(|(r, (access, complete))| ConnInfo {
            flow: r.flow,
            access,
            complete,
            established: r.established,
            base_ext_rtt: r.base_ext_rtt,
            base_int_rtt: r.base_int_rtt,
            retransmissions: r.retransmissions,
        })
        .collect();
    GeneratedTrace {
        packets: out.packets,
        conns,
        spin_flows: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowgen::is_wireless;

    #[test]
    fn campus_trace_has_paper_macro_shape() {
        let cfg = CampusConfig {
            connections: 400,
            duration: 10 * SECOND,
            ..CampusConfig::default()
        };
        let t = campus(cfg);
        assert!(!t.is_empty());
        // Time-ordered.
        assert!(t.packets.windows(2).all(|w| w[0].ts <= w[1].ts));
        // Incomplete-handshake share near the configured 72.5%.
        let incomplete = t.conns.iter().filter(|c| !c.complete).count();
        let frac = incomplete as f64 / t.conns.len() as f64;
        assert!((0.65..=0.80).contains(&frac), "incomplete {frac}");
        // Complete connections got established.
        assert!(t.conns.iter().filter(|c| c.complete).all(|c| c.established));
        // Both subnets appear.
        assert!(t.conns.iter().any(|c| is_wireless(c.flow.src_ip)));
        assert!(t.conns.iter().any(|c| !is_wireless(c.flow.src_ip)));
    }

    #[test]
    fn campus_trace_deterministic() {
        let cfg = CampusConfig {
            connections: 60,
            duration: 2 * SECOND,
            ..CampusConfig::default()
        };
        let a = campus(cfg);
        let b = campus(cfg);
        assert_eq!(a.packets, b.packets);
    }

    #[test]
    fn interception_trace_steps_delay() {
        let cfg = AttackConfig {
            rounds: 120,
            attack_at: 3 * SECOND,
            round_gap: 100 * MILLISECOND,
            ..AttackConfig::default()
        };
        let t = interception(cfg);
        assert!(!t.is_empty());
        // Data flows both before and after the attack instant.
        assert!(t.packets.first().unwrap().ts < cfg.attack_at);
        assert!(t.packets.last().unwrap().ts > cfg.attack_at);
    }

    #[test]
    fn syn_flood_is_mostly_syns() {
        let t = syn_flood(SynFloodConfig {
            syns: 500,
            background: 5,
            duration: SECOND,
            ..SynFloodConfig::default()
        });
        let syn_count = t.packets.iter().filter(|p| p.flags.is_syn()).count();
        assert!(syn_count >= 500);
        let frac = syn_count as f64 / t.packets.len() as f64;
        assert!(frac > 0.5, "syn fraction {frac}");
    }
}
