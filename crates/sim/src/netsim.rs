//! The network simulator: TCP endpoints exchanging segments across a
//! two-leg path with a monitoring vantage point in the middle.
//!
//! Topology (paper Fig. 1):
//!
//! ```text
//!   campus client  ──(internal leg)──  MONITOR  ──(external leg)──  server
//! ```
//!
//! Every surviving packet is captured at the monitor with a timestamp,
//! producing the [`PacketMeta`] trace the Dart engine and the baselines
//! replay. Loss can strike before or after the monitor (the latter creates
//! the holes-at-the-vantage-point ambiguities of §3.1), jitter can reorder,
//! and the monitor itself can miss a capture (the §7 "monitor does not see
//! the last ACK" failure mode that produces keep-alive-closed giant RTTs).

use crate::endpoint::{Action, AppSend, ConnState, Endpoint, EndpointCfg, SimPacket};
use crate::event::EventQueue;
use crate::rng::SimRng;
use dart_packet::{Direction, FlowKey, Nanos, PacketMeta};

/// Per-connection path characteristics.
#[derive(Clone, Copy, Debug)]
pub struct PathParams {
    /// One-way delay, client ↔ monitor.
    pub int_owd: Nanos,
    /// One-way delay, monitor ↔ server.
    pub ext_owd: Nanos,
    /// Multiplicative jitter amplitude per hop (0.1 = ±10%).
    pub jitter: f64,
    /// Loss probability per direction, applied on the sender side of the
    /// monitor (the monitor never sees these packets).
    pub loss_pre: f64,
    /// Loss probability per direction, applied after the monitor (the
    /// monitor sees the packet, the receiver does not).
    pub loss_post: f64,
    /// Probability the monitor fails to capture a packet it forwards.
    pub monitor_miss: f64,
    /// Probability a packet is held back long enough to be reordered.
    pub reorder: f64,
    /// Extra delay applied to reordered packets.
    pub reorder_extra: Nanos,
    /// Mid-trace external-leg delay change `(at, new_owd)`: from time `at`,
    /// the monitor↔server one-way delay becomes `new_owd`. Models a routing
    /// change — e.g. the §5.2 BGP interception rerouting 25 ms paths through
    /// a 120 ms detour.
    pub ext_owd_step: Option<(Nanos, Nanos)>,
}

impl Default for PathParams {
    fn default() -> Self {
        PathParams {
            int_owd: 500 * dart_packet::MICROSECOND,
            ext_owd: 7 * dart_packet::MILLISECOND,
            jitter: 0.05,
            loss_pre: 0.0,
            loss_post: 0.0,
            monitor_miss: 0.0,
            reorder: 0.0,
            reorder_extra: 2 * dart_packet::MILLISECOND,
            ext_owd_step: None,
        }
    }
}

impl PathParams {
    /// Effective external one-way delay at time `now` (honoring the step).
    pub fn ext_owd_at(&self, now: Nanos) -> Nanos {
        match self.ext_owd_step {
            Some((at, new)) if now >= at => new,
            _ => self.ext_owd,
        }
    }

    /// Base external-leg RTT (monitor → server → monitor) excluding jitter
    /// and receiver delays — the ground-truth floor for external samples.
    pub fn base_ext_rtt(&self) -> Nanos {
        2 * self.ext_owd
    }

    /// Base internal-leg RTT (monitor → client → monitor).
    pub fn base_int_rtt(&self) -> Nanos {
        2 * self.int_owd
    }
}

/// One request/response exchange on a connection.
#[derive(Clone, Copy, Debug)]
pub struct Exchange {
    /// Client → server bytes.
    pub request: u64,
    /// Server → client bytes.
    pub response: u64,
}

/// Full specification of one simulated connection.
#[derive(Clone, Debug)]
pub struct ConnSpec {
    /// Flow key in the client → server direction.
    pub flow: FlowKey,
    /// Connection start time.
    pub start: Nanos,
    /// Path characteristics.
    pub path: PathParams,
    /// Request/response rounds.
    pub exchanges: Vec<Exchange>,
    /// When false, no server exists: the SYN goes unanswered (the 72.5% of
    /// campus connections with incomplete handshakes, Fig. 10).
    pub server_alive: bool,
    /// Endpoint tuning.
    pub endpoint: EndpointCfg,
    /// Client initial sequence number.
    pub client_iss: u32,
    /// Server initial sequence number.
    pub server_iss: u32,
    /// After the transfer, keep the connection open and send this many
    /// keep-alive ACK probes at the given interval (creates the multi-second
    /// RTT tail of Fig. 9c when the original ACK capture was missed).
    pub keepalive: Option<(Nanos, u32)>,
    /// RFC 7323 timestamp clocks `(client Hz, server Hz)`: when set, every
    /// transmitted segment carries a timestamp option ticking at the given
    /// per-host rate. Real stacks vary from 10 to 1000 Hz (paper §8's
    /// critique of timestamp-based measurement à la `pping`).
    pub ts_clocks: Option<(u32, u32)>,
    /// Silent server cut-off after this many received payload bytes
    /// (§3.2): the server stops ACKing mid-connection, stranding the
    /// client's in-flight records at any monitor.
    pub server_cutoff: Option<u64>,
}

impl ConnSpec {
    /// A simple one-exchange connection with default everything.
    pub fn simple(flow: FlowKey, start: Nanos, request: u64, response: u64) -> ConnSpec {
        ConnSpec {
            flow,
            start,
            path: PathParams::default(),
            exchanges: vec![Exchange { request, response }],
            server_alive: true,
            endpoint: EndpointCfg::default(),
            client_iss: 0x1000,
            server_iss: 0x2000,
            keepalive: None,
            ts_clocks: None,
            server_cutoff: None,
        }
    }
}

/// Which endpoint of a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    Client,
    Server,
}

#[derive(Clone, Copy, Debug)]
enum TimerKind {
    Rto,
    Delack,
}

enum Ev {
    Open(usize),
    /// Packet arriving at the monitor (capture + forward).
    Capture {
        conn: usize,
        from: Side,
        pkt: SimPacket,
    },
    /// Packet arriving at an endpoint.
    Deliver {
        conn: usize,
        to: Side,
        pkt: SimPacket,
    },
    Timer {
        conn: usize,
        side: Side,
        kind: TimerKind,
        gen: u64,
    },
    Keepalive {
        conn: usize,
        side: Side,
        remaining: u32,
    },
}

/// Per-connection outcome report.
#[derive(Clone, Debug)]
pub struct ConnReport {
    /// Flow key (client → server).
    pub flow: FlowKey,
    /// Whether a server existed.
    pub server_alive: bool,
    /// Whether the three-way handshake completed.
    pub established: bool,
    /// Payload bytes delivered client → server.
    pub bytes_c2s: u64,
    /// Payload bytes delivered server → client.
    pub bytes_s2c: u64,
    /// Retransmissions (both endpoints).
    pub retransmissions: u64,
    /// Base external-leg RTT for ground-truth comparison.
    pub base_ext_rtt: Nanos,
    /// Base internal-leg RTT.
    pub base_int_rtt: Nanos,
}

/// Simulation output: the monitor's trace plus per-connection reports.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// Time-ordered captured packets at the primary monitor.
    pub packets: Vec<PacketMeta>,
    /// One report per input [`ConnSpec`].
    pub reports: Vec<ConnReport>,
    /// Traces captured at additional on-path vantage points (paper §7,
    /// "Deployment at multiple on-path vantage points"), one per entry of
    /// [`NetSim::with_extra_vantage_points`], each sitting at the given
    /// fraction of the external leg toward the server.
    pub vp_traces: Vec<Vec<PacketMeta>>,
}

struct ConnRuntime {
    spec: ConnSpec,
    client: Endpoint,
    server: Option<Endpoint>,
    established: bool,
    /// Most recent TSval received from the peer, per side
    /// [client, server] — echoed as TSecr.
    last_tsval: [u32; 2],
    /// FIFO enforcement per hop: earliest admissible arrival time for the
    /// next packet on [client→monitor, server→monitor, monitor→server,
    /// monitor→client]. Links deliver in order; only explicit reorder
    /// injection may overtake.
    next_free: [Nanos; 4],
}

/// The simulator.
pub struct NetSim {
    queue: EventQueue<Ev>,
    conns: Vec<ConnRuntime>,
    rng: SimRng,
    trace: Vec<PacketMeta>,
    /// Extra vantage points along the external leg: fraction in (0, 1) of
    /// the monitor→server delay, and the packets they captured.
    extra_vps: Vec<(f64, Vec<PacketMeta>)>,
    /// Hard cap on total events (runaway guard).
    max_events: u64,
}

impl NetSim {
    /// Build a simulator over `specs` with a deterministic seed.
    pub fn new(specs: Vec<ConnSpec>, seed: u64) -> NetSim {
        let mut queue = EventQueue::new();
        let conns: Vec<ConnRuntime> = specs
            .into_iter()
            .map(|spec| {
                // Keep-alive connections linger open: the client never
                // initiates close, so probes have a live connection to ride.
                let close_after = if spec.keepalive.is_some() {
                    None
                } else {
                    Some(spec.exchanges.iter().map(|e| e.response).sum())
                };
                let client = Endpoint::new(
                    spec.endpoint,
                    spec.client_iss,
                    client_script(&spec.exchanges),
                    close_after,
                );
                let server = spec.server_alive.then(|| {
                    let mut ep = Endpoint::new(
                        spec.endpoint,
                        spec.server_iss,
                        server_script(&spec.exchanges),
                        None,
                    );
                    if let Some(cut) = spec.server_cutoff {
                        ep.set_cutoff_after_recv(cut);
                    }
                    ep
                });
                ConnRuntime {
                    client,
                    server,
                    established: false,
                    last_tsval: [0; 2],
                    next_free: [0; 4],
                    spec,
                }
            })
            .collect();
        for (i, c) in conns.iter().enumerate() {
            queue.schedule(c.spec.start, Ev::Open(i));
        }
        let n_events_guess = conns.len() as u64;
        NetSim {
            queue,
            conns,
            rng: SimRng::new(seed),
            trace: Vec::new(),
            extra_vps: Vec::new(),
            max_events: 2_000_000 + n_events_guess * 100_000,
        }
    }

    /// Install additional on-path vantage points (§7): each fraction in
    /// (0, 1) places a capture device that far along the external leg from
    /// the primary monitor toward the servers. Their traces come back in
    /// [`SimOutput::vp_traces`], time-ordered per vantage point.
    pub fn with_extra_vantage_points(mut self, fractions: impl IntoIterator<Item = f64>) -> Self {
        for f in fractions {
            assert!(
                (0.0..1.0).contains(&f) && f > 0.0,
                "vantage fraction must be in (0, 1)"
            );
            self.extra_vps.push((f, Vec::new()));
        }
        self
    }

    /// Run to quiescence and return the captured trace + reports.
    pub fn run(mut self) -> SimOutput {
        let mut events = 0u64;
        while let Some((now, ev)) = self.queue.pop() {
            events += 1;
            if events > self.max_events {
                panic!("simulation exceeded event budget — runaway retransmission loop?");
            }
            self.dispatch(now, ev);
        }
        // Extra-VP captures were appended as packets crossed; their
        // cross times are monotone per packet but interleave across
        // connections — sort each trace by capture time.
        for (_, t) in &mut self.extra_vps {
            t.sort_by_key(|p| p.ts);
        }
        let reports = self
            .conns
            .iter()
            .map(|c| ConnReport {
                flow: c.spec.flow,
                server_alive: c.spec.server_alive,
                established: c.established,
                bytes_c2s: c.server.as_ref().map_or(0, |s| s.received()),
                bytes_s2c: c.client.received(),
                retransmissions: c.client.retransmits
                    + c.server.as_ref().map_or(0, |s| s.retransmits),
                base_ext_rtt: c.spec.path.base_ext_rtt(),
                base_int_rtt: c.spec.path.base_int_rtt(),
            })
            .collect();
        SimOutput {
            packets: self.trace,
            reports,
            vp_traces: self.extra_vps.into_iter().map(|(_, t)| t).collect(),
        }
    }

    fn dispatch(&mut self, now: Nanos, ev: Ev) {
        match ev {
            Ev::Open(ci) => {
                let acts = self.conns[ci].client.open();
                self.apply(now, ci, Side::Client, acts);
            }
            Ev::Capture { conn, from, pkt } => self.on_capture(now, conn, from, pkt),
            Ev::Deliver { conn, to, pkt } => {
                let c = &mut self.conns[conn];
                // Record the peer's TSval for echoing (RFC 7323 TSecr).
                if let Some((tsval, _)) = pkt.tsopt {
                    let me = match to {
                        Side::Client => 0,
                        Side::Server => 1,
                    };
                    c.last_tsval[me] = tsval;
                }
                let ep = match to {
                    Side::Client => &mut c.client,
                    Side::Server => match &mut c.server {
                        Some(s) => s,
                        None => return, // packet to a dead server: dropped
                    },
                };
                let acts = ep.on_segment(&pkt);
                if !c.established && c.client.state == ConnState::Established {
                    c.established = true;
                    // Schedule keep-alives once established — both sides
                    // probe, slightly offset (the server's pure ACK is what
                    // closes a stranded sample when the monitor missed the
                    // original ACK).
                    if let Some((idle, count)) = c.spec.keepalive {
                        self.queue.schedule(
                            now + idle,
                            Ev::Keepalive {
                                conn,
                                side: Side::Client,
                                remaining: count,
                            },
                        );
                        self.queue.schedule(
                            now + idle + idle / 2,
                            Ev::Keepalive {
                                conn,
                                side: Side::Server,
                                remaining: count,
                            },
                        );
                    }
                }
                self.apply(now, conn, to, acts);
            }
            Ev::Timer {
                conn,
                side,
                kind,
                gen,
            } => {
                let c = &mut self.conns[conn];
                let ep = match side {
                    Side::Client => &mut c.client,
                    Side::Server => match &mut c.server {
                        Some(s) => s,
                        None => return,
                    },
                };
                let acts = match kind {
                    TimerKind::Rto => ep.on_rto(gen),
                    TimerKind::Delack => ep.on_delack(gen),
                };
                self.apply(now, conn, side, acts);
            }
            Ev::Keepalive {
                conn,
                side,
                remaining,
            } => {
                let c = &mut self.conns[conn];
                let ep = match side {
                    Side::Client => &c.client,
                    Side::Server => match &c.server {
                        Some(s) => s,
                        None => return,
                    },
                };
                let probe = ep.keepalive();
                let idle = c.spec.keepalive.map(|(i, _)| i).unwrap_or(0);
                if let Some(pkt) = probe {
                    self.transmit(now, conn, side, pkt);
                    if remaining > 1 {
                        self.queue.schedule(
                            now + idle,
                            Ev::Keepalive {
                                conn,
                                side,
                                remaining: remaining - 1,
                            },
                        );
                    }
                }
            }
        }
    }

    fn apply(&mut self, now: Nanos, conn: usize, side: Side, acts: Vec<Action>) {
        for a in acts {
            match a {
                Action::Send(pkt) => self.transmit(now, conn, side, pkt),
                Action::ArmRto { after, gen } => self.queue.schedule(
                    now + after,
                    Ev::Timer {
                        conn,
                        side,
                        kind: TimerKind::Rto,
                        gen,
                    },
                ),
                Action::ArmDelack { after, gen } => self.queue.schedule(
                    now + after,
                    Ev::Timer {
                        conn,
                        side,
                        kind: TimerKind::Delack,
                        gen,
                    },
                ),
            }
        }
    }

    fn hop_delay(&mut self, base: Nanos, jitter: f64) -> Nanos {
        if jitter <= 0.0 {
            return base;
        }
        let factor = 1.0 + jitter * (2.0 * self.rng.unit() - 1.0);
        (base as f64 * factor).max(1.0) as Nanos
    }

    /// Endpoint `side` transmits `pkt` at `now`: first hop toward the
    /// monitor (with pre-monitor loss), then capture, then the second hop.
    fn transmit(&mut self, now: Nanos, conn: usize, side: Side, mut pkt: SimPacket) {
        // Stamp the RFC 7323 timestamp option for clock-enabled hosts.
        if let Some((c_hz, s_hz)) = self.conns[conn].spec.ts_clocks {
            let (hz, me) = match side {
                Side::Client => (c_hz, 0),
                Side::Server => (s_hz, 1),
            };
            let tsval = ((now as u128 * hz as u128) / 1_000_000_000) as u32;
            let tsecr = self.conns[conn].last_tsval[me];
            pkt.tsopt = Some((tsval, tsecr));
        }
        let path = self.conns[conn].spec.path;
        if self.rng.chance(path.loss_pre) {
            return; // lost before the monitor ever sees it
        }
        let (first_leg, lane) = match side {
            Side::Client => (path.int_owd, 0),
            Side::Server => (path.ext_owd_at(now), 1),
        };
        let delay = self.hop_delay(first_leg, path.jitter);
        let at = if self.rng.chance(path.reorder) {
            // Explicit reordering: held back, later packets may overtake.
            now + delay + path.reorder_extra
        } else {
            let at = (now + delay).max(self.conns[conn].next_free[lane]);
            self.conns[conn].next_free[lane] = at;
            at
        };
        self.queue.schedule(
            at,
            Ev::Capture {
                conn,
                from: side,
                pkt,
            },
        );
    }

    fn on_capture(&mut self, now: Nanos, conn: usize, from: Side, pkt: SimPacket) {
        let path = self.conns[conn].spec.path;
        let spec_flow = self.conns[conn].spec.flow;
        let (flow, dir) = match from {
            Side::Client => (spec_flow, Direction::Outbound),
            Side::Server => (spec_flow.reverse(), Direction::Inbound),
        };
        let meta = PacketMeta {
            ts: now,
            flow,
            seq: pkt.seq,
            ack: pkt.ack,
            payload_len: pkt.len,
            flags: pkt.flags,
            dir,
            tsopt: pkt.tsopt,
        };
        // Record at the primary monitor (unless capture misses).
        if !self.rng.chance(path.monitor_miss) {
            self.trace.push(meta);
        }
        // Post-monitor loss.
        if self.rng.chance(path.loss_post) {
            return;
        }
        let (second_leg, to, lane) = match from {
            Side::Client => (path.ext_owd_at(now), Side::Server, 2),
            Side::Server => (path.int_owd, Side::Client, 3),
        };
        let delay = self.hop_delay(second_leg, path.jitter);
        // Extra vantage points sit along the external leg: a packet crosses
        // VP f at `now + f·ext_delay` (outbound) or crossed it at
        // `now - ...` — equivalently, for inbound packets the VP saw it
        // *before* the primary monitor at `arrival - f'·delay`. Both
        // directions are derived from this same hop's delay draw.
        let ext_delay_total = match from {
            Side::Client => delay,                                     // monitor → server
            Side::Server => self.hop_delay(path.ext_owd_at(now), 0.0), // server → monitor (already elapsed)
        };
        for (frac, vp_trace) in &mut self.extra_vps {
            let mut m = meta;
            m.ts = match from {
                // Outbound: crosses the VP after the monitor.
                Side::Client => now + (ext_delay_total as f64 * *frac) as Nanos,
                // Inbound: crossed the VP before reaching the monitor.
                Side::Server => now.saturating_sub((ext_delay_total as f64 * *frac) as Nanos),
            };
            vp_trace.push(m);
        }
        let at = if self.rng.chance(path.reorder) {
            now + delay + path.reorder_extra
        } else {
            let at = (now + delay).max(self.conns[conn].next_free[lane]);
            self.conns[conn].next_free[lane] = at;
            at
        };
        self.queue.schedule(at, Ev::Deliver { conn, to, pkt });
    }
}

fn client_script(exchanges: &[Exchange]) -> Vec<AppSend> {
    let mut out = Vec::with_capacity(exchanges.len());
    let mut recv_so_far = 0;
    for e in exchanges {
        out.push(AppSend {
            after_received: recv_so_far,
            bytes: e.request,
        });
        recv_so_far += e.response;
    }
    out
}

fn server_script(exchanges: &[Exchange]) -> Vec<AppSend> {
    let mut out = Vec::with_capacity(exchanges.len());
    let mut recv_so_far = 0;
    for e in exchanges {
        recv_so_far += e.request;
        out.push(AppSend {
            after_received: recv_so_far,
            bytes: e.response,
        });
    }
    out
}

/// Convenience: simulate a set of connections and return the output.
pub fn simulate(specs: Vec<ConnSpec>, seed: u64) -> SimOutput {
    NetSim::new(specs, seed).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{MILLISECOND, SECOND};

    fn flow(n: u32) -> FlowKey {
        FlowKey::from_raw(
            0x0a00_0000 + n,
            40000 + (n % 20000) as u16,
            0x5db8_d822,
            443,
        )
    }

    #[test]
    fn clean_connection_produces_ordered_trace() {
        let out = simulate(vec![ConnSpec::simple(flow(1), 1000, 300, 20_000)], 1);
        assert!(!out.packets.is_empty());
        // Time-ordered.
        assert!(out.packets.windows(2).all(|w| w[0].ts <= w[1].ts));
        let r = &out.reports[0];
        assert!(r.established);
        assert_eq!(r.bytes_c2s, 300);
        assert_eq!(r.bytes_s2c, 20_000);
        assert_eq!(r.retransmissions, 0);
        // Both directions appear.
        assert!(out.packets.iter().any(|p| p.dir == Direction::Outbound));
        assert!(out.packets.iter().any(|p| p.dir == Direction::Inbound));
    }

    #[test]
    fn dead_server_leaves_syn_retransmissions_only() {
        let mut spec = ConnSpec::simple(flow(2), 0, 300, 1000);
        spec.server_alive = false;
        let out = simulate(vec![spec], 2);
        assert!(!out.reports[0].established);
        assert!(out.packets.iter().all(|p| p.flags.is_syn()));
        // Initial SYN + max_retries retransmissions.
        assert_eq!(
            out.packets.len() as u32,
            1 + EndpointCfg::default().max_retries
        );
    }

    #[test]
    fn pre_monitor_loss_hides_packets_from_trace() {
        let mut spec = ConnSpec::simple(flow(3), 0, 300, 100_000);
        spec.path.loss_pre = 0.05;
        spec.path.jitter = 0.0;
        let lossy = simulate(vec![spec.clone()], 3);
        spec.path.loss_pre = 0.0;
        let clean = simulate(vec![spec], 3);
        // The transfer still completes end-to-end.
        assert_eq!(lossy.reports[0].bytes_s2c, 100_000);
        assert!(lossy.reports[0].retransmissions > 0);
        // And the lossy run's trace saw retransmitted sequence numbers.
        assert!(lossy.packets.len() != clean.packets.len() || lossy.packets != clean.packets);
    }

    #[test]
    fn post_monitor_loss_creates_visible_retransmissions() {
        let mut spec = ConnSpec::simple(flow(4), 0, 300, 50_000);
        spec.path.loss_post = 0.05;
        let out = simulate(vec![spec], 4);
        assert_eq!(out.reports[0].bytes_s2c, 50_000);
        assert!(out.reports[0].retransmissions > 0);
        // The monitor saw duplicated (seq, len) pairs: retransmissions.
        let mut seen = std::collections::HashSet::new();
        let mut dups = 0;
        for p in out.packets.iter().filter(|p| p.payload_len > 0) {
            if !seen.insert((p.flow, p.seq, p.payload_len)) {
                dups += 1;
            }
        }
        assert!(dups > 0);
    }

    #[test]
    fn external_rtt_visible_at_monitor() {
        // With zero jitter and an immediate-ACK receiver the external-leg
        // RTT at the monitor equals 2 × ext_owd exactly (requests are ACKed
        // by the response data or the every-2nd-segment rule... use a
        // single-segment request ACKed by the response).
        let mut spec = ConnSpec::simple(flow(5), 0, 500, 1000);
        spec.path.jitter = 0.0;
        spec.path.int_owd = MILLISECOND;
        spec.path.ext_owd = 10 * MILLISECOND;
        let out = simulate(vec![spec], 5);
        // Find the request data packet and the first server packet acking it.
        let req = out
            .packets
            .iter()
            .find(|p| p.dir == Direction::Outbound && p.payload_len == 500)
            .expect("request captured");
        let ack = out
            .packets
            .iter()
            .find(|p| {
                p.dir == Direction::Inbound
                    && p.flags.is_ack()
                    && !p.flags.is_syn()
                    && p.ack == req.eack()
            })
            .expect("server ack captured");
        let rtt = ack.ts - req.ts;
        // 2 × 10 ms plus (possibly) the server's delayed-ACK wait; the
        // response itself carries the ACK so it should be fast.
        assert!(rtt >= 20 * MILLISECOND, "rtt {rtt}");
        assert!(rtt <= 20 * MILLISECOND + 45 * MILLISECOND, "rtt {rtt}");
    }

    #[test]
    fn keepalives_appear_after_idle() {
        let mut spec = ConnSpec::simple(flow(6), 0, 300, 1000);
        // Keep the connection open: client never finishes because the
        // keep-alive schedule outlives the transfer.
        spec.keepalive = Some((2 * SECOND, 2));
        let out = simulate(vec![spec], 6);
        let last = out.packets.last().unwrap();
        assert!(last.ts >= 2 * SECOND, "keepalive at {}", last.ts);
        assert!(last.is_pure_ack());
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut spec = ConnSpec::simple(flow(7), 0, 300, 30_000);
            spec.path.loss_post = 0.03;
            spec.path.jitter = 0.2;
            simulate(vec![spec], 42).packets
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn many_connections_interleave() {
        let specs: Vec<ConnSpec> = (0..20)
            .map(|i| ConnSpec::simple(flow(100 + i), (i as u64) * MILLISECOND, 200, 5_000))
            .collect();
        let out = simulate(specs, 8);
        assert!(out.reports.iter().all(|r| r.established));
        assert!(out.packets.windows(2).all(|w| w[0].ts <= w[1].ts));
        // Flows interleave in the trace: not all of flow 0's packets come
        // before all of flow 19's.
        let first_of_last = out
            .packets
            .iter()
            .position(|p| p.flow.same_connection(&flow(119)))
            .unwrap();
        let last_of_first = out
            .packets
            .iter()
            .rposition(|p| p.flow.same_connection(&flow(100)))
            .unwrap();
        assert!(first_of_last < last_of_first);
    }
}
