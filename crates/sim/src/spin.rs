//! A QUIC-like flow generator with the RFC 9000 §17.4 latency spin bit —
//! the §7 extension path for measuring RTTs on traffic that hides sequence
//! and acknowledgment numbers.
//!
//! Mechanics: the client sends each packet with the spin bit set to the
//! *complement* of the last bit it saw from the server; the server echoes
//! the last bit it saw from the client. The observable bit therefore flips
//! once per round trip in each direction, and an on-path observer can clock
//! RTTs from edge to edge — at most one sample per RTT.

use crate::rng::SimRng;
use dart_packet::{Direction, FlowKey, Nanos, PacketBuilder, PacketMeta};

/// One observed QUIC-like packet (the monitor's view; QUIC exposes no
/// sequence/ack numbers, only the spin bit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpinPacket {
    /// Capture timestamp at the monitor.
    pub ts: Nanos,
    /// Flow key in the packet's direction of travel.
    pub flow: FlowKey,
    /// Direction relative to the monitor.
    pub dir: Direction,
    /// The latency spin bit.
    pub spin: bool,
}

impl SpinPacket {
    /// Encode into the shared [`PacketMeta`] record: the
    /// [`dart_packet::TcpFlags::QUIC`] marker plus the spin bit, with
    /// SEQ/ACK/payload zeroed (QUIC exposes none of them). This is how
    /// spin flows enter mixed traces, the native trace format, and every
    /// `RttMonitor` — TCP engines see the record as role-less.
    pub fn to_meta(&self) -> PacketMeta {
        PacketBuilder::new(self.flow, self.ts)
            .dir(self.dir)
            .quic_spin(self.spin)
            .build()
    }

    /// Decode from a [`PacketMeta`], if it carries the QUIC marker.
    pub fn from_meta(meta: &PacketMeta) -> Option<SpinPacket> {
        let spin = meta.spin()?;
        Some(SpinPacket {
            ts: meta.ts,
            flow: meta.flow,
            dir: meta.dir,
            spin,
        })
    }
}

/// Spin-bit flow generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SpinFlowConfig {
    /// Flow key (client → server).
    pub flow: FlowKey,
    /// One-way delay client ↔ monitor.
    pub int_owd: Nanos,
    /// One-way delay monitor ↔ server.
    pub ext_owd: Nanos,
    /// Packets per second each endpoint sends (paced stream).
    pub rate_pps: u64,
    /// Total duration.
    pub duration: Nanos,
    /// Per-packet loss probability (end to end).
    pub loss: f64,
    /// RNG seed.
    pub seed: u64,
    /// Mid-trace path change: at absolute time `.0`, the external one-way
    /// delay becomes `.1` (the spin-flow analogue of the interception
    /// scenario's `ext_owd_step`). `None` keeps the delay constant.
    pub ext_owd_step: Option<(Nanos, Nanos)>,
}

impl Default for SpinFlowConfig {
    fn default() -> Self {
        SpinFlowConfig {
            flow: FlowKey::from_raw(0x0a08_0001, 50_443, 0x5db8_d822, 443),
            int_owd: dart_packet::MILLISECOND / 2,
            ext_owd: 10 * dart_packet::MILLISECOND,
            rate_pps: 200,
            duration: 2 * dart_packet::SECOND,
            loss: 0.0,
            seed: 0x5917,
            ext_owd_step: None,
        }
    }
}

/// Generate the monitor-observed packet stream of one spin-bit flow.
///
/// Each endpoint sends a paced stream; the spin state follows RFC 9000:
/// the client initiates flips (complementing the server's echo), the server
/// reflects. Packets are captured at the monitor between the two legs.
pub fn spin_flow(cfg: SpinFlowConfig) -> Vec<SpinPacket> {
    let mut rng = SimRng::new(cfg.seed);
    let gap = 1_000_000_000 / cfg.rate_pps.max(1);

    // The endpoints' spin state evolves in continuous time; model it by
    // precomputing the client's flip instants. The client flips once per
    // round trip (when its own previous flip completes the loop), so the
    // boundaries satisfy b_0 = rtt(0), b_{k+1} = b_k + rtt(b_k) — which
    // for a constant RTT reduces to b_k = (k+1)·rtt, the closed form this
    // function used before `ext_owd_step` existed. A path change alters
    // the external delay from the step instant on, stretching (or
    // shrinking) every later spin period.
    let ext_at = |t: Nanos| match cfg.ext_owd_step {
        Some((at, new_ext)) if t >= at => new_ext,
        _ => cfg.ext_owd,
    };
    let rtt_at = |t: Nanos| (2 * (cfg.int_owd + ext_at(t))).max(1);
    let mut boundaries = Vec::new();
    let mut b = rtt_at(0);
    while b <= cfg.duration {
        boundaries.push(b);
        b += rtt_at(b);
    }
    // Client spin state at absolute time t: number of flips so far, odd/even.
    let spin_at = |t: Nanos| boundaries.partition_point(|&x| x <= t) % 2 == 1;

    let mut out = Vec::new();
    let mut t = 0;
    while t < cfg.duration {
        // Client → server packet, captured at monitor after int leg.
        let client_spin = spin_at(t);
        if !rng.chance(cfg.loss) {
            out.push(SpinPacket {
                ts: t + cfg.int_owd,
                flow: cfg.flow,
                dir: Direction::Outbound,
                spin: client_spin,
            });
        }
        // Server → client packet sent at the same instant: echoes the
        // client bit it saw one client→server delay ago (false before
        // anything arrives).
        let server_spin = t.checked_sub(cfg.int_owd + ext_at(t)).is_some_and(spin_at);
        if !rng.chance(cfg.loss) {
            out.push(SpinPacket {
                ts: t + ext_at(t),
                flow: cfg.flow.reverse(),
                dir: Direction::Inbound,
                spin: server_spin,
            });
        }
        t += gap;
    }
    out.sort_by_key(|p| p.ts);
    out
}

/// [`spin_flow`] encoded as [`PacketMeta`] records, ready to merge into a
/// mixed TCP/QUIC trace (sort the union by timestamp).
pub fn spin_flow_meta(cfg: SpinFlowConfig) -> Vec<PacketMeta> {
    spin_flow(cfg).iter().map(SpinPacket::to_meta).collect()
}

/// A spin-bit RTT observer (the in-network measurement §7 sketches):
/// watches ONE direction of the flow and emits the time between consecutive
/// spin-bit transitions — the spin period equals the RTT.
#[derive(Clone, Debug)]
pub struct SpinObserver {
    dir: Direction,
    last_bit: Option<bool>,
    last_edge: Option<Nanos>,
    /// Samples collected (period between transitions).
    pub samples: Vec<Nanos>,
}

impl SpinObserver {
    /// Observe the given direction.
    pub fn new(dir: Direction) -> SpinObserver {
        SpinObserver {
            dir,
            last_bit: None,
            last_edge: None,
            samples: Vec::new(),
        }
    }

    /// Offer one captured packet.
    pub fn offer(&mut self, pkt: &SpinPacket) {
        if pkt.dir != self.dir {
            return;
        }
        if self.last_bit != Some(pkt.spin) {
            if self.last_bit.is_some() {
                // A transition: one spin period elapsed since the last one.
                if let Some(prev) = self.last_edge {
                    self.samples.push(pkt.ts - prev);
                }
                self.last_edge = Some(pkt.ts);
            }
            self.last_bit = Some(pkt.spin);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::MILLISECOND;

    #[test]
    fn spin_period_equals_rtt() {
        let cfg = SpinFlowConfig::default(); // RTT = 21 ms
        let pkts = spin_flow(cfg);
        assert!(!pkts.is_empty());
        let mut obs = SpinObserver::new(Direction::Outbound);
        for p in &pkts {
            obs.offer(p);
        }
        assert!(obs.samples.len() >= 10, "too few spin samples");
        let rtt = 21 * MILLISECOND;
        for s in &obs.samples {
            // Quantized by the packet gap (5 ms at 200 pps).
            assert!(
                (*s as i64 - rtt as i64).unsigned_abs() <= 5_000_000,
                "sample {} far from rtt {}",
                s,
                rtt
            );
        }
    }

    #[test]
    fn at_most_one_sample_per_rtt() {
        // The §7/§8 limitation: however fast the packets flow, samples come
        // once per RTT. 2 s / 21 ms ≈ 95 spin periods max.
        let pkts = spin_flow(SpinFlowConfig::default());
        let mut obs = SpinObserver::new(Direction::Outbound);
        for p in &pkts {
            obs.offer(p);
        }
        let packets_one_dir = pkts.iter().filter(|p| p.dir == Direction::Outbound).count();
        assert!(obs.samples.len() < 100);
        assert!(packets_one_dir > 350, "plenty of packets, few samples");
    }

    #[test]
    fn loss_makes_spin_samples_jitter() {
        // Losing the packet that carried an edge shifts the observed
        // transition to the next packet: spin measurements degrade under
        // loss with no way to detect it (§7: "inferring retransmissions or
        // reordering is not possible using only the spin bit").
        let pkts = spin_flow(SpinFlowConfig {
            loss: 0.3,
            ..SpinFlowConfig::default()
        });
        let mut obs = SpinObserver::new(Direction::Outbound);
        for p in &pkts {
            obs.offer(p);
        }
        let rtt = 21 * MILLISECOND;
        let worst = obs
            .samples
            .iter()
            .map(|s| (*s as i64 - rtt as i64).unsigned_abs())
            .max()
            .unwrap_or(0);
        assert!(
            worst > 5_000_000,
            "expected visible degradation under loss, worst dev {worst}"
        );
    }

    #[test]
    fn ext_owd_step_stretches_spin_period() {
        // Path interception at 1 s: external OWD jumps 10 ms → 35 ms, so
        // the spin period should move from ~21 ms to ~71 ms.
        let cfg = SpinFlowConfig {
            duration: 4 * dart_packet::SECOND,
            ext_owd_step: Some((dart_packet::SECOND, 35 * MILLISECOND)),
            ..SpinFlowConfig::default()
        };
        let pkts = spin_flow(cfg);
        let mut obs = SpinObserver::new(Direction::Outbound);
        for p in &pkts {
            obs.offer(p);
        }
        let early: Vec<_> = obs.samples.iter().take(10).copied().collect();
        let late: Vec<_> = obs.samples.iter().rev().take(10).copied().collect();
        let mean = |v: &[Nanos]| v.iter().sum::<Nanos>() / v.len().max(1) as u64;
        assert!(
            mean(&early).abs_diff(21 * MILLISECOND) <= 6 * MILLISECOND,
            "pre-step period {} far from 21ms",
            mean(&early)
        );
        assert!(
            mean(&late).abs_diff(71 * MILLISECOND) <= 8 * MILLISECOND,
            "post-step period {} far from 71ms",
            mean(&late)
        );
    }

    #[test]
    fn no_step_matches_legacy_closed_form() {
        // With ext_owd_step = None the boundary recurrence must reduce to
        // the old (t / rtt) % 2 closed form exactly.
        let cfg = SpinFlowConfig::default();
        let rtt = 2 * (cfg.int_owd + cfg.ext_owd);
        let c2s = cfg.int_owd + cfg.ext_owd;
        for p in spin_flow(cfg) {
            let (send_t, expect) = if p.dir == Direction::Outbound {
                let t = p.ts - cfg.int_owd;
                (t, (t / rtt) % 2 == 1)
            } else {
                let t = p.ts - cfg.ext_owd;
                (t, t >= c2s && ((t - c2s) / rtt) % 2 == 1)
            };
            assert_eq!(p.spin, expect, "divergence at send time {send_t}");
        }
    }

    #[test]
    fn meta_round_trip_preserves_spin() {
        for p in spin_flow(SpinFlowConfig::default()).iter().take(50) {
            let meta = p.to_meta();
            assert!(meta.is_quic());
            assert!(!meta.is_seq() && !meta.is_ack());
            assert_eq!(SpinPacket::from_meta(&meta), Some(*p));
        }
        let tcp = PacketBuilder::new(SpinFlowConfig::default().flow, 0)
            .ack(1u32)
            .build();
        assert_eq!(SpinPacket::from_meta(&tcp), None);
    }

    #[test]
    fn observer_ignores_other_direction() {
        let pkts = spin_flow(SpinFlowConfig::default());
        let mut obs = SpinObserver::new(Direction::Inbound);
        for p in &pkts {
            obs.offer(p);
        }
        assert!(!obs.samples.is_empty());
        // Only inbound packets contributed.
        let inbound_edges = obs.samples.len();
        let mut both = SpinObserver::new(Direction::Outbound);
        for p in &pkts {
            both.offer(p);
        }
        assert!(both.samples.len().abs_diff(inbound_edges) <= 2);
    }
}
