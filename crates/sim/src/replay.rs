//! Trace replay: feed stored traces (native or pcap) through any consumer —
//! the `tcpreplay`-through-the-switch workflow of paper §5, in software.

use dart_packet::parse::{parse_ethernet_frame, DirectionClassifier};
use dart_packet::pcap::PcapReader;
use dart_packet::trace::TraceReader;
use dart_packet::{PacketError, PacketMeta, PacketSource};
use std::io::Read;

/// A transformation applied to a captured packet sequence between loading
/// and consumption — the seam where fault injectors (packet drop,
/// duplication, reordering, truncation) plug into the replay path without
/// the consumer knowing the trace was doctored.
///
/// Implementations must be deterministic for a given internal state (e.g.
/// seeded RNG): replaying the same stored trace through the same transform
/// twice must yield identical packet sequences, since every differential
/// harness downstream relies on byte-reproducible inputs.
pub trait TraceTransform {
    /// Consume the captured packets and return the transformed sequence.
    fn apply(&mut self, packets: Vec<PacketMeta>) -> Vec<PacketMeta>;
}

/// The no-op transform: replay the capture as stored.
#[derive(Clone, Copy, Debug, Default)]
pub struct Identity;

impl TraceTransform for Identity {
    fn apply(&mut self, packets: Vec<PacketMeta>) -> Vec<PacketMeta> {
        packets
    }
}

/// Read an entire native trace from a reader.
pub fn load_native<R: Read>(reader: R) -> Result<Vec<PacketMeta>, PacketError> {
    TraceReader::new(reader)?.packets().collect()
}

/// Read a native trace and pass it through `transform` — the replay-side
/// fault-injection hook.
pub fn load_native_with<R: Read>(
    reader: R,
    transform: &mut dyn TraceTransform,
) -> Result<Vec<PacketMeta>, PacketError> {
    Ok(transform.apply(load_native(reader)?))
}

/// Read an entire pcap capture, parsing Ethernet/IPv4/TCP frames and
/// classifying directions. Unsupported packets (non-TCP, fragments, ARP...)
/// are skipped, exactly as the hardware parser would pass them through
/// unmonitored; `skipped` counts them.
pub fn load_pcap<R: Read>(
    reader: R,
    classifier: &dyn DirectionClassifier,
) -> Result<(Vec<PacketMeta>, u64), PacketError> {
    let pcap = PcapReader::new(reader)?;
    let mut packets = Vec::new();
    let mut skipped = 0u64;
    for rec in pcap.records() {
        let rec = rec?;
        match parse_ethernet_frame(rec.ts, &rec.data, classifier) {
            Ok(meta) => packets.push(meta),
            Err(PacketError::Unsupported { .. }) | Err(PacketError::Truncated { .. }) => {
                skipped += 1
            }
            Err(e) => return Err(e),
        }
    }
    Ok((packets, skipped))
}

/// Read a pcap capture and pass the parsed packets through `transform` —
/// the pcap-side fault-injection hook.
pub fn load_pcap_with<R: Read>(
    reader: R,
    classifier: &dyn DirectionClassifier,
    transform: &mut dyn TraceTransform,
) -> Result<(Vec<PacketMeta>, u64), PacketError> {
    let (packets, skipped) = load_pcap(reader, classifier)?;
    Ok((transform.apply(packets), skipped))
}

/// A replay-transformed [`PacketSource`]: an owned packet sequence —
/// sim-generated, loaded from a stored trace, or doctored by a
/// [`TraceTransform`] — streamed one packet at a time through the common
/// monitor path. The transform runs once, up front (fault injectors
/// reorder, so they need the whole capture); the consumer still reads
/// incrementally and never learns the trace was doctored.
#[derive(Clone, Debug)]
pub struct ReplaySource {
    packets: std::vec::IntoIter<PacketMeta>,
}

impl ReplaySource {
    /// Replay an owned packet sequence as captured.
    pub fn new(packets: Vec<PacketMeta>) -> ReplaySource {
        ReplaySource {
            packets: packets.into_iter(),
        }
    }

    /// Replay a packet sequence after passing it through `transform`.
    pub fn with_transform(
        packets: Vec<PacketMeta>,
        transform: &mut dyn TraceTransform,
    ) -> ReplaySource {
        ReplaySource::new(transform.apply(packets))
    }

    /// Replay a stored native trace.
    pub fn from_native<R: Read>(reader: R) -> Result<ReplaySource, PacketError> {
        Ok(ReplaySource::new(load_native(reader)?))
    }

    /// Packets not yet replayed.
    pub fn remaining(&self) -> usize {
        self.packets.len()
    }
}

impl PacketSource for ReplaySource {
    fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError> {
        Ok(self.packets.next())
    }
}

impl From<Vec<PacketMeta>> for ReplaySource {
    fn from(packets: Vec<PacketMeta>) -> ReplaySource {
        ReplaySource::new(packets)
    }
}

/// Write packets as a pcap file (synthesized Ethernet frames).
pub fn dump_pcap<W: std::io::Write>(packets: &[PacketMeta], out: W) -> Result<u64, PacketError> {
    let mut w = dart_packet::pcap::PcapWriter::new(out, dart_packet::pcap::linktype::ETHERNET)?;
    for p in packets {
        let frame = dart_packet::parse::synthesize_frame(p);
        w.write_record(p.ts, &frame)?;
    }
    let n = w.records_written();
    w.finish()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{campus, CampusConfig};
    use dart_packet::parse::PrefixClassifier;
    use dart_packet::trace;
    use std::net::Ipv4Addr;

    #[test]
    fn native_round_trip_via_replay() {
        let t = campus(CampusConfig {
            connections: 30,
            duration: dart_packet::SECOND,
            ..CampusConfig::default()
        });
        let bytes = trace::to_bytes(&t.packets);
        let back = load_native(&bytes[..]).unwrap();
        assert_eq!(back, t.packets);
    }

    #[test]
    fn transform_hook_sees_and_replaces_the_capture() {
        struct KeepHalf;
        impl TraceTransform for KeepHalf {
            fn apply(&mut self, packets: Vec<PacketMeta>) -> Vec<PacketMeta> {
                let keep = packets.len() / 2;
                packets.into_iter().take(keep).collect()
            }
        }
        let t = campus(CampusConfig {
            connections: 20,
            duration: dart_packet::SECOND,
            ..CampusConfig::default()
        });
        let bytes = trace::to_bytes(&t.packets);
        let full = load_native_with(&bytes[..], &mut Identity).unwrap();
        assert_eq!(full, t.packets);
        let half = load_native_with(&bytes[..], &mut KeepHalf).unwrap();
        assert_eq!(half.len(), t.packets.len() / 2);
        assert_eq!(half[..], t.packets[..half.len()]);
    }

    #[test]
    fn replay_source_streams_the_transformed_capture() {
        struct KeepHalf;
        impl TraceTransform for KeepHalf {
            fn apply(&mut self, packets: Vec<PacketMeta>) -> Vec<PacketMeta> {
                let keep = packets.len() / 2;
                packets.into_iter().take(keep).collect()
            }
        }
        let t = campus(CampusConfig {
            connections: 20,
            duration: dart_packet::SECOND,
            ..CampusConfig::default()
        });
        let mut src = ReplaySource::with_transform(t.packets.clone(), &mut KeepHalf);
        assert_eq!(src.remaining(), t.packets.len() / 2);
        let mut streamed = Vec::new();
        while let Some(p) = src.next_packet().unwrap() {
            streamed.push(p);
        }
        assert_eq!(streamed[..], t.packets[..t.packets.len() / 2]);
        assert!(src.next_packet().unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn pcap_round_trip_preserves_every_tcp_packet() {
        let t = campus(CampusConfig {
            connections: 30,
            duration: dart_packet::SECOND,
            ..CampusConfig::default()
        });
        let mut buf = Vec::new();
        let n = dump_pcap(&t.packets, &mut buf).unwrap();
        assert_eq!(n as usize, t.packets.len());
        let classifier = PrefixClassifier::new([(Ipv4Addr::new(10, 0, 0, 0), 8u8)]);
        let (back, skipped) = load_pcap(&buf[..], &classifier).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(back, t.packets);
    }
}
