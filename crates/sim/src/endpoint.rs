//! A compact TCP endpoint state machine: enough of real TCP to generate the
//! packet dynamics Dart must survive — slow start and AIMD congestion
//! control, timeout and fast retransmission, delayed and cumulative ACKs,
//! out-of-order buffering with duplicate ACKs, FIN teardown, and abort on
//! retry exhaustion.
//!
//! The endpoint is a pure state machine: network and timer interactions are
//! returned as [`Action`]s for the simulator to interpret, and timers use
//! generation counters so a rearm invalidates stale firings.

use dart_packet::{Nanos, SeqNum, TcpFlags};
use std::collections::BTreeMap;

/// A simulated TCP segment (no addresses — the connection supplies those).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimPacket {
    /// Wire sequence number.
    pub seq: SeqNum,
    /// Wire acknowledgment number (valid when the ACK flag is set).
    pub ack: SeqNum,
    /// Flags.
    pub flags: TcpFlags,
    /// Payload bytes.
    pub len: u32,
    /// RFC 7323 timestamp option; endpoints leave this `None` and the
    /// simulator stamps it at transmit time for clock-enabled connections.
    pub tsopt: Option<(u32, u32)>,
}

/// What the endpoint asks the simulator to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Transmit a segment now.
    Send(SimPacket),
    /// (Re)arm the retransmission timer `after` nanoseconds from now with
    /// generation `gen`; earlier generations are stale.
    ArmRto {
        /// Relative delay.
        after: Nanos,
        /// Generation tag.
        gen: u64,
    },
    /// Arm the delayed-ACK timer.
    ArmDelack {
        /// Relative delay.
        after: Nanos,
        /// Generation tag.
        gen: u64,
    },
}

/// Endpoint tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EndpointCfg {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Initial congestion window in segments.
    pub init_cwnd_segs: u32,
    /// Receive/flow-control window cap in segments.
    pub rwnd_segs: u32,
    /// Delayed-ACK timeout.
    pub delack_timeout: Nanos,
    /// ACK every n-th in-order segment immediately.
    pub delack_every: u32,
    /// Initial retransmission timeout (scenarios set ≈ max(200 ms, 3·RTT)).
    pub rto_initial: Nanos,
    /// Give up after this many consecutive timeouts.
    pub max_retries: u32,
}

impl Default for EndpointCfg {
    fn default() -> Self {
        EndpointCfg {
            mss: 1460,
            init_cwnd_segs: 10,
            rwnd_segs: 64,
            delack_timeout: 40 * dart_packet::MILLISECOND,
            delack_every: 2,
            rto_initial: 200 * dart_packet::MILLISECOND,
            max_retries: 5,
        }
    }
}

/// One application-level send: once `after_received` payload bytes have
/// arrived from the peer, enqueue `bytes` for transmission. This scripts
/// request/response exchanges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppSend {
    /// Cumulative received-byte trigger.
    pub after_received: u64,
    /// Bytes to enqueue.
    pub bytes: u64,
}

/// Connection state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// Not yet opened.
    Closed,
    /// SYN sent, awaiting SYN-ACK (client).
    SynSent,
    /// SYN received, SYN-ACK sent (server).
    SynRcvd,
    /// Data transfer.
    Established,
    /// FIN sent, draining.
    Finishing,
    /// Fully closed.
    Done,
    /// Gave up after repeated timeouts.
    Aborted,
}

/// The endpoint.
#[derive(Clone, Debug)]
pub struct Endpoint {
    cfg: EndpointCfg,
    /// Our initial sequence number (the SYN's).
    iss: u32,
    peer_iss: Option<u32>,
    /// Connection state.
    pub state: ConnState,

    // --- send side (payload byte offsets; the SYN occupies "offset -1") ---
    snd_una: u64,
    snd_nxt: u64,
    committed: u64,
    outstanding: BTreeMap<u64, u32>,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    retries: u32,
    rto_backoff: u32,
    rto_gen: u64,
    rto_armed: bool,
    script: Vec<AppSend>,
    script_idx: usize,
    close_after_recv: Option<u64>,
    want_close: bool,
    fin_sent: bool,
    fin_acked: bool,

    // --- receive side ---
    rcv_nxt: u64,
    ooo: BTreeMap<u64, u32>,
    peer_fin_at: Option<u64>,
    peer_fin_consumed: bool,
    segs_unacked: u32,
    delack_gen: u64,
    delack_armed: bool,

    /// Silent cut-off: once this many payload bytes have been received the
    /// endpoint goes dark — no ACKs, no data, no FIN (§3.2: "the receiver
    /// might just cut off the TCP session, never sending an ACK"). Strands
    /// the peer's in-flight records in any monitor on the path.
    cutoff_after_recv: Option<u64>,

    // --- stats ---
    /// Data segments retransmitted (timeout + fast retransmit).
    pub retransmits: u64,
    /// Duplicate ACKs sent.
    pub dup_acks_sent: u64,
}

impl Endpoint {
    /// Build an endpoint. `script` lists application sends;
    /// `close_after_recv` makes the endpoint initiate FIN once its script is
    /// exhausted and that many bytes have arrived (`Some(0)` = close as soon
    /// as everything we queued is delivered; `None` = never initiate close,
    /// follow the peer's FIN).
    pub fn new(
        cfg: EndpointCfg,
        iss: u32,
        script: Vec<AppSend>,
        close_after_recv: Option<u64>,
    ) -> Endpoint {
        let cwnd = (cfg.init_cwnd_segs * cfg.mss) as f64;
        Endpoint {
            cfg,
            iss,
            peer_iss: None,
            state: ConnState::Closed,
            snd_una: 0,
            snd_nxt: 0,
            committed: 0,
            outstanding: BTreeMap::new(),
            cwnd,
            ssthresh: f64::MAX,
            dup_acks: 0,
            retries: 0,
            rto_backoff: 0,
            rto_gen: 0,
            rto_armed: false,
            script,
            script_idx: 0,
            close_after_recv,
            want_close: false,
            fin_sent: false,
            fin_acked: false,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            peer_fin_at: None,
            peer_fin_consumed: false,
            segs_unacked: 0,
            delack_gen: 0,
            delack_armed: false,
            cutoff_after_recv: None,
            retransmits: 0,
            dup_acks_sent: 0,
        }
    }

    /// Arrange a silent cut-off after `bytes` of received payload.
    pub fn set_cutoff_after_recv(&mut self, bytes: u64) {
        self.cutoff_after_recv = Some(bytes);
    }

    /// Bytes of payload the peer has delivered in order.
    pub fn received(&self) -> u64 {
        self.rcv_nxt
    }

    /// Bytes acknowledged by the peer.
    pub fn acked(&self) -> u64 {
        self.snd_una
    }

    /// True when the connection can make no further progress.
    pub fn finished(&self) -> bool {
        matches!(self.state, ConnState::Done | ConnState::Aborted)
    }

    // --- wire <-> offset conversion -------------------------------------

    fn wire_seq(&self, off: u64) -> SeqNum {
        SeqNum(self.iss.wrapping_add(1).wrapping_add(off as u32))
    }

    fn wire_ack(&self) -> SeqNum {
        let p = self.peer_iss.expect("ack before SYN seen");
        let fin_extra = u64::from(self.peer_fin_consumed);
        SeqNum(
            p.wrapping_add(1)
                .wrapping_add((self.rcv_nxt + fin_extra) as u32),
        )
    }

    fn ack_to_offset(&self, ack: SeqNum) -> u64 {
        ack.raw().wrapping_sub(self.iss.wrapping_add(1)) as u64
    }

    fn seq_to_offset(&self, seq: SeqNum) -> u64 {
        let p = self.peer_iss.expect("data before SYN seen");
        seq.raw().wrapping_sub(p.wrapping_add(1)) as u64
    }

    // --- opening ---------------------------------------------------------

    /// Client-side open: emit the SYN.
    pub fn open(&mut self) -> Vec<Action> {
        assert_eq!(self.state, ConnState::Closed);
        self.state = ConnState::SynSent;
        let mut acts = vec![Action::Send(SimPacket {
            tsopt: None,
            seq: SeqNum(self.iss),
            ack: SeqNum::ZERO,
            flags: TcpFlags::SYN,
            len: 0,
        })];
        acts.push(self.arm_rto());
        acts
    }

    // --- timers ----------------------------------------------------------

    fn arm_rto(&mut self) -> Action {
        self.rto_gen += 1;
        self.rto_armed = true;
        Action::ArmRto {
            after: self.cfg.rto_initial << self.rto_backoff.min(6),
            gen: self.rto_gen,
        }
    }

    fn cancel_rto(&mut self) {
        self.rto_gen += 1;
        self.rto_armed = false;
    }

    /// Retransmission timer fired.
    pub fn on_rto(&mut self, gen: u64) -> Vec<Action> {
        if gen != self.rto_gen || !self.rto_armed || self.finished() {
            return Vec::new();
        }
        self.retries += 1;
        if self.retries > self.cfg.max_retries {
            self.state = ConnState::Aborted;
            return Vec::new();
        }
        self.rto_backoff += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.cfg.mss as f64);
        self.cwnd = self.cfg.mss as f64;
        let mut acts = Vec::new();
        match self.state {
            ConnState::SynSent => acts.push(Action::Send(SimPacket {
                tsopt: None,
                seq: SeqNum(self.iss),
                ack: SeqNum::ZERO,
                flags: TcpFlags::SYN,
                len: 0,
            })),
            ConnState::SynRcvd => acts.push(Action::Send(SimPacket {
                tsopt: None,
                seq: SeqNum(self.iss),
                ack: self.wire_ack(),
                flags: TcpFlags::SYN | TcpFlags::ACK,
                len: 0,
            })),
            _ => {
                if let Some((&off, &len)) = self.outstanding.iter().next() {
                    self.retransmits += 1;
                    acts.push(Action::Send(self.data_segment(off, len)));
                } else if self.fin_sent && !self.fin_acked {
                    acts.push(Action::Send(self.fin_segment()));
                }
            }
        }
        acts.push(self.arm_rto());
        acts
    }

    /// Delayed-ACK timer fired.
    pub fn on_delack(&mut self, gen: u64) -> Vec<Action> {
        if gen != self.delack_gen || !self.delack_armed || self.finished() {
            return Vec::new();
        }
        self.delack_armed = false;
        self.segs_unacked = 0;
        vec![Action::Send(self.pure_ack())]
    }

    // --- segment construction --------------------------------------------

    fn data_segment(&self, off: u64, len: u32) -> SimPacket {
        SimPacket {
            tsopt: None,
            seq: self.wire_seq(off),
            ack: if self.peer_iss.is_some() {
                self.wire_ack()
            } else {
                SeqNum::ZERO
            },
            flags: if self.peer_iss.is_some() {
                TcpFlags::ACK | TcpFlags::PSH
            } else {
                TcpFlags::PSH
            },
            len,
        }
    }

    fn fin_segment(&self) -> SimPacket {
        SimPacket {
            tsopt: None,
            seq: self.wire_seq(self.committed),
            ack: self.wire_ack(),
            flags: TcpFlags::FIN | TcpFlags::ACK,
            len: 0,
        }
    }

    fn pure_ack(&self) -> SimPacket {
        SimPacket {
            tsopt: None,
            seq: self.wire_seq(self.snd_nxt),
            ack: self.wire_ack(),
            flags: TcpFlags::ACK,
            len: 0,
        }
    }

    /// A keep-alive probe: a pure ACK re-asserting the current edge.
    pub fn keepalive(&self) -> Option<SimPacket> {
        if self.peer_iss.is_some() && !self.finished() {
            Some(self.pure_ack())
        } else {
            None
        }
    }

    // --- application script ----------------------------------------------

    fn advance_script(&mut self) {
        while let Some(s) = self.script.get(self.script_idx) {
            if self.rcv_nxt >= s.after_received
                && (self.state == ConnState::Established || self.state == ConnState::SynRcvd)
            {
                self.committed += s.bytes;
                self.script_idx += 1;
            } else {
                break;
            }
        }
        if self.script_idx >= self.script.len() {
            if let Some(need) = self.close_after_recv {
                if self.rcv_nxt >= need {
                    self.want_close = true;
                }
            }
            // Follow the peer's close once everything is delivered.
            if self.peer_fin_consumed {
                self.want_close = true;
            }
        }
    }

    fn effective_window(&self) -> u64 {
        (self.cwnd.min((self.cfg.rwnd_segs * self.cfg.mss) as f64)) as u64
    }

    fn try_send(&mut self) -> Vec<Action> {
        let mut acts = Vec::new();
        if !matches!(self.state, ConnState::Established | ConnState::Finishing) {
            return acts;
        }
        let mut sent_any = false;
        while self.snd_nxt < self.committed
            && self.snd_nxt.saturating_sub(self.snd_una) < self.effective_window()
        {
            let len = (self.committed - self.snd_nxt).min(self.cfg.mss as u64) as u32;
            let pkt = self.data_segment(self.snd_nxt, len);
            self.outstanding.insert(self.snd_nxt, len);
            self.snd_nxt += len as u64;
            acts.push(Action::Send(pkt));
            sent_any = true;
        }
        if self.want_close && !self.fin_sent && self.snd_nxt == self.committed {
            self.fin_sent = true;
            self.state = ConnState::Finishing;
            acts.push(Action::Send(self.fin_segment()));
            sent_any = true;
        }
        if sent_any {
            // Data carries our ACK: any pending delayed ACK is satisfied.
            if self.delack_armed {
                self.delack_armed = false;
                self.delack_gen += 1;
                self.segs_unacked = 0;
            }
            if !self.rto_armed {
                acts.push(self.arm_rto());
            }
        }
        acts
    }

    // --- segment arrival ---------------------------------------------------

    /// Process an arriving segment.
    pub fn on_segment(&mut self, pkt: &SimPacket) -> Vec<Action> {
        if self.finished() {
            return Vec::new();
        }
        if let Some(cut) = self.cutoff_after_recv {
            if self.rcv_nxt >= cut {
                // Gone dark: swallow the segment, answer nothing.
                self.state = ConnState::Aborted;
                return Vec::new();
            }
        }
        let mut acts = Vec::new();

        // SYN handling.
        if pkt.flags.is_syn() {
            if pkt.flags.is_ack() {
                // SYN-ACK (we are the client).
                if self.state == ConnState::SynSent {
                    self.peer_iss = Some(pkt.seq.raw());
                    self.state = ConnState::Established;
                    self.retries = 0;
                    self.rto_backoff = 0;
                    self.cancel_rto();
                    acts.push(Action::Send(self.pure_ack()));
                    self.advance_script();
                    acts.extend(self.try_send());
                }
            } else {
                // Bare SYN (we are the server).
                if self.state == ConnState::Closed || self.state == ConnState::SynRcvd {
                    self.peer_iss = Some(pkt.seq.raw());
                    self.state = ConnState::SynRcvd;
                    acts.push(Action::Send(SimPacket {
                        tsopt: None,
                        seq: SeqNum(self.iss),
                        ack: self.wire_ack(),
                        flags: TcpFlags::SYN | TcpFlags::ACK,
                        len: 0,
                    }));
                    acts.push(self.arm_rto());
                }
            }
            return acts;
        }

        if self.peer_iss.is_none() {
            // Data/ACK before any SYN: ignore (stray traffic).
            return acts;
        }

        // ACK processing.
        if pkt.flags.is_ack() {
            if self.state == ConnState::SynRcvd {
                self.state = ConnState::Established;
                self.retries = 0;
                self.rto_backoff = 0;
                self.cancel_rto();
                self.advance_script();
            }
            let ack_off = self.ack_to_offset(pkt.ack);
            let fin_extra = u64::from(self.fin_sent);
            if ack_off > self.snd_una && ack_off <= self.snd_nxt + fin_extra {
                // New data acknowledged.
                let newly = ack_off - self.snd_una;
                self.snd_una = ack_off.min(self.snd_nxt);
                self.dup_acks = 0;
                self.retries = 0;
                self.rto_backoff = 0;
                let covered: Vec<u64> =
                    self.outstanding.range(..ack_off).map(|(&o, _)| o).collect();
                for o in covered {
                    self.outstanding.remove(&o);
                }
                // Congestion control.
                if self.cwnd < self.ssthresh {
                    self.cwnd += newly.min(self.cfg.mss as u64) as f64; // slow start
                } else {
                    self.cwnd += (self.cfg.mss as f64) * (self.cfg.mss as f64) / self.cwnd;
                }
                if self.fin_sent && ack_off > self.committed {
                    self.fin_acked = true;
                }
                if self.outstanding.is_empty() && (!self.fin_sent || self.fin_acked) {
                    self.cancel_rto();
                } else {
                    acts.push(self.arm_rto());
                }
                // The window just opened: transmit anything now admissible.
                acts.extend(self.try_send());
            } else if ack_off == self.snd_una
                && pkt.len == 0
                && !pkt.flags.is_fin()
                && !self.outstanding.is_empty()
            {
                // Duplicate ACK.
                self.dup_acks += 1;
                if self.dup_acks == 3 {
                    if let Some((&off, &len)) = self.outstanding.iter().next() {
                        self.retransmits += 1;
                        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.cfg.mss as f64);
                        self.cwnd = self.ssthresh;
                        acts.push(Action::Send(self.data_segment(off, len)));
                        acts.push(self.arm_rto());
                    }
                }
            }
        }

        // Data processing.
        if pkt.len > 0 {
            let seq_off = self.seq_to_offset(pkt.seq);
            let end = seq_off + pkt.len as u64;
            if seq_off == self.rcv_nxt {
                self.rcv_nxt = end;
                // Merge any now-contiguous out-of-order segments.
                while let Some((&o, &l)) = self.ooo.iter().next() {
                    if o <= self.rcv_nxt {
                        self.ooo.remove(&o);
                        self.rcv_nxt = self.rcv_nxt.max(o + l as u64);
                    } else {
                        break;
                    }
                }
                // A segment that fills a hole must be ACKed immediately
                // (RFC 5681) so the sender exits fast recovery.
                let filled_hole = self.rcv_nxt > end;
                self.advance_script();
                self.segs_unacked += 1;
                let fin_ready = self.peer_fin_at == Some(self.rcv_nxt);
                if fin_ready {
                    self.consume_fin();
                }
                // Try to send (response data piggybacks our ACK).
                let sends = self.try_send();
                let sent_data = !sends.is_empty();
                acts.extend(sends);
                if fin_ready || filled_hole || self.segs_unacked >= self.cfg.delack_every {
                    self.segs_unacked = 0;
                    if self.delack_armed {
                        self.delack_armed = false;
                        self.delack_gen += 1;
                    }
                    if !sent_data {
                        acts.push(Action::Send(self.pure_ack()));
                    }
                } else if !sent_data && !self.delack_armed {
                    self.delack_armed = true;
                    self.delack_gen += 1;
                    acts.push(Action::ArmDelack {
                        after: self.cfg.delack_timeout,
                        gen: self.delack_gen,
                    });
                }
            } else if seq_off > self.rcv_nxt {
                // Out of order: buffer and emit a duplicate ACK.
                self.ooo.insert(seq_off, pkt.len);
                self.dup_acks_sent += 1;
                acts.push(Action::Send(self.pure_ack()));
            } else {
                // Entirely old bytes (spurious retransmission): re-ACK.
                self.dup_acks_sent += 1;
                acts.push(Action::Send(self.pure_ack()));
            }
        } else if pkt.flags.is_fin() {
            // FIN with no data.
            let fin_off = self.seq_to_offset(pkt.seq);
            self.peer_fin_at = Some(fin_off);
            if fin_off == self.rcv_nxt && !self.peer_fin_consumed {
                self.consume_fin();
                self.advance_script();
                let sends = self.try_send();
                let sent = !sends.is_empty();
                acts.extend(sends);
                if !sent {
                    acts.push(Action::Send(self.pure_ack()));
                }
            } else if fin_off < self.rcv_nxt || self.peer_fin_consumed {
                acts.push(Action::Send(self.pure_ack()));
            }
        } else if pkt.flags.is_fin() && pkt.len > 0 {
            // FIN piggybacked on data is handled by the data path above;
            // record the FIN position for when data completes.
            let fin_off = self.seq_to_offset(pkt.seq) + pkt.len as u64;
            self.peer_fin_at = Some(fin_off);
        }

        // Completion check.
        if self.fin_sent && self.fin_acked && (self.peer_fin_consumed || self.peer_fin_at.is_none())
        {
            // We closed; if the peer also closed (or never will), we're done.
            if self.peer_fin_consumed || self.close_after_recv.is_some() {
                self.state = ConnState::Done;
            }
        }
        acts
    }

    fn consume_fin(&mut self) {
        self.peer_fin_consumed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive two endpoints against each other with a perfect, zero-delay
    /// network; returns all segments exchanged (client's first).
    fn run_loopback(
        mut client: Endpoint,
        mut server: Endpoint,
        max_steps: usize,
    ) -> (Endpoint, Endpoint, Vec<(bool, SimPacket)>) {
        let mut wire: std::collections::VecDeque<(bool, SimPacket)> = Default::default();
        let mut log = Vec::new();
        // Pending delayed-ACK timers, fired when the wire drains (the
        // loopback harness has no clock).
        let mut delacks: Vec<(bool, u64)> = Vec::new();
        let handle = |acts: Vec<Action>,
                      from_client: bool,
                      wire: &mut std::collections::VecDeque<(bool, SimPacket)>,
                      delacks: &mut Vec<(bool, u64)>| {
            for a in acts {
                match a {
                    Action::Send(p) => wire.push_back((from_client, p)),
                    Action::ArmDelack { gen, .. } => delacks.push((from_client, gen)),
                    Action::ArmRto { .. } => {}
                }
            }
        };
        handle(client.open(), true, &mut wire, &mut delacks);
        let mut steps = 0;
        loop {
            let Some((from_client, pkt)) = wire.pop_front() else {
                // Wire idle: fire the oldest pending delayed ACK, if any.
                let Some((side, gen)) = delacks.pop() else {
                    break;
                };
                let ep = if side { &mut client } else { &mut server };
                let acts = ep.on_delack(gen);
                handle(acts, side, &mut wire, &mut delacks);
                continue;
            };
            log.push((from_client, pkt));
            let dst = if from_client {
                &mut server
            } else {
                &mut client
            };
            let acts = dst.on_segment(&pkt);
            handle(acts, !from_client, &mut wire, &mut delacks);
            steps += 1;
            if steps > max_steps {
                panic!("loopback did not converge");
            }
        }
        (client, server, log)
    }

    fn client_server(req: u64, resp: u64) -> (Endpoint, Endpoint) {
        let cfg = EndpointCfg::default();
        let client = Endpoint::new(
            cfg,
            1000,
            vec![AppSend {
                after_received: 0,
                bytes: req,
            }],
            Some(resp),
        );
        let server = Endpoint::new(
            cfg,
            99_000,
            vec![AppSend {
                after_received: req,
                bytes: resp,
            }],
            None,
        );
        (client, server)
    }

    #[test]
    fn request_response_completes() {
        let (c, s) = client_server(500, 10_000);
        let (c, s, log) = run_loopback(c, s, 1000);
        assert_eq!(c.state, ConnState::Done);
        assert!(matches!(s.state, ConnState::Done | ConnState::Finishing));
        assert_eq!(s.received(), 500);
        assert_eq!(c.received(), 10_000);
        // Handshake appears exactly once.
        let syns = log.iter().filter(|(_, p)| p.flags.is_syn()).count();
        assert_eq!(syns, 2); // SYN + SYN-ACK
        assert_eq!(c.retransmits + s.retransmits, 0);
    }

    #[test]
    fn large_transfer_segments_at_mss() {
        let (c, s) = client_server(100, 100_000);
        let (_, _, log) = run_loopback(c, s, 10_000);
        let data_segments: Vec<u32> = log
            .iter()
            .filter(|(fc, p)| !fc && p.len > 0)
            .map(|(_, p)| p.len)
            .collect();
        assert!(data_segments.len() >= 69); // 100000 / 1460 ≈ 68.5
        assert!(data_segments.iter().all(|&l| l <= 1460));
        let total: u64 = data_segments.iter().map(|&l| l as u64).sum();
        assert_eq!(total, 100_000);
    }

    #[test]
    fn cumulative_acks_thin_the_ack_stream() {
        let (c, s) = client_server(100, 50_000);
        let (_, _, log) = run_loopback(c, s, 10_000);
        let data_from_server = log.iter().filter(|(fc, p)| !fc && p.len > 0).count();
        let acks_from_client = log
            .iter()
            .filter(|(fc, p)| *fc && p.len == 0 && p.flags.is_ack() && !p.flags.is_syn())
            .count();
        // Delayed ACKs: roughly one ACK per two data segments.
        assert!(
            acks_from_client < data_from_server,
            "acks {acks_from_client} vs data {data_from_server}"
        );
    }

    #[test]
    fn out_of_order_triggers_dup_ack_and_buffering() {
        let cfg = EndpointCfg::default();
        let mut ep = Endpoint::new(cfg, 5, vec![], None);
        // Fake the peer handshake.
        ep.on_segment(&SimPacket {
            tsopt: None,
            seq: SeqNum(100),
            ack: SeqNum::ZERO,
            flags: TcpFlags::SYN,
            len: 0,
        });
        assert_eq!(ep.state, ConnState::SynRcvd);
        // Deliver segment 2 before segment 1: dup ACK expected.
        let acts = ep.on_segment(&SimPacket {
            tsopt: None,
            seq: SeqNum(101 + 1000),
            ack: SeqNum(6),
            flags: TcpFlags::ACK,
            len: 1000,
        });
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send(p) if p.len == 0 && p.ack == SeqNum(101)
        )));
        assert_eq!(ep.dup_acks_sent, 1);
        // Now the missing first segment: cumulative ACK jumps to 2101.
        let acts = ep.on_segment(&SimPacket {
            tsopt: None,
            seq: SeqNum(101),
            ack: SeqNum(6),
            flags: TcpFlags::ACK,
            len: 1000,
        });
        assert_eq!(ep.received(), 2000);
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send(p) if p.ack == SeqNum(2101)
        )));
    }

    #[test]
    fn rto_retransmits_and_backs_off() {
        let cfg = EndpointCfg::default();
        let mut client = Endpoint::new(
            cfg,
            7,
            vec![AppSend {
                after_received: 0,
                bytes: 100,
            }],
            Some(0),
        );
        let acts = client.open();
        let Action::ArmRto { gen, after } = acts[1] else {
            panic!("expected rto arm");
        };
        assert_eq!(after, cfg.rto_initial);
        // Fire: SYN retransmitted with doubled timeout.
        let acts = client.on_rto(gen);
        assert!(matches!(acts[0], Action::Send(p) if p.flags.is_syn()));
        let Action::ArmRto { after: a2, .. } = acts[1] else {
            panic!();
        };
        assert_eq!(a2, cfg.rto_initial * 2);
    }

    #[test]
    fn retry_exhaustion_aborts() {
        let cfg = EndpointCfg {
            max_retries: 2,
            ..EndpointCfg::default()
        };
        let mut client = Endpoint::new(cfg, 7, vec![], Some(0));
        let mut acts = client.open();
        for _ in 0..3 {
            let gen = acts
                .iter()
                .find_map(|a| match a {
                    Action::ArmRto { gen, .. } => Some(*gen),
                    _ => None,
                })
                .expect("rto armed");
            acts = client.on_rto(gen);
        }
        assert_eq!(client.state, ConnState::Aborted);
    }

    #[test]
    fn stale_timer_generations_ignored() {
        let cfg = EndpointCfg::default();
        let mut client = Endpoint::new(cfg, 7, vec![], Some(0));
        let acts = client.open();
        let Action::ArmRto { gen, .. } = acts[1] else {
            panic!();
        };
        // A rearm bumps the generation; the old timer must be a no-op.
        let _ = client.on_rto(gen); // legitimate: produces new gen
        assert!(client.on_rto(gen).is_empty());
    }

    #[test]
    fn delack_timer_flushes_pending_ack() {
        let cfg = EndpointCfg::default();
        let mut ep = Endpoint::new(cfg, 5, vec![], None);
        ep.on_segment(&SimPacket {
            tsopt: None,
            seq: SeqNum(100),
            ack: SeqNum::ZERO,
            flags: TcpFlags::SYN,
            len: 0,
        });
        // One in-order segment: delayed-ACK armed rather than immediate ACK.
        let acts = ep.on_segment(&SimPacket {
            tsopt: None,
            seq: SeqNum(101),
            ack: SeqNum(6),
            flags: TcpFlags::ACK,
            len: 500,
        });
        let gen = acts
            .iter()
            .find_map(|a| match a {
                Action::ArmDelack { gen, .. } => Some(*gen),
                _ => None,
            })
            .expect("delack armed");
        assert!(!acts.iter().any(|a| matches!(a, Action::Send(_))));
        let acts = ep.on_delack(gen);
        assert!(matches!(acts[0], Action::Send(p) if p.ack == SeqNum(601)));
    }

    #[test]
    fn keepalive_is_pure_ack() {
        let (c, s) = client_server(100, 100);
        let (c, _, _) = run_loopback(c, s, 1000);
        // Connection done: no keepalive.
        assert!(c.keepalive().is_none() || !c.finished());
        let cfg = EndpointCfg::default();
        let mut ep = Endpoint::new(cfg, 5, vec![], None);
        assert!(ep.keepalive().is_none(), "no keepalive before handshake");
        ep.on_segment(&SimPacket {
            tsopt: None,
            seq: SeqNum(100),
            ack: SeqNum::ZERO,
            flags: TcpFlags::SYN,
            len: 0,
        });
        let ka = ep.keepalive().unwrap();
        assert!(ka.flags.is_ack());
        assert_eq!(ka.len, 0);
    }

    #[test]
    fn multi_round_request_response() {
        let cfg = EndpointCfg::default();
        let rounds = 3u64;
        let client = Endpoint::new(
            cfg,
            10,
            (0..rounds)
                .map(|i| AppSend {
                    after_received: i * 5000,
                    bytes: 300,
                })
                .collect(),
            Some(rounds * 5000),
        );
        let server = Endpoint::new(
            cfg,
            20,
            (0..rounds)
                .map(|i| AppSend {
                    after_received: (i + 1) * 300,
                    bytes: 5000,
                })
                .collect(),
            None,
        );
        let (c, s, _) = run_loopback(client, server, 10_000);
        assert_eq!(c.received(), rounds * 5000);
        assert_eq!(s.received(), rounds * 300);
        assert_eq!(c.state, ConnState::Done);
    }
}
