//! Deterministic randomness and the distributions the workload generator
//! draws from.
//!
//! Everything is seeded: a scenario built twice from the same seed yields
//! byte-identical traces, which the parameter sweeps (Fig. 11–13) rely on to
//! compare configurations on *the same* input.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded simulation RNG with distribution helpers.
#[derive(Clone, Debug)]
pub struct SimRng {
    rng: StdRng,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator (stable for a given label).
    pub fn fork(&mut self, label: u64) -> SimRng {
        SimRng::new(self.rng.gen::<u64>() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen::<f64>() < p
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo);
        self.rng.gen_range(lo..hi)
    }

    /// Uniform `u32`.
    pub fn next_u32(&mut self) -> u32 {
        self.rng.gen()
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal with the given *median* and log-space sigma.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        median * (sigma * self.normal()).exp()
    }

    /// Exponential with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Bounded Pareto (heavy-tailed sizes): scale `xm`, shape `alpha`,
    /// truncated at `cap`.
    pub fn pareto(&mut self, xm: f64, alpha: f64, cap: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        (xm / u.powf(1.0 / alpha)).min(cap)
    }

    /// Geometric count ≥ 1 with success probability `p` (mean 1/p).
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0);
        let mut n = 1;
        while !self.chance(p) && n < 10_000 {
            n += 1;
        }
        n
    }

    /// Pick an index from cumulative weights (mixture components).
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        let mut x = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn forks_are_independent_but_stable() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.next_u32(), fb.next_u32());
    }

    #[test]
    fn lognormal_median_is_roughly_right() {
        let mut r = SimRng::new(1);
        let mut vals: Vec<f64> = (0..20_000).map(|_| r.lognormal(13.0, 0.8)).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[vals.len() / 2];
        assert!((median - 13.0).abs() < 1.0, "median {median}");
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut r = SimRng::new(2);
        let mean: f64 = (0..20_000).map(|_| r.exponential(5.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 5.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale_and_cap() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.pareto(10.0, 1.2, 1000.0);
            assert!((10.0..=1000.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn geometric_mean_tracks_p() {
        let mut r = SimRng::new(5);
        let mean: f64 = (0..20_000).map(|_| r.geometric(0.25) as f64).sum::<f64>() / 20_000.0;
        assert!((mean - 4.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn weighted_pick_in_bounds() {
        let mut r = SimRng::new(6);
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            counts[r.pick_weighted(&[1.0, 2.0, 1.0])] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0));
        assert!(counts[1] > counts[0] && counts[1] > counts[2]);
    }
}
