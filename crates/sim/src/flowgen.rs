//! Workload models: the statistical shapes behind the synthetic campus
//! trace (the paper's anonymized Princeton trace substitute — see
//! DESIGN.md's substitution table).
//!
//! Calibration targets come from the paper's published macro-properties:
//! external RTTs with a ~13–15 ms median, ~40–60 ms p95, ~215 ms p99 and a
//! long keep-alive tail (Fig. 9b/9c); wired internal RTTs mostly below 1 ms
//! vs wireless with a >20 ms tail (Fig. 6); 72.5% incomplete handshakes
//! (Fig. 10); heavy-tailed flow sizes at roughly 100 packets per connection
//! on average.

use crate::rng::SimRng;
use dart_packet::{FlowKey, Nanos, MICROSECOND, MILLISECOND};
use std::net::Ipv4Addr;

/// Subnet class of a campus client (Fig. 6 contrasts the two).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Wired office LAN: sub-millisecond internal RTTs.
    Wired,
    /// Campus Wi-Fi: milliseconds to tens of milliseconds.
    Wireless,
}

/// External (monitor ↔ Internet server) round-trip model: a three-component
/// mixture of log-normals — CDN-near, regional, and far-away servers.
#[derive(Clone, Copy, Debug)]
pub struct ExternalRttModel {
    weights: [f64; 3],
    medians_ms: [f64; 3],
    sigmas: [f64; 3],
}

impl Default for ExternalRttModel {
    fn default() -> Self {
        ExternalRttModel {
            weights: [0.64, 0.31, 0.05],
            medians_ms: [9.5, 20.0, 70.0],
            sigmas: [0.35, 0.40, 0.50],
        }
    }
}

impl ExternalRttModel {
    /// Draw one external-leg RTT.
    pub fn sample(&self, rng: &mut SimRng) -> Nanos {
        let i = rng.pick_weighted(&self.weights);
        let ms = rng.lognormal(self.medians_ms[i], self.sigmas[i]);
        (ms.clamp(0.5, 400.0) * MILLISECOND as f64) as Nanos
    }
}

/// Internal (campus client ↔ monitor) round-trip model.
#[derive(Clone, Copy, Debug)]
pub struct InternalRttModel {
    /// Wired: a single tight log-normal.
    wired_median_ms: f64,
    wired_sigma: f64,
    /// Wireless: bimodal — good coverage vs contended/roaming.
    wireless_good_median_ms: f64,
    wireless_good_sigma: f64,
    wireless_bad_median_ms: f64,
    wireless_bad_sigma: f64,
    wireless_bad_frac: f64,
}

impl Default for InternalRttModel {
    fn default() -> Self {
        InternalRttModel {
            wired_median_ms: 0.35,
            wired_sigma: 0.5,
            wireless_good_median_ms: 2.0,
            wireless_good_sigma: 0.8,
            wireless_bad_median_ms: 30.0,
            wireless_bad_sigma: 0.7,
            wireless_bad_frac: 0.3,
        }
    }
}

impl InternalRttModel {
    /// Draw one internal-leg RTT for the given access class.
    pub fn sample(&self, access: Access, rng: &mut SimRng) -> Nanos {
        let ms = match access {
            Access::Wired => rng.lognormal(self.wired_median_ms, self.wired_sigma),
            Access::Wireless => {
                if rng.chance(self.wireless_bad_frac) {
                    rng.lognormal(self.wireless_bad_median_ms, self.wireless_bad_sigma)
                } else {
                    rng.lognormal(self.wireless_good_median_ms, self.wireless_good_sigma)
                }
            }
        };
        (ms.clamp(0.05, 500.0) * MILLISECOND as f64).max(MICROSECOND as f64) as Nanos
    }
}

/// Transfer-size model: request sizes, heavy-tailed response sizes, and
/// rounds per connection.
#[derive(Clone, Copy, Debug)]
pub struct SizeModel {
    /// Median request size in bytes.
    pub request_median: f64,
    /// Request size log-sigma.
    pub request_sigma: f64,
    /// Mixture weights: small / medium / large responses.
    pub response_weights: [f64; 3],
    /// Mean rounds per connection (geometric).
    pub mean_exchanges: f64,
    /// Scale factor applied to response sizes (sweeps use it to shrink the
    /// workload without changing its shape).
    pub response_scale: f64,
}

impl Default for SizeModel {
    fn default() -> Self {
        SizeModel {
            request_median: 1400.0,
            request_sigma: 1.2,
            response_weights: [0.80, 0.15, 0.05],
            mean_exchanges: 5.0,
            response_scale: 1.0,
        }
    }
}

impl SizeModel {
    /// Draw a request size in bytes.
    pub fn request(&self, rng: &mut SimRng) -> u64 {
        rng.lognormal(self.request_median, self.request_sigma)
            .clamp(50.0, 50_000.0) as u64
    }

    /// Draw a response size in bytes (heavy-tailed).
    pub fn response(&self, rng: &mut SimRng) -> u64 {
        let raw = match rng.pick_weighted(&self.response_weights) {
            0 => rng.lognormal(8_000.0, 1.2),
            1 => rng.lognormal(200_000.0, 1.0),
            _ => rng.pareto(1_000_000.0, 1.3, 50_000_000.0),
        };
        ((raw * self.response_scale).clamp(100.0, 100_000_000.0)) as u64
    }

    /// Draw the number of request/response rounds.
    pub fn exchanges(&self, rng: &mut SimRng) -> u64 {
        rng.geometric(1.0 / self.mean_exchanges.max(1.0))
    }
}

/// Address allocator for the synthetic campus: wired clients in
/// 10.8.0.0/16, wireless in 10.9.0.0/16, servers drawn from a pool of
/// popular /24s (Zipf-ish popularity).
#[derive(Clone, Debug)]
pub struct AddressPlan {
    server_prefixes: Vec<u32>,
    next_port: u16,
}

/// The wired client subnet.
pub const WIRED_SUBNET: (Ipv4Addr, u8) = (Ipv4Addr::new(10, 8, 0, 0), 16);
/// The wireless client subnet.
pub const WIRELESS_SUBNET: (Ipv4Addr, u8) = (Ipv4Addr::new(10, 9, 0, 0), 16);
/// The campus-wide internal prefix (both subnets).
pub const CAMPUS_PREFIX: (Ipv4Addr, u8) = (Ipv4Addr::new(10, 0, 0, 0), 8);

impl AddressPlan {
    /// Build a plan with `n_prefixes` server /24s.
    pub fn new(n_prefixes: usize, rng: &mut SimRng) -> AddressPlan {
        let mut server_prefixes = Vec::with_capacity(n_prefixes);
        for _ in 0..n_prefixes {
            // Public-looking /24 network addresses.
            let a = rng.range(11, 223) as u32;
            let b = rng.range(0, 256) as u32;
            let c = rng.range(0, 256) as u32;
            server_prefixes.push((a << 24) | (b << 16) | (c << 8));
        }
        AddressPlan {
            server_prefixes,
            next_port: 32768,
        }
    }

    /// Draw a client address in the given access class's subnet.
    pub fn client(&mut self, access: Access, rng: &mut SimRng) -> Ipv4Addr {
        let base = match access {
            Access::Wired => u32::from(WIRED_SUBNET.0),
            Access::Wireless => u32::from(WIRELESS_SUBNET.0),
        };
        Ipv4Addr::from(base | rng.range(2, 60_000) as u32)
    }

    /// Draw a server address with popularity skew (low-index prefixes are
    /// hotter, approximating Zipf).
    pub fn server(&mut self, rng: &mut SimRng) -> Ipv4Addr {
        let n = self.server_prefixes.len();
        // x^2 skew toward index 0.
        let idx = ((rng.unit() * rng.unit()) * n as f64) as usize % n;
        let host = rng.range(1, 255) as u32;
        Ipv4Addr::from(self.server_prefixes[idx] | host)
    }

    /// A fresh ephemeral client port.
    pub fn port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = if self.next_port >= 65_000 {
            32768
        } else {
            self.next_port + 1
        };
        p
    }

    /// Build a full flow key for one connection.
    pub fn flow(&mut self, access: Access, rng: &mut SimRng) -> FlowKey {
        let client = self.client(access, rng);
        let server = self.server(rng);
        let sport = self.port();
        let dport = if rng.chance(0.85) { 443 } else { 80 };
        FlowKey::new(client, sport, server, dport)
    }
}

/// True when `addr` is a campus-internal address.
pub fn is_campus(addr: Ipv4Addr) -> bool {
    u32::from(addr) >> 24 == 10
}

/// True when `addr` is in the wireless subnet.
pub fn is_wireless(addr: Ipv4Addr) -> bool {
    u32::from(addr) >> 16 == u32::from(WIRELESS_SUBNET.0) >> 16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_rtt_matches_paper_shape() {
        let model = ExternalRttModel::default();
        let mut rng = SimRng::new(11);
        let mut ms: Vec<f64> = (0..40_000)
            .map(|_| model.sample(&mut rng) as f64 / 1e6)
            .collect();
        ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p = |q: f64| ms[(q * ms.len() as f64) as usize];
        let median = p(0.5);
        let p95 = p(0.95);
        let p99 = p(0.99);
        // Per-connection draws; the *sample-weighted* trace distribution
        // (what Fig 9 reports) sits a little higher because big flows
        // contribute more samples and loss recovery adds delay.
        assert!((9.0..=16.0).contains(&median), "median {median}");
        assert!((30.0..=90.0).contains(&p95), "p95 {p95}");
        assert!((80.0..=220.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn internal_rtt_contrasts_wired_and_wireless() {
        let model = InternalRttModel::default();
        let mut rng = SimRng::new(12);
        let frac_below = |access: Access, thresh_ms: f64, rng: &mut SimRng| {
            let n = 20_000;
            let c = (0..n)
                .filter(|_| (model.sample(access, rng) as f64 / 1e6) < thresh_ms)
                .count();
            c as f64 / n as f64
        };
        // Paper Fig. 6: >80% of wired internal RTTs below 1 ms.
        assert!(frac_below(Access::Wired, 1.0, &mut rng) > 0.8);
        // Wireless: fewer than 40% below 1 ms...
        assert!(frac_below(Access::Wireless, 1.0, &mut rng) < 0.4);
        // ...and more than 20% above 20 ms.
        assert!(1.0 - frac_below(Access::Wireless, 20.0, &mut rng) > 0.2);
    }

    #[test]
    fn sizes_are_heavy_tailed_but_bounded() {
        let model = SizeModel::default();
        let mut rng = SimRng::new(13);
        let sizes: Vec<u64> = (0..20_000).map(|_| model.response(&mut rng)).collect();
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        let max = *sizes.iter().max().unwrap();
        assert!(mean > 20_000.0, "mean {mean}");
        assert!(max <= 100_000_000);
        assert!(max > 1_000_000, "tail missing: max {max}");
        for _ in 0..1000 {
            let r = model.request(&mut rng);
            assert!((50..=50_000).contains(&r));
        }
    }

    #[test]
    fn address_plan_separates_subnets() {
        let mut rng = SimRng::new(14);
        let mut plan = AddressPlan::new(50, &mut rng);
        let wired = plan.client(Access::Wired, &mut rng);
        let wireless = plan.client(Access::Wireless, &mut rng);
        assert!(is_campus(wired) && is_campus(wireless));
        assert!(!is_wireless(wired));
        assert!(is_wireless(wireless));
        let server = plan.server(&mut rng);
        assert!(!is_campus(server));
    }

    #[test]
    fn ports_cycle_in_ephemeral_range() {
        let mut rng = SimRng::new(15);
        let mut plan = AddressPlan::new(1, &mut rng);
        for _ in 0..40_000 {
            let p = plan.port();
            assert!((32768..=65_000).contains(&p));
        }
    }

    #[test]
    fn flows_use_web_ports() {
        let mut rng = SimRng::new(16);
        let mut plan = AddressPlan::new(10, &mut rng);
        for _ in 0..100 {
            let f = plan.flow(Access::Wireless, &mut rng);
            assert!(f.dst_port == 443 || f.dst_port == 80);
        }
    }
}
