//! Adversarial scenario generators: the workloads the spin-bit and
//! data-plane histogram engines are judged on (DESIGN.md §5g).
//!
//! Four mixes, each a [`GeneratedTrace`] combining the TCP scenarios of
//! [`crate::scenario`] with QUIC spin-bit flows from [`crate::spin`]:
//!
//! * [`quic_mix`] — QUIC-dominated traffic: most packets expose no
//!   SEQ/ACK numbers, so the paper's matching engines go starved while
//!   spin-bit tracking keeps measuring;
//! * [`churn_storm`] — SYN-flood plus connection churn at ~10× the campus
//!   arrival rate: a table-pressure stressor for every per-flow state
//!   machine;
//! * [`interception_storm`] — the §5.2 BGP interception at scale: many
//!   concurrent victim connections *and* spin flows whose external delay
//!   steps at the same attack instant;
//! * [`wireless_tail`] — an all-wireless campus with lossy, heavy-tailed
//!   RTTs: the distribution-shape stressor for histogram binning.
//!
//! Every generator is deterministic in its seed, returns time-ordered
//! packets, and records spin-flow ground truth in
//! [`GeneratedTrace::spin_flows`]. [`ScenarioKind::generate`] exposes the
//! whole matrix behind one call with a linear `scale` knob so CI can run
//! the same suites at reduced size with pinned seeds.

use crate::rng::SimRng;
use crate::scenario::{
    campus, interception, syn_flood, AttackConfig, CampusConfig, GeneratedTrace, SpinInfo,
    SynFloodConfig,
};
use crate::spin::{spin_flow_meta, SpinFlowConfig};
use dart_packet::{FlowKey, Nanos, MICROSECOND, MILLISECOND, SECOND};
use std::net::Ipv4Addr;

/// Mix `count` spin-bit flows into a trace: generate each flow's packet
/// stream, append it, record its ground truth, and re-sort by capture time.
fn mix_spin_flows(
    trace: &mut GeneratedTrace,
    rng: &mut SimRng,
    count: usize,
    mut make: impl FnMut(&mut SimRng, FlowKey) -> SpinFlowConfig,
) {
    for i in 0..count {
        // QUIC clients on their own campus subnet, distinct servers.
        let flow = FlowKey::new(
            Ipv4Addr::from(0x0a0b_0000 | (1 + (i as u32 % 0xFFFE))),
            (40_000 + (i % 20_000)) as u16,
            Ipv4Addr::from(0x5db8_d900 | rng.range(1, 250) as u32),
            443,
        );
        let cfg = make(rng, flow);
        trace.packets.extend(spin_flow_meta(cfg));
        trace.spin_flows.push(SpinInfo {
            flow,
            base_rtt: 2 * (cfg.int_owd + cfg.ext_owd),
            stepped_rtt: cfg
                .ext_owd_step
                .map(|(_, new_ext)| 2 * (cfg.int_owd + new_ext)),
        });
    }
    trace.packets.sort_by_key(|p| p.ts);
}

/// Draw a plausible campus-edge one-way-delay pair: sub-millisecond
/// internal leg, a few to tens of milliseconds external.
fn typical_owds(rng: &mut SimRng) -> (Nanos, Nanos) {
    (
        rng.range(200 * MICROSECOND, 2 * MILLISECOND),
        rng.range(3 * MILLISECOND, 45 * MILLISECOND),
    )
}

/// Configuration of the QUIC-dominated mix.
#[derive(Clone, Copy, Debug)]
pub struct QuicMixConfig {
    /// Spin-bit flows.
    pub spin_flows: usize,
    /// Background TCP connections (kept small: QUIC dominates).
    pub tcp_connections: usize,
    /// Trace duration.
    pub duration: Nanos,
    /// Per-endpoint packet rate of each spin flow.
    pub rate_pps: u64,
    /// Per-packet loss probability on the spin flows.
    pub loss: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QuicMixConfig {
    fn default() -> Self {
        QuicMixConfig {
            spin_flows: 24,
            tcp_connections: 60,
            duration: 3 * SECOND,
            rate_pps: 150,
            loss: 0.005,
            seed: 0x541C,
        }
    }
}

/// QUIC-dominated mix: spin-bit flows carry most of the packets over a
/// thin TCP background.
pub fn quic_mix(cfg: QuicMixConfig) -> GeneratedTrace {
    let mut rng = SimRng::new(cfg.seed);
    let mut trace = campus(CampusConfig {
        connections: cfg.tcp_connections,
        duration: cfg.duration,
        seed: rng.fork(1).next_u32() as u64,
        ..CampusConfig::default()
    });
    let mut spin_rng = rng.fork(2);
    mix_spin_flows(&mut trace, &mut spin_rng, cfg.spin_flows, |rng, flow| {
        let (int_owd, ext_owd) = typical_owds(rng);
        SpinFlowConfig {
            flow,
            int_owd,
            ext_owd,
            rate_pps: cfg.rate_pps,
            duration: cfg.duration,
            loss: cfg.loss,
            seed: rng.next_u32() as u64,
            ext_owd_step: None,
        }
    });
    trace
}

/// Configuration of the churn storm.
#[derive(Clone, Copy, Debug)]
pub struct ChurnStormConfig {
    /// Connection arrivals per second — the default is ~10× the campus
    /// scenario's rate (2000 connections / 30 s ≈ 67/s).
    pub conn_rate: f64,
    /// Spoofed SYNs sprayed over the window.
    pub syns: usize,
    /// Spin-bit flows riding through the storm.
    pub spin_flows: usize,
    /// Trace duration.
    pub duration: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnStormConfig {
    fn default() -> Self {
        ChurnStormConfig {
            conn_rate: 670.0,
            syns: 4_000,
            spin_flows: 6,
            duration: 2 * SECOND,
            seed: 0xC402,
        }
    }
}

/// SYN-flood / flow-churn storm at ~10× the campus arrival rate: spoofed
/// SYNs plus a dense wave of short-lived connections, with a handful of
/// long-lived spin flows that must keep measuring through the churn.
pub fn churn_storm(cfg: ChurnStormConfig) -> GeneratedTrace {
    let mut rng = SimRng::new(cfg.seed);
    let secs = cfg.duration as f64 / SECOND as f64;
    let connections = ((cfg.conn_rate * secs).ceil() as usize).max(1);
    let mut trace = campus(CampusConfig {
        connections,
        duration: cfg.duration,
        keepalive_frac: 0.0,
        seed: rng.fork(1).next_u32() as u64,
        ..CampusConfig::default()
    });
    let flood = syn_flood(SynFloodConfig {
        syns: cfg.syns,
        duration: cfg.duration,
        background: 0,
        seed: rng.fork(2).next_u32() as u64,
    });
    trace.packets.extend(flood.packets);
    trace.conns.extend(flood.conns);
    let mut spin_rng = rng.fork(3);
    mix_spin_flows(&mut trace, &mut spin_rng, cfg.spin_flows, |rng, flow| {
        let (int_owd, ext_owd) = typical_owds(rng);
        SpinFlowConfig {
            flow,
            int_owd,
            ext_owd,
            rate_pps: 200,
            duration: cfg.duration,
            loss: 0.01,
            seed: rng.next_u32() as u64,
            ext_owd_step: None,
        }
    });
    trace
}

/// Configuration of the at-scale interception.
#[derive(Clone, Copy, Debug)]
pub struct InterceptionStormConfig {
    /// Victim TCP request/response rounds (one connection each).
    pub rounds: usize,
    /// Gap between rounds — much denser than the single-victim §5.2 run.
    pub round_gap: Nanos,
    /// When the hijack takes effect.
    pub attack_at: Nanos,
    /// Pre-attack path RTT.
    pub normal_rtt: Nanos,
    /// Post-attack RTT through the adversary.
    pub attacked_rtt: Nanos,
    /// Spin flows whose external delay steps at the same instant.
    pub spin_flows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InterceptionStormConfig {
    fn default() -> Self {
        InterceptionStormConfig {
            rounds: 300,
            round_gap: 40 * MILLISECOND,
            attack_at: 4 * SECOND,
            normal_rtt: 25 * MILLISECOND,
            attacked_rtt: 120 * MILLISECOND,
            spin_flows: 8,
            seed: 0x17CE,
        }
    }
}

/// Mid-trace path interception at scale: a dense stream of victim TCP
/// connections *and* a set of spin flows, every path stepping from
/// `normal_rtt` to `attacked_rtt` at `attack_at`. Both engine families
/// must show the step.
pub fn interception_storm(cfg: InterceptionStormConfig) -> GeneratedTrace {
    let mut rng = SimRng::new(cfg.seed);
    let duration = cfg.rounds as Nanos * cfg.round_gap;
    let mut trace = interception(AttackConfig {
        normal_rtt: cfg.normal_rtt,
        attacked_rtt: cfg.attacked_rtt,
        attack_at: cfg.attack_at,
        rounds: cfg.rounds,
        round_gap: cfg.round_gap,
        seed: rng.fork(1).next_u32() as u64,
    });
    let mut spin_rng = rng.fork(2);
    mix_spin_flows(&mut trace, &mut spin_rng, cfg.spin_flows, |rng, flow| {
        let int_owd = rng.range(200 * MICROSECOND, MILLISECOND);
        SpinFlowConfig {
            flow,
            int_owd,
            ext_owd: cfg.normal_rtt / 2,
            rate_pps: 120,
            duration,
            loss: 0.003,
            seed: rng.next_u32() as u64,
            ext_owd_step: Some((cfg.attack_at, cfg.attacked_rtt / 2)),
        }
    });
    trace
}

/// Configuration of the wireless heavy-tail mix.
#[derive(Clone, Copy, Debug)]
pub struct WirelessTailConfig {
    /// TCP connections (all wireless).
    pub connections: usize,
    /// Spin flows with Pareto-tailed external delays.
    pub spin_flows: usize,
    /// Trace duration.
    pub duration: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WirelessTailConfig {
    fn default() -> Self {
        WirelessTailConfig {
            connections: 120,
            spin_flows: 12,
            duration: 3 * SECOND,
            seed: 0x3417,
        }
    }
}

/// Wireless-heavy RTT tails: an all-wireless lossy campus plus spin flows
/// whose external delays are drawn from a Pareto tail — the p99-shape
/// stressor for the histogram engine's log2 buckets.
pub fn wireless_tail(cfg: WirelessTailConfig) -> GeneratedTrace {
    let mut rng = SimRng::new(cfg.seed);
    let mut trace = campus(CampusConfig {
        connections: cfg.connections,
        duration: cfg.duration,
        wireless_frac: 1.0,
        mean_loss: 0.03,
        reorder: 0.01,
        seed: rng.fork(1).next_u32() as u64,
        ..CampusConfig::default()
    });
    let mut spin_rng = rng.fork(2);
    mix_spin_flows(&mut trace, &mut spin_rng, cfg.spin_flows, |rng, flow| {
        let int_owd = rng.range(500 * MICROSECOND, 4 * MILLISECOND);
        let ext_owd = rng.pareto(6e6, 1.2, 250e6) as Nanos;
        SpinFlowConfig {
            flow,
            int_owd,
            ext_owd,
            rate_pps: 150,
            duration: cfg.duration,
            loss: 0.02,
            seed: rng.next_u32() as u64,
            ext_owd_step: None,
        }
    });
    trace
}

/// One entry of the adversarial scenario matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// [`quic_mix`].
    QuicMix,
    /// [`churn_storm`].
    ChurnStorm,
    /// [`interception_storm`].
    Interception,
    /// [`wireless_tail`].
    WirelessTail,
}

impl ScenarioKind {
    /// Every scenario, in matrix order.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::QuicMix,
        ScenarioKind::ChurnStorm,
        ScenarioKind::Interception,
        ScenarioKind::WirelessTail,
    ];

    /// Stable CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::QuicMix => "quic-mix",
            ScenarioKind::ChurnStorm => "churn-storm",
            ScenarioKind::Interception => "interception",
            ScenarioKind::WirelessTail => "wireless-tail",
        }
    }

    /// Parse a CLI/report name back into a kind.
    pub fn parse(name: &str) -> Option<ScenarioKind> {
        ScenarioKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Generate this scenario with every size knob multiplied by `scale`
    /// (flows, connections, SYNs, rounds — durations stay put so the RTT
    /// dynamics are scale-invariant). `scale = 1.0` is the full-size run;
    /// CI uses ~0.2 with pinned seeds.
    pub fn generate(self, scale: f64, seed: u64) -> GeneratedTrace {
        let n = |base: usize| ((base as f64 * scale).ceil() as usize).max(1);
        match self {
            ScenarioKind::QuicMix => {
                let d = QuicMixConfig::default();
                quic_mix(QuicMixConfig {
                    spin_flows: n(d.spin_flows),
                    tcp_connections: n(d.tcp_connections),
                    seed,
                    ..d
                })
            }
            ScenarioKind::ChurnStorm => {
                let d = ChurnStormConfig::default();
                churn_storm(ChurnStormConfig {
                    conn_rate: (d.conn_rate * scale).max(1.0),
                    syns: n(d.syns),
                    spin_flows: n(d.spin_flows),
                    seed,
                    ..d
                })
            }
            ScenarioKind::Interception => {
                let d = InterceptionStormConfig::default();
                interception_storm(InterceptionStormConfig {
                    rounds: n(d.rounds),
                    // Keep the attack inside the (shorter) trace window.
                    attack_at: (n(d.rounds) as Nanos * d.round_gap) / 3,
                    spin_flows: n(d.spin_flows),
                    seed,
                    ..d
                })
            }
            ScenarioKind::WirelessTail => {
                let d = WirelessTailConfig::default();
                wireless_tail(WirelessTailConfig {
                    connections: n(d.connections),
                    spin_flows: n(d.spin_flows),
                    seed,
                    ..d
                })
            }
        }
    }
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_shape(t: &GeneratedTrace) {
        assert!(!t.is_empty());
        assert!(t.packets.windows(2).all(|w| w[0].ts <= w[1].ts), "unsorted");
        assert!(!t.spin_flows.is_empty());
        let quic = t.packets.iter().filter(|p| p.is_quic()).count();
        assert!(quic > 0, "no spin packets in the mix");
    }

    #[test]
    fn all_kinds_generate_and_are_deterministic() {
        for kind in ScenarioKind::ALL {
            let a = kind.generate(0.1, 7);
            let b = kind.generate(0.1, 7);
            check_shape(&a);
            assert_eq!(a.packets, b.packets, "{kind} not deterministic");
            assert_eq!(ScenarioKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ScenarioKind::parse("nope"), None);
    }

    #[test]
    fn quic_mix_is_quic_dominated() {
        let t = quic_mix(QuicMixConfig {
            spin_flows: 8,
            tcp_connections: 10,
            duration: SECOND,
            ..QuicMixConfig::default()
        });
        let quic = t.packets.iter().filter(|p| p.is_quic()).count();
        assert!(
            quic * 2 > t.packets.len(),
            "quic {} of {}",
            quic,
            t.packets.len()
        );
    }

    #[test]
    fn churn_storm_is_mostly_churn() {
        let t = churn_storm(ChurnStormConfig {
            conn_rate: 100.0,
            syns: 500,
            spin_flows: 2,
            duration: SECOND,
            ..ChurnStormConfig::default()
        });
        let syns = t.packets.iter().filter(|p| p.is_syn()).count();
        assert!(syns >= 500, "flood + churn SYNs present, got {syns}");
        check_shape(&t);
    }

    #[test]
    fn interception_storm_records_stepped_truth() {
        let t = interception_storm(InterceptionStormConfig {
            rounds: 40,
            spin_flows: 3,
            attack_at: 500 * MILLISECOND,
            ..InterceptionStormConfig::default()
        });
        check_shape(&t);
        assert!(t.spin_flows.iter().all(|s| s.stepped_rtt.is_some()));
        for s in &t.spin_flows {
            assert!(s.stepped_rtt.unwrap() > s.base_rtt);
        }
    }

    #[test]
    fn wireless_tail_has_heavy_spin_tail() {
        let t = wireless_tail(WirelessTailConfig {
            connections: 20,
            spin_flows: 16,
            duration: SECOND,
            ..WirelessTailConfig::default()
        });
        check_shape(&t);
        let max = t.spin_flows.iter().map(|s| s.base_rtt).max().unwrap();
        let min = t.spin_flows.iter().map(|s| s.base_rtt).min().unwrap();
        assert!(max > 4 * min, "tail not heavy: {min}..{max}");
    }
}
