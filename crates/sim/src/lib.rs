//! # dart-sim
//!
//! The network and workload substrate of the Dart reproduction: a
//! deterministic discrete-event simulator with real TCP endpoint state
//! machines (slow start/AIMD, RTO and fast retransmit, delayed and
//! cumulative ACKs, out-of-order buffering), a two-leg path with a
//! monitoring vantage point in the middle, and scenario generators for the
//! paper's workloads:
//!
//! * [`scenario::campus`] — the synthetic campus trace (the anonymized
//!   Princeton trace substitute; see DESIGN.md §1);
//! * [`scenario::interception`] — the §5.2 BGP interception attack;
//! * [`scenario::syn_flood`] — the §3.1 robustness stressor;
//! * [`replay`] — native-trace and pcap load/dump.
//!
//! ```
//! use dart_sim::scenario::{campus, CampusConfig};
//!
//! let trace = campus(CampusConfig {
//!     connections: 50,
//!     duration: dart_packet::SECOND,
//!     ..CampusConfig::default()
//! });
//! assert!(!trace.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod endpoint;
pub mod event;
pub mod flowgen;
pub mod netsim;
pub mod replay;
pub mod rng;
pub mod scenario;
pub mod spin;

pub use adversarial::{
    churn_storm, interception_storm, quic_mix, wireless_tail, ChurnStormConfig,
    InterceptionStormConfig, QuicMixConfig, ScenarioKind, WirelessTailConfig,
};
pub use endpoint::{Action, AppSend, ConnState, Endpoint, EndpointCfg, SimPacket};
pub use event::EventQueue;
pub use flowgen::{Access, AddressPlan, ExternalRttModel, InternalRttModel, SizeModel};
pub use netsim::{simulate, ConnReport, ConnSpec, Exchange, NetSim, PathParams, SimOutput};
pub use replay::{
    load_native, load_native_with, load_pcap, load_pcap_with, ReplaySource, TraceTransform,
};
pub use rng::SimRng;
pub use scenario::{
    campus, interception, syn_flood, AttackConfig, CampusConfig, ConnInfo, GeneratedTrace,
    SpinInfo, SynFloodConfig,
};
pub use spin::{spin_flow, spin_flow_meta, SpinFlowConfig, SpinObserver, SpinPacket};
