//! Tests of the §3.2 silent-cut-off behavior: a server that stops ACKing
//! mid-transfer strands the client's in-flight records.

use dart_packet::{Direction, FlowKey, MILLISECOND};
use dart_sim::netsim::{simulate, ConnSpec};

fn base_spec(cutoff: Option<u64>) -> ConnSpec {
    let flow = FlowKey::from_raw(0x0a08_2222, 43210, 0x0808_0101, 443);
    let mut spec = ConnSpec::simple(flow, 0, 50_000, 500);
    spec.path.jitter = 0.0;
    spec.path.int_owd = MILLISECOND;
    spec.path.ext_owd = 5 * MILLISECOND;
    spec.server_cutoff = cutoff;
    spec
}

#[test]
fn cutoff_server_stops_acking() {
    let healthy = simulate(vec![base_spec(None)], 1);
    let cut = simulate(vec![base_spec(Some(10_000))], 1);

    // Healthy: all 50 KB delivered. Cut: delivery stops near the cut point.
    assert_eq!(healthy.reports[0].bytes_c2s, 50_000);
    let delivered = cut.reports[0].bytes_c2s;
    assert!(
        (10_000..25_000).contains(&delivered),
        "delivery should stall near the cutoff: {delivered}"
    );

    // The client keeps retransmitting into the void before giving up.
    assert!(cut.reports[0].retransmissions >= 3);

    // After the cut, no more server packets appear at the monitor.
    let cut_ts = cut
        .packets
        .iter()
        .filter(|p| p.dir == Direction::Inbound)
        .map(|p| p.ts)
        .max()
        .unwrap();
    let client_after: usize = cut
        .packets
        .iter()
        .filter(|p| p.dir == Direction::Outbound && p.ts > cut_ts)
        .count();
    assert!(
        client_after >= 3,
        "client should still be talking after the server went dark"
    );
}

#[test]
fn stranded_records_squat_in_darts_pt() {
    use dart_core::{run_trace, DartConfig};

    let out = simulate(vec![base_spec(Some(10_000))], 2);
    let cfg = DartConfig::default().with_rt(1 << 10).with_pt(1 << 10, 1);
    let mut engine = dart_core::DartEngine::new(cfg);
    let mut samples: Vec<dart_core::RttSample> = Vec::new();
    engine.process_trace(out.packets.iter(), &mut samples);
    // Records for the never-ACKed tail are stranded in the PT, exactly the
    // state lazy eviction exists to reclaim.
    assert!(
        engine.pt_occupancy() > 0,
        "expected stranded PT records after a cut-off"
    );
    // The delivered prefix still produced samples.
    assert!(!samples.is_empty());
    let (unlimited, _) = run_trace(DartConfig::unlimited(), &out.packets);
    assert!(unlimited.len() >= samples.len());
}
