//! The ground-truth RTT oracle: an omniscient per-flow SEQ/ACK matcher.
//!
//! The oracle replays a captured trace with **unbounded memory** and no
//! hardware constraints, and classifies what a correct monitor could and
//! could not measure from that capture. It is an *independent*
//! implementation of the TCP matching rules — it shares no code with
//! `dart-core`'s Range Tracker / Packet Tracker or with the baselines —
//! which is what makes differential comparison against it meaningful.
//!
//! For every trace it computes:
//!
//! * the exact set of **valid** samples: `(flow, eack, rtt, ts)` tuples a
//!   sound matcher may emit, where the acknowledgment unambiguously closes
//!   a uniquely-transmitted segment (Karn's rule, duplicate-ACK exclusion,
//!   first-advance-only);
//! * the set of **possible** anchors: every `(flow, eack) → transmission
//!   timestamp` pair seen in the capture. An engine sample that does not
//!   equal `ack_ts − tx_ts` for *any* captured transmission of its
//!   `(flow, eack)` is **impossible** — its timestamp was fabricated, which
//!   no amount of eviction pressure or recirculation loss can excuse.
//!
//! The fidelity contract (DESIGN.md §5b): oracle truth is
//! **capture-relative**. When the monitor itself missed packets
//! (`monitor_miss` in the simulator), neither the oracle nor any engine can
//! see the loss, so "valid" means *soundly derivable from the captured
//! sequence*, not *equal to the RTT the network actually experienced*.
//! That residual ambiguity is excluded from both invariants by
//! construction: the oracle and the engines read the same capture.

use dart_core::{Leg, RttSample, SynPolicy};
use dart_packet::{Direction, FlowKey, Nanos, PacketMeta, SeqNum};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Oracle configuration: the packet-role policies it shares with the engine
/// under test. (The oracle has no tables to size — it is unbounded.)
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Handshake policy, mirrored from the engine under test.
    pub syn_policy: SynPolicy,
    /// Measured leg, mirrored from the engine under test.
    pub leg: Leg,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            syn_policy: SynPolicy::Skip,
            leg: Leg::External,
        }
    }
}

/// How the oracle classifies one engine-emitted sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleClass {
    /// The sample is in the oracle's exact valid set.
    Exact,
    /// The sample is anchored to a real captured transmission of its
    /// `(flow, eack)`, but the oracle excluded that match as ambiguous
    /// (retransmitted bytes, duplicate-ACK episode, non-advancing ACK).
    /// Constrained engines can emit these when table evictions erase the
    /// collapse state that would have suppressed the match.
    Ambiguous,
    /// The sample anchors to a captured transmission of the *same flow*
    /// but of a different segment. Cumulative matchers (`tcptrace`) emit
    /// these legitimately — the sample's `eack` is the ACK value while the
    /// RTT anchors to the earlier segment that ACK closed. Dart matches
    /// exact left edges only, so from a Dart engine this is a bug.
    CrossAnchored,
    /// No captured transmission of the flow is `rtt` before the sample's
    /// timestamp: the measurement is fabricated. No matcher, exact or
    /// cumulative, may emit these.
    Impossible,
}

/// One transmission record of a segment ending at a given eACK.
#[derive(Clone, Debug)]
struct TxInfo {
    /// Unwrapped start of the byte range.
    seq: u64,
    /// Capture timestamps of every transmission of this exact range end.
    times: Vec<Nanos>,
    /// True once any transmission overlapped previously-sent unacked bytes
    /// (this segment's match is ambiguous under Karn's rule).
    tainted: bool,
}

/// Per-flow oracle state (keyed by the data-direction flow key).
struct FlowState {
    /// Segments by unwrapped range end.
    tx: BTreeMap<u64, TxInfo>,
    /// Cumulative-ACK high-water mark (unwrapped), if any ACK seen.
    acked: Option<u64>,
    /// Times of range-ambiguity events: retransmissions and duplicate
    /// ACKs. A valid sample's segment must not have such an event between
    /// its transmission and its acknowledgment.
    collapse_times: Vec<Nanos>,
    /// Longest segment seen (bounds the overlap scan).
    max_seg_len: u64,
    /// Sequence-number unwrapping state, shared by SEQs and ACKs.
    unwrap_last: Option<u64>,
}

impl FlowState {
    fn new() -> FlowState {
        FlowState {
            tx: BTreeMap::new(),
            acked: None,
            collapse_times: Vec::new(),
            max_seg_len: 0,
            unwrap_last: None,
        }
    }

    /// Unwrap a 32-bit sequence value into the flow's 64-bit space by
    /// minimal signed distance from the last unwrapped value.
    fn unwrap(&mut self, v: SeqNum) -> u64 {
        let raw = v.raw() as u64;
        let out = match self.unwrap_last {
            // Start one epoch up so below-ISN values stay non-negative.
            None => raw + (1u64 << 32),
            Some(last) => {
                let base = last & !0xFFFF_FFFFu64;
                let mut candidate = base + raw;
                let half = 1u64 << 31;
                if candidate + half < last {
                    candidate += 1u64 << 32;
                } else if candidate > last + half && candidate >= (1u64 << 32) {
                    candidate -= 1u64 << 32;
                }
                candidate
            }
        };
        self.unwrap_last = Some(out);
        out
    }

    /// Did an ambiguity event land strictly inside `(sent, acked_at)`?
    fn collapsed_between(&self, sent: Nanos, acked_at: Nanos) -> bool {
        self.collapse_times
            .iter()
            .any(|&t| t > sent && t < acked_at)
    }
}

/// The oracle's verdict on a trace: the exact valid sample set plus the
/// anchor index used for impossibility checks.
pub struct OracleReport {
    /// The exact set of valid samples, in ACK arrival order.
    pub valid: Vec<RttSample>,
    /// Fast membership test for [`OracleReport::classify`].
    valid_set: HashSet<(FlowKey, u32, Nanos, Nanos)>,
    /// Every captured transmission: `(flow, eack) → sorted tx timestamps`.
    anchors: HashMap<(FlowKey, u32), Vec<Nanos>>,
    /// Every captured transmission time per flow, for cumulative matchers.
    flow_tx: HashMap<FlowKey, Vec<Nanos>>,
}

impl OracleReport {
    /// Number of valid samples.
    pub fn valid_count(&self) -> usize {
        self.valid.len()
    }

    /// Classify one engine-emitted sample (see [`SampleClass`]).
    pub fn classify(&self, s: &RttSample) -> SampleClass {
        if self
            .valid_set
            .contains(&(s.flow, s.eack.raw(), s.rtt, s.ts))
        {
            return SampleClass::Exact;
        }
        let anchors_at =
            |times: &Vec<Nanos>| times.iter().any(|&t| s.ts.saturating_sub(t) == s.rtt);
        if self
            .anchors
            .get(&(s.flow, s.eack.raw()))
            .is_some_and(anchors_at)
        {
            SampleClass::Ambiguous
        } else if self.flow_tx.get(&s.flow).is_some_and(anchors_at) {
            SampleClass::CrossAnchored
        } else {
            SampleClass::Impossible
        }
    }

    /// Split a sample list into (exact, ambiguous, impossible) counts plus
    /// the impossible samples themselves (for shrinking / reporting).
    pub fn score(&self, samples: &[RttSample]) -> ScoreCard {
        let mut card = ScoreCard::default();
        let mut matched: HashSet<(FlowKey, u32, Nanos, Nanos)> = HashSet::new();
        for s in samples {
            match self.classify(s) {
                SampleClass::Exact => {
                    card.exact += 1;
                    matched.insert((s.flow, s.eack.raw(), s.rtt, s.ts));
                }
                SampleClass::Ambiguous => card.ambiguous += 1,
                SampleClass::CrossAnchored => card.cross_anchored += 1,
                SampleClass::Impossible => {
                    card.impossible += 1;
                    card.impossible_samples.push(*s);
                }
            }
        }
        card.valid_total = self.valid.len() as u64;
        card.valid_matched = matched.len() as u64;
        card
    }
}

/// Precision/recall accounting of one engine run against the oracle.
#[derive(Clone, Debug, Default)]
pub struct ScoreCard {
    /// Samples in the oracle's exact valid set.
    pub exact: u64,
    /// Samples anchored to a real transmission but excluded as ambiguous.
    pub ambiguous: u64,
    /// Samples anchored to a different segment of the same flow
    /// (cumulative-matcher territory; a bug from an exact matcher).
    pub cross_anchored: u64,
    /// Fabricated samples (soundness violations).
    pub impossible: u64,
    /// The fabricated samples, for reporting and shrinking.
    pub impossible_samples: Vec<RttSample>,
    /// Distinct valid samples the engine found.
    pub valid_matched: u64,
    /// Size of the oracle's valid set.
    pub valid_total: u64,
}

impl ScoreCard {
    /// Fraction of emitted samples that are exact (1.0 when nothing was
    /// emitted).
    pub fn precision(&self) -> f64 {
        let total = self.exact + self.ambiguous + self.cross_anchored + self.impossible;
        if total == 0 {
            1.0
        } else {
            self.exact as f64 / total as f64
        }
    }

    /// Fraction of the oracle's valid set the engine recovered (1.0 when
    /// the valid set is empty).
    pub fn recall(&self) -> f64 {
        if self.valid_total == 0 {
            1.0
        } else {
            self.valid_matched as f64 / self.valid_total as f64
        }
    }

    /// Valid samples the engine did not recover.
    pub fn missed(&self) -> u64 {
        self.valid_total - self.valid_matched
    }
}

fn seq_role(leg: Leg, dir: Direction) -> bool {
    match leg {
        Leg::External => dir == Direction::Outbound,
        Leg::Internal => dir == Direction::Inbound,
        Leg::Both => true,
    }
}

fn ack_role(leg: Leg, dir: Direction) -> bool {
    match leg {
        Leg::External => dir == Direction::Inbound,
        Leg::Internal => dir == Direction::Outbound,
        Leg::Both => true,
    }
}

/// Replay `packets` through the oracle and compute the ground truth.
pub fn run_oracle(cfg: OracleConfig, packets: &[PacketMeta]) -> OracleReport {
    let mut flows: HashMap<FlowKey, FlowState> = HashMap::new();
    let mut valid: Vec<RttSample> = Vec::new();
    let mut anchors: HashMap<(FlowKey, u32), Vec<Nanos>> = HashMap::new();
    let mut flow_tx: HashMap<FlowKey, Vec<Nanos>> = HashMap::new();

    for pkt in packets {
        if cfg.syn_policy == SynPolicy::Skip && pkt.is_syn() {
            continue;
        }
        // ACK role first, mirroring capture-order semantics: a packet's
        // acknowledgment refers to data seen before it, while its payload
        // introduces new bytes.
        if ack_role(cfg.leg, pkt.dir) && pkt.is_ack() {
            let data_flow = pkt.flow.reverse();
            if let Some(st) = flows.get_mut(&data_flow) {
                let ack_u = st.unwrap(pkt.ack);
                let highest_sent = st.tx.keys().next_back().copied().unwrap_or(0);
                let advances = st.acked.map_or(true, |a| ack_u > a);
                if ack_u > highest_sent {
                    // Optimistic ACK: acknowledges bytes never seen leaving
                    // the sender. Ignored, and it does not advance the
                    // cumulative mark.
                } else if advances {
                    if let Some(info) = st.tx.get(&ack_u) {
                        let unique = info.times.len() == 1 && !info.tainted;
                        let sent = info.times[0];
                        if unique && !st.collapsed_between(sent, pkt.ts) {
                            valid.push(RttSample::new(
                                data_flow,
                                pkt.ack,
                                pkt.ts.saturating_sub(sent),
                                pkt.ts,
                            ));
                        }
                    }
                    st.acked = Some(ack_u);
                } else if pkt.is_pure_ack() && st.acked == Some(ack_u) {
                    // A duplicate ACK: the receiver is signalling loss or
                    // reordering; cumulative ACKs that follow are ambiguous
                    // about which arrival triggered them.
                    st.collapse_times.push(pkt.ts);
                }
            }
        }
        if seq_role(cfg.leg, pkt.dir) && pkt.is_seq() {
            let st = flows.entry(pkt.flow).or_insert_with(FlowState::new);
            let seq_u = st.unwrap(pkt.seq);
            let len = pkt.eack().raw().wrapping_sub(pkt.seq.raw()) as u64;
            let end_u = seq_u + len;
            st.max_seg_len = st.max_seg_len.max(len);
            anchors
                .entry((pkt.flow, pkt.eack().raw()))
                .or_default()
                .push(pkt.ts);
            flow_tx.entry(pkt.flow).or_default().push(pkt.ts);

            // Overlap scan: any already-sent, still-unacked range sharing
            // bytes with [seq_u, end_u) makes both ambiguous (Karn).
            let acked = st.acked.unwrap_or(0);
            let scan_lo = seq_u.saturating_sub(st.max_seg_len).max(acked) + 1;
            let scan_hi = (end_u + st.max_seg_len).max(scan_lo);
            let mut retransmission = false;
            for (&other_end, other) in st.tx.range_mut(scan_lo..scan_hi) {
                let overlaps = other.seq < end_u && other_end > seq_u;
                if overlaps && other_end > acked {
                    other.tainted = true;
                    retransmission = true;
                }
            }
            match st.tx.get_mut(&end_u) {
                Some(info) => {
                    // Same range end transmitted again.
                    info.times.push(pkt.ts);
                    info.seq = info.seq.min(seq_u);
                    info.tainted = true;
                    retransmission = true;
                }
                None => {
                    st.tx.insert(
                        end_u,
                        TxInfo {
                            seq: seq_u,
                            times: vec![pkt.ts],
                            tainted: retransmission,
                        },
                    );
                }
            }
            if retransmission {
                st.collapse_times.push(pkt.ts);
            }
        }
    }

    for times in anchors.values_mut() {
        times.sort_unstable();
    }
    for times in flow_tx.values_mut() {
        times.sort_unstable();
    }
    let valid_set = valid
        .iter()
        .map(|s| (s.flow, s.eack.raw(), s.rtt, s.ts))
        .collect();
    OracleReport {
        valid,
        valid_set,
        anchors,
        flow_tx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::PacketBuilder;

    fn flow(n: u32) -> FlowKey {
        FlowKey::from_raw(0x0a00_0000 + n, 40000, 0x5db8_d822, 443)
    }

    fn data(f: FlowKey, seq: u32, len: u32, t: Nanos) -> PacketMeta {
        PacketBuilder::new(f, t)
            .seq(seq)
            .payload(len)
            .dir(Direction::Outbound)
            .build()
    }

    fn ack(f: FlowKey, n: u32, t: Nanos) -> PacketMeta {
        PacketBuilder::new(f.reverse(), t)
            .ack(n)
            .dir(Direction::Inbound)
            .build()
    }

    #[test]
    fn clean_exchange_is_valid() {
        let f = flow(1);
        let rep = run_oracle(
            OracleConfig::default(),
            &[data(f, 0, 100, 1_000), ack(f, 100, 26_000)],
        );
        assert_eq!(rep.valid.len(), 1);
        assert_eq!(rep.valid[0].rtt, 25_000);
        let s = rep.valid[0];
        assert_eq!(rep.classify(&s), SampleClass::Exact);
    }

    #[test]
    fn retransmission_is_excluded_but_anchored() {
        let f = flow(2);
        let rep = run_oracle(
            OracleConfig::default(),
            &[
                data(f, 0, 100, 0),
                data(f, 0, 100, 5_000),
                ack(f, 100, 9_000),
            ],
        );
        assert!(
            rep.valid.is_empty(),
            "Karn: retransmitted range never valid"
        );
        // An engine matching the first transmission is ambiguous, not
        // impossible.
        let s = RttSample::new(f, SeqNum(100), 9_000, 9_000);
        assert_eq!(rep.classify(&s), SampleClass::Ambiguous);
        // A fabricated RTT matches no transmission.
        let bad = RttSample { rtt: 1234, ..s };
        assert_eq!(rep.classify(&bad), SampleClass::Impossible);
    }

    #[test]
    fn partial_overlap_retransmission_taints_both_ranges() {
        let f = flow(3);
        let rep = run_oracle(
            OracleConfig::default(),
            &[
                data(f, 0, 300, 0),
                // Partial retransmission [100, 200): overlaps [0, 300).
                data(f, 100, 100, 5_000),
                ack(f, 300, 9_000),
                ack(f, 200, 9_500),
            ],
        );
        assert!(rep.valid.is_empty());
    }

    #[test]
    fn duplicate_ack_poisons_later_cumulative_ack() {
        // The §2.2 reordering case: dup-ack then a late cumulative ACK.
        let f = flow(4);
        let rep = run_oracle(
            OracleConfig::default(),
            &[
                data(f, 0, 100, 0),
                data(f, 100, 100, 1_000),
                data(f, 200, 100, 2_000),
                data(f, 300, 100, 3_000),
                ack(f, 100, 10_000),
                ack(f, 100, 11_000), // dup: something missing at receiver
                ack(f, 400, 30_000), // late arrival; inflated match excluded
            ],
        );
        assert_eq!(rep.valid.len(), 1, "only the clean first ACK samples");
        assert_eq!(rep.valid[0].eack, SeqNum(100));
    }

    #[test]
    fn cumulative_ack_samples_exact_end_only() {
        let f = flow(5);
        let rep = run_oracle(
            OracleConfig::default(),
            &[
                data(f, 0, 100, 0),
                data(f, 100, 100, 1_000),
                ack(f, 200, 20_000),
            ],
        );
        assert_eq!(rep.valid.len(), 1);
        assert_eq!(rep.valid[0].eack, SeqNum(200));
        assert_eq!(rep.valid[0].rtt, 19_000);
    }

    #[test]
    fn syn_policy_mirrors_engine() {
        let f = flow(6);
        let syn = PacketBuilder::new(f, 0)
            .seq(9u32)
            .syn()
            .dir(Direction::Outbound)
            .build();
        let syn_ack = PacketBuilder::new(f.reverse(), 30_000)
            .seq(99u32)
            .ack(10u32)
            .syn()
            .dir(Direction::Inbound)
            .build();
        let skip = run_oracle(OracleConfig::default(), &[syn, syn_ack]);
        assert!(skip.valid.is_empty());
        let include = run_oracle(
            OracleConfig {
                syn_policy: SynPolicy::Include,
                ..OracleConfig::default()
            },
            &[syn, syn_ack],
        );
        assert_eq!(include.valid.len(), 1);
        assert_eq!(include.valid[0].rtt, 30_000);
    }

    #[test]
    fn wraparound_keeps_matching() {
        // Unbounded memory: the oracle, like tcptrace, samples across a
        // sequence wraparound (Dart forgoes these — recall budget).
        let f = flow(7);
        let rep = run_oracle(
            OracleConfig::default(),
            &[data(f, u32::MAX - 99, 200, 0), ack(f, 100, 40_000)],
        );
        assert_eq!(rep.valid.len(), 1);
        assert_eq!(rep.valid[0].rtt, 40_000);
    }

    #[test]
    fn stale_and_optimistic_acks_do_not_sample() {
        let f = flow(8);
        let rep = run_oracle(
            OracleConfig::default(),
            &[
                data(f, 0, 100, 0),
                ack(f, 500, 1_000), // optimistic: nothing sent that far
                ack(f, 100, 2_000), // valid
                ack(f, 100, 3_000), // duplicate of the edge
            ],
        );
        assert_eq!(rep.valid.len(), 1);
        assert_eq!(rep.valid[0].ts, 2_000);
    }

    #[test]
    fn score_card_accounts_precision_and_recall() {
        let f = flow(9);
        let rep = run_oracle(
            OracleConfig::default(),
            &[
                data(f, 0, 100, 0),
                data(f, 100, 100, 1_000),
                ack(f, 100, 10_000),
                ack(f, 200, 11_000),
            ],
        );
        assert_eq!(rep.valid_count(), 2);
        let engine_samples = vec![rep.valid[0]]; // engine found one of two
        let card = rep.score(&engine_samples);
        assert_eq!(card.exact, 1);
        assert_eq!(card.missed(), 1);
        assert!((card.precision() - 1.0).abs() < 1e-12);
        assert!((card.recall() - 0.5).abs() < 1e-12);
    }
}
