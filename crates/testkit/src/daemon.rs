//! The long-lived monitoring daemon: a supervised sharded engine driven
//! continuously from any [`PacketSource`], with wall-clock epoch rotation
//! and a live observability plane.
//!
//! This is the machinery behind `dartmon serve`. The loop is deliberately
//! simple — pull a block, feed the shards, rotate on a wall-clock period,
//! poll the control flags — and everything observable about it flows
//! through `dart-telemetry`:
//!
//! * the engine's per-shard series and the supervisor gauges, via
//!   [`ShardedMonitor::with_telemetry`];
//! * driver-level stage timing (`dart_stage_decode_ns` /
//!   `dart_stage_match_ns` / `dart_stage_flush_ns`), via [`StageTimers`] —
//!   the clock lives here in the driver so the engine hot path stays
//!   timing-free;
//! * rotation accounting (`dart_epoch_*`), published by each shard's
//!   engine as it rotates;
//! * milestones (started, rotated, reloaded, shutting down) in the bounded
//!   [`EventLog`] served at `/events`.
//!
//! ## Rotation semantics
//!
//! Every [`DaemonConfig::rotate_every`] of wall time the daemon asks the
//! monitor to rotate with a cutoff of `newest packet timestamp −`
//! [`DaemonConfig::retain`]: table entries idle longer than the retention
//! window (in *capture* time) are swept, so RT/PT occupancy tracks the
//! live flow population instead of growing with every flow ever seen. ACKs
//! for swept records surface as ordinary `monitor_miss`es — the paper's
//! lazy-eviction stance, applied to time instead of space.
//!
//! ## Control plane
//!
//! `POST /control/shutdown` ends the loop at the next block boundary: the
//! monitor is flushed (under the flush stage timer), final stats merged,
//! and the server stopped. `POST /control/reload` is the SIGHUP analogue:
//! the current monitor is flushed and a fresh one spawned against the same
//! registry at the next boundary — series are get-or-create, so dashboards
//! keep their identity; engine counters restart from zero, which Prometheus
//! treats as an ordinary counter reset.

use dart_core::sharded::{ShardedConfig, ShardedMonitor, SupervisorHealth};
use dart_core::stats::EngineStats;
use dart_core::telemetry::{Stage, StageTimers};
use dart_core::{RttMonitor, Snapshot};
use dart_packet::{Nanos, PacketError, PacketSource, SourceCounters};
use dart_telemetry::{Counter, EventLog, Histogram, HttpServer, MetricRegistry};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a daemon run.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// The supervised engine configuration. The daemon forces
    /// `keep_samples = false`: an unbounded stream must not accumulate a
    /// merged sample vector (counters and histograms carry the signal).
    pub sharded: ShardedConfig,
    /// Packets pulled from the source per loop iteration.
    pub block_pkts: usize,
    /// Wall-clock period between epoch rotations.
    pub rotate_every: Duration,
    /// Capture-time retention window: rotation sweeps entries idle longer
    /// than this (cutoff = newest seen timestamp − `retain`).
    pub retain: Nanos,
    /// Listen address for the observability server (`127.0.0.1:0` binds
    /// an ephemeral port; see [`Daemon::addr`] for the resolved one).
    pub bind: String,
    /// Capacity of the `/events` ring buffer.
    pub events_cap: usize,
    /// Where checkpoints are written (atomic tmp + rename). `None`
    /// disables checkpointing; a `POST /control/checkpoint` then logs a
    /// warning instead of snapshotting.
    pub snapshot_path: Option<PathBuf>,
    /// Wall-clock cadence between automatic checkpoints. Rotation
    /// boundaries always checkpoint when `snapshot_path` is set, so the
    /// cadence bounds staleness *between* rotations.
    pub checkpoint_every: Option<Duration>,
    /// Restore engine state from this snapshot before feeding the first
    /// packet. The snapshot must match the configured shard count and
    /// engine geometry ([`dart_core::SnapshotError::Mismatch`] otherwise).
    pub restore_from: Option<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            sharded: ShardedConfig::new(dart_core::DartConfig::default(), 2),
            block_pkts: dart_core::DEFAULT_BLOCK_PKTS,
            rotate_every: Duration::from_secs(15),
            retain: 10 * dart_packet::SECOND,
            bind: "127.0.0.1:0".to_string(),
            events_cap: 256,
            snapshot_path: None,
            checkpoint_every: None,
            restore_from: None,
        }
    }
}

/// What a finished daemon run reports.
#[derive(Clone, Debug)]
pub struct DaemonReport {
    /// Packets fed across every monitor generation.
    pub packets: u64,
    /// Epoch rotations triggered by the wall-clock period.
    pub rotations: u64,
    /// Config reloads performed (`/control/reload`).
    pub reloads: u64,
    /// Checkpoints durably written (cadence + rotation + on-demand).
    pub checkpoints: u64,
    /// True when the run began by restoring a snapshot.
    pub restored: bool,
    /// True when the loop ended because shutdown was requested (false:
    /// the source drained first).
    pub shutdown_requested: bool,
    /// Merged engine counters across every monitor generation.
    pub stats: EngineStats,
    /// Final supervisor health.
    pub health: SupervisorHealth,
    /// Where the observability server was listening.
    pub addr: SocketAddr,
}

/// Daemon-level state the `/healthz` provider renders alongside the
/// supervisor snapshot.
struct LiveState {
    health: SupervisorHealth,
    rotations: u64,
    reloads: u64,
}

fn render_health(state: &Mutex<LiveState>) -> String {
    let state = match state.lock() {
        Ok(s) => s,
        Err(poisoned) => poisoned.into_inner(),
    };
    format!(
        "{{\"supervisor\":{},\"rotations\":{},\"reloads\":{}}}",
        state.health.to_json(),
        state.rotations,
        state.reloads,
    )
}

/// A started daemon: observability server bound and listening, monitor
/// spawned, ready to consume a source on the caller's thread.
pub struct Daemon {
    cfg: DaemonConfig,
    registry: MetricRegistry,
    events: EventLog,
    server: HttpServer,
    state: Arc<Mutex<LiveState>>,
    monitor: ShardedMonitor,
    stage: StageTimers,
    restored: bool,
    ckpt: CheckpointMetrics,
    source_watch: Option<SourceWatch>,
}

/// Checkpoint instrumentation: how often, how long the ingest loop paused,
/// and how many attempts failed (engine degraded, disk trouble).
struct CheckpointMetrics {
    written: Counter,
    failed: Counter,
    pause_ns: Histogram,
}

impl CheckpointMetrics {
    fn register(registry: &MetricRegistry) -> CheckpointMetrics {
        CheckpointMetrics {
            written: registry.counter(
                "dart_daemon_checkpoints_total",
                &[],
                "snapshots durably written (cadence + rotation + on-demand)",
            ),
            failed: registry.counter(
                "dart_daemon_checkpoint_failures_total",
                &[],
                "checkpoint attempts that failed (engine degraded or I/O error)",
            ),
            pause_ns: registry.histogram(
                "dart_daemon_checkpoint_pause_ns",
                &[],
                "ingest-loop pause per checkpoint (quiesce + serialize + fsync)",
            ),
        }
    }
}

/// Ingest-side counters mirrored into the registry each block so scrapes
/// see reconnection and decode-tolerance activity live.
struct SourceWatch {
    counters: SourceCounters,
    reconnects: Counter,
    decode_errors: Counter,
    io_errors: Counter,
}

impl SourceWatch {
    fn sync(&self) {
        self.reconnects.store(self.counters.reconnects());
        self.decode_errors.store(self.counters.decode_errors());
        self.io_errors.store(self.counters.io_errors());
    }
}

impl Daemon {
    /// Bind the observability server and spawn the shard workers. The
    /// packet loop does not start until [`Daemon::run`].
    pub fn start(mut cfg: DaemonConfig) -> std::io::Result<Daemon> {
        cfg.sharded = cfg.sharded.with_keep_samples(false);
        cfg.block_pkts = cfg.block_pkts.max(1);
        let registry = MetricRegistry::new();
        let events = EventLog::new(cfg.events_cap);
        let mut monitor = ShardedMonitor::with_telemetry(cfg.sharded, &registry);
        let mut restored = false;
        if let Some(path) = &cfg.restore_from {
            // Restore must precede the first packet; surface any problem
            // (missing file, checksum, geometry mismatch) as a bind-time
            // error rather than silently starting cold.
            let snap = Snapshot::from_file(path).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("restore {}: {e}", path.display()),
                )
            })?;
            monitor.restore(&snap).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("restore {}: {e}", path.display()),
                )
            })?;
            restored = true;
            events.info(
                "daemon",
                "state restored from snapshot",
                &[("path", &path.display().to_string())],
            );
        }
        let stage = StageTimers::register(&registry);
        let ckpt = CheckpointMetrics::register(&registry);
        let state = Arc::new(Mutex::new(LiveState {
            health: monitor.health(),
            rotations: 0,
            reloads: 0,
        }));
        let provider_state = Arc::clone(&state);
        let server = HttpServer::serve(
            cfg.bind.as_str(),
            registry.clone(),
            events.clone(),
            Arc::new(move || render_health(&provider_state)),
        )?;
        events.info(
            "daemon",
            "observability server listening",
            &[("addr", &server.addr().to_string())],
        );
        Ok(Daemon {
            cfg,
            registry,
            events,
            server,
            state,
            monitor,
            stage,
            restored,
            ckpt,
            source_watch: None,
        })
    }

    /// Mirror a source's reconnect/decode-error counters into the registry
    /// (`dart_source_*`), synced once per ingest block.
    pub fn watch_source(&mut self, counters: SourceCounters) {
        self.source_watch = Some(SourceWatch {
            counters,
            reconnects: self.registry.counter(
                "dart_source_reconnects_total",
                &[],
                "successful packet-source reconnections",
            ),
            decode_errors: self.registry.counter(
                "dart_source_decode_errors_total",
                &[],
                "malformed records skipped by decode tolerance",
            ),
            io_errors: self.registry.counter(
                "dart_source_io_errors_total",
                &[],
                "I/O failures that triggered reconnection",
            ),
        });
    }

    /// Quiesce the monitor, serialize, and atomically publish a snapshot.
    /// Failures are counted and logged, never fatal: a daemon that cannot
    /// checkpoint is degraded, not dead.
    fn write_checkpoint(&mut self, written: &mut u64, why: &str) {
        let Some(path) = self.cfg.snapshot_path.clone() else {
            self.events.warn(
                "daemon",
                "checkpoint requested but no snapshot path configured",
                &[("why", why)],
            );
            return;
        };
        let start = Instant::now();
        let result = self
            .monitor
            .checkpoint()
            .and_then(|snap| snap.to_file(&path));
        let pause = start.elapsed();
        self.ckpt.pause_ns.observe(pause.as_nanos() as u64);
        match result {
            Ok(()) => {
                *written += 1;
                self.ckpt.written.inc();
                self.events.info(
                    "daemon",
                    "checkpoint written",
                    &[
                        ("why", why),
                        ("path", &path.display().to_string()),
                        ("pause_us", &(pause.as_micros() as u64).to_string()),
                    ],
                );
            }
            Err(e) => {
                self.ckpt.failed.inc();
                self.events.warn(
                    "daemon",
                    "checkpoint failed",
                    &[("why", why), ("error", &e.to_string())],
                );
            }
        }
    }

    /// The observability server's resolved listen address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The server handle — tests and signal handlers use it to request
    /// shutdown in-process instead of over HTTP.
    pub fn server(&self) -> &HttpServer {
        &self.server
    }

    /// The metric registry the daemon publishes into.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// Drive the daemon loop until the source drains or shutdown is
    /// requested, then flush, stop the server, and report.
    pub fn run(mut self, source: &mut dyn PacketSource) -> Result<DaemonReport, PacketError> {
        let mut buf: Vec<dart_packet::PacketMeta> = Vec::with_capacity(self.cfg.block_pkts);
        let mut sink: Vec<dart_core::RttSample> = Vec::new();
        let mut carried = EngineStats::default();
        let mut rotations = 0u64;
        let mut reloads = 0u64;
        let mut checkpoints = 0u64;
        let mut max_ts: Nanos = 0;
        let mut last_rotate = Instant::now();
        let mut last_checkpoint = Instant::now();
        let shutdown = loop {
            if self.server.shutdown_requested() {
                break true;
            }
            if self.server.take_checkpoint_request() {
                self.write_checkpoint(&mut checkpoints, "control plane");
                last_checkpoint = Instant::now();
            }
            if self.server.take_reload_request() {
                // SIGHUP analogue: retire the current monitor cleanly and
                // spawn a fresh one into the same registry series.
                let monitor = std::mem::replace(
                    &mut self.monitor,
                    ShardedMonitor::with_telemetry(self.cfg.sharded, &self.registry),
                );
                let run = monitor.into_run();
                carried.merge(&run.stats);
                reloads += 1;
                last_rotate = Instant::now();
                self.events.info(
                    "daemon",
                    "monitor reloaded",
                    &[("generation", &reloads.to_string())],
                );
            }
            let stage = &self.stage;
            let n = stage.time(Stage::Decode, || {
                source.next_chunk(&mut buf, self.cfg.block_pkts)
            })?;
            if n == 0 {
                // A tailed source (Follow) ends by being *woken* by the
                // shutdown flag mid-read — attribute that end to the
                // request, not to the stream.
                break self.server.shutdown_requested();
            }
            if let Some(last) = buf.last() {
                max_ts = max_ts.max(last.ts);
            }
            let monitor = &mut self.monitor;
            stage.time(Stage::Match, || monitor.on_batch(&buf[..n], &mut sink));
            if last_rotate.elapsed() >= self.cfg.rotate_every {
                ShardedMonitor::rotate_epoch(
                    &mut self.monitor,
                    max_ts.saturating_sub(self.cfg.retain),
                );
                rotations += 1;
                last_rotate = Instant::now();
                self.events.info(
                    "daemon",
                    "epoch rotated",
                    &[
                        ("rotation", &rotations.to_string()),
                        (
                            "cutoff",
                            &max_ts.saturating_sub(self.cfg.retain).to_string(),
                        ),
                    ],
                );
                // A rotation just swept state; snapshotting here means a
                // restore never resurrects entries the sweep retired.
                if self.cfg.snapshot_path.is_some() {
                    self.write_checkpoint(&mut checkpoints, "rotation boundary");
                    last_checkpoint = Instant::now();
                }
            }
            if let Some(every) = self.cfg.checkpoint_every {
                if self.cfg.snapshot_path.is_some() && last_checkpoint.elapsed() >= every {
                    self.write_checkpoint(&mut checkpoints, "cadence");
                    last_checkpoint = Instant::now();
                }
            }
            if let Some(watch) = &self.source_watch {
                watch.sync();
            }
            if let Ok(mut state) = self.state.lock() {
                state.health = self.monitor.health();
                state.rotations = rotations;
                state.reloads = reloads;
            }
        };
        self.events.info(
            "daemon",
            if shutdown {
                "shutdown requested, flushing"
            } else {
                "source drained, flushing"
            },
            &[],
        );
        // A final checkpoint *before* the flush retires the workers: a
        // clean shutdown leaves a snapshot a `--restore` can resume from.
        if self.cfg.snapshot_path.is_some() {
            self.write_checkpoint(&mut checkpoints, "shutdown");
        }
        if let Some(watch) = &self.source_watch {
            watch.sync();
        }
        let stage = &self.stage;
        let monitor = &mut self.monitor;
        stage.time(Stage::Flush, || monitor.flush(&mut sink));
        let health = self.monitor.health();
        let mut stats = RttMonitor::stats(&self.monitor);
        stats.merge(&carried);
        if let Ok(mut state) = self.state.lock() {
            state.health = health;
        }
        let addr = self.server.addr();
        self.server.stop();
        Ok(DaemonReport {
            packets: stats.packets + stats.monitor_miss,
            rotations,
            reloads,
            checkpoints,
            restored: self.restored,
            shutdown_requested: shutdown,
            stats,
            health,
            addr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_core::DartConfig;
    use dart_packet::{CycleSource, Direction, FlowKey, PacketBuilder, PacketMeta};
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    fn exchanges(flows: u32, count: u32) -> Vec<PacketMeta> {
        let mut pkts = Vec::new();
        for e in 0..count {
            for fi in 0..flows {
                let flow =
                    FlowKey::from_raw(0x0a00_0100 + fi, 40_000 + fi as u16, 0x5db8_d822, 443);
                let t = (e as Nanos) * 10_000_000 + (fi as Nanos) * 1_000;
                pkts.push(
                    PacketBuilder::new(flow, t)
                        .seq(e * 1460)
                        .payload(1460)
                        .dir(Direction::Outbound)
                        .build(),
                );
                pkts.push(
                    PacketBuilder::new(flow.reverse(), t + 5_000_000)
                        .ack((e * 1460).wrapping_add(1460))
                        .dir(Direction::Inbound)
                        .build(),
                );
            }
        }
        pkts.sort_by_key(|p| p.ts);
        pkts
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(
            s,
            "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .expect("send");
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("read");
        raw.split_once("\r\n\r\n").expect("body").1.to_string()
    }

    fn post(addr: SocketAddr, path: &str) {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(
            s,
            "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
        )
        .expect("send");
        let mut raw = String::new();
        let _ = s.read_to_string(&mut raw);
    }

    fn cfg() -> DaemonConfig {
        DaemonConfig {
            sharded: ShardedConfig::new(DartConfig::default(), 2).with_batch_size(64),
            block_pkts: 128,
            rotate_every: Duration::from_millis(20),
            retain: 50_000_000,
            ..DaemonConfig::default()
        }
    }

    #[test]
    fn drains_a_finite_source_and_accounts_every_packet() {
        let pkts = exchanges(10, 4);
        let total = pkts.len() as u64;
        let daemon = Daemon::start(cfg()).expect("bind");
        let mut source = dart_packet::SliceSource::new(&pkts);
        let report = daemon.run(&mut source).expect("clean run");
        assert!(!report.shutdown_requested);
        assert_eq!(report.packets, total);
        assert_eq!(report.stats.packets + report.stats.monitor_miss, total);
        assert!(report.stats.samples > 0);
        assert!(report.health.flushed);
    }

    #[test]
    fn rotates_on_the_wall_clock_and_serves_the_plane() {
        // A cycled trace long enough to cross several 20 ms rotation
        // periods; the loop is driven by the source, so give it plenty of
        // passes and end via shutdown.
        let pkts = exchanges(10, 4);
        let daemon = Daemon::start(cfg()).expect("bind");
        let addr = daemon.addr();
        let server_thread = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            post(addr, "/control/shutdown");
        });
        let mut source = CycleSource::with_gap(pkts, 1_000_000);
        let report = daemon.run(&mut source).expect("clean run");
        server_thread.join().expect("client thread");
        assert!(report.shutdown_requested);
        assert!(report.rotations >= 2, "got {} rotations", report.rotations);
        assert!(report.health.healthy(), "{:?}", report.health);
    }

    #[test]
    fn healthz_and_metrics_reflect_the_run_live() {
        let pkts = exchanges(8, 3);
        let daemon = Daemon::start(cfg()).expect("bind");
        let addr = daemon.addr();
        let client = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            let health = get(addr, "/healthz");
            let metrics = get(addr, "/metrics");
            let events = get(addr, "/events");
            post(addr, "/control/shutdown");
            (health, metrics, events)
        });
        let mut source = CycleSource::with_gap(pkts, 1_000_000);
        let report = daemon.run(&mut source).expect("clean run");
        let (health, metrics, events) = client.join().expect("client");
        let v = dart_telemetry::json::parse(health.trim()).expect("healthz is JSON");
        let sup = v.get("supervisor").expect("supervisor block");
        assert_eq!(sup.get("shards").and_then(|s| s.as_u64()), Some(2));
        assert!(
            metrics.contains("dart_supervisor_healthy_shards 2"),
            "{metrics}"
        );
        assert!(metrics.contains("dart_stage_decode_ns"), "{metrics}");
        assert!(metrics.contains("dart_epoch_rotations_total"), "{metrics}");
        assert!(
            events.contains("observability server listening"),
            "{events}"
        );
        assert!(report.packets > 0);
    }

    #[test]
    fn reload_rebuilds_the_monitor_and_keeps_counting() {
        let pkts = exchanges(8, 3);
        let daemon = Daemon::start(cfg()).expect("bind");
        let addr = daemon.addr();
        let client = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            post(addr, "/control/reload");
            std::thread::sleep(Duration::from_millis(60));
            post(addr, "/control/shutdown");
        });
        let mut source = CycleSource::with_gap(pkts, 1_000_000);
        let report = daemon.run(&mut source).expect("clean run");
        client.join().expect("client");
        assert_eq!(report.reloads, 1);
        assert!(report.shutdown_requested);
        // Conservation holds across the generation boundary.
        assert_eq!(
            report.packets,
            report.stats.packets + report.stats.monitor_miss
        );
    }

    #[test]
    fn follow_mode_shutdown_is_attributed_to_the_request() {
        // A tailed source parked at end-of-data is *woken* by the shutdown
        // flag; the resulting empty read must report as a shutdown, not as
        // the source draining.
        let pkts = exchanges(6, 2);
        let bytes = dart_packet::trace::to_bytes(&pkts);
        let daemon = Daemon::start(cfg()).expect("bind");
        let addr = daemon.addr();
        let follow =
            dart_packet::Follow::new(std::io::Cursor::new(bytes), daemon.server().shutdown_flag())
                .with_poll_interval(Duration::from_millis(1));
        let mut source = dart_packet::trace::TraceReader::new(follow).expect("header");
        let client = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            post(addr, "/control/shutdown");
        });
        let report = daemon.run(&mut source).expect("clean run");
        client.join().expect("client");
        assert!(report.shutdown_requested, "wake-by-shutdown misattributed");
        assert_eq!(report.packets, pkts.len() as u64, "tail lost packets");
    }

    #[test]
    fn in_process_shutdown_request_ends_the_loop() {
        let pkts = exchanges(6, 2);
        let daemon = Daemon::start(cfg()).expect("bind");
        daemon.server().request_shutdown();
        let mut source = CycleSource::new(pkts);
        let report = daemon.run(&mut source).expect("clean run");
        assert!(report.shutdown_requested);
        assert_eq!(report.packets, 0, "shutdown observed before any block");
    }
}
