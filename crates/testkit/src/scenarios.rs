//! Adversarial scenario suites: the judged end-to-end harness for the
//! encrypted-transport engine family.
//!
//! Each scenario comes from `dart_sim::adversarial` — mixed TCP + QUIC
//! captures engineered to stress a specific failure mode (QUIC-dominated
//! mixes, SYN-flood flow churn, mid-trace path interception, wireless
//! heavy tails). This module runs the full differential suite over them
//! with the spin and histogram engines included, so every run judges:
//!
//! * the Dart engines by the SEQ/ACK oracle (exact-anchored + bounded
//!   loss, exactly as in [`diff`](crate::diff));
//! * `spin` by the [spin-edge oracle](crate::spin_oracle) — zero
//!   fabricated periods at any table pressure;
//! * `dart-hist` by the histogram-tolerance judgement — p50/p99 within
//!   ±1 log2 bucket of the oracle's exact-RTT distribution.
//!
//! Runs are pure functions of [`ScenarioConfig`] (seed included), so a CI
//! failure replays locally from the printed config alone. Scorecard
//! artifacts in the `ChaosReport` style land under
//! [`scenario_artifact_dir`] for CI upload.

use crate::diff::{run_diff, run_diff_faulted, DiffConfig, DiffReport};
use crate::faults::FaultConfig;
use crate::spin_oracle::run_spin_oracle;
use dart_core::Backend;
use dart_sim::adversarial::ScenarioKind;
use dart_sim::TraceTransform;
use std::fmt;
use std::path::{Path, PathBuf};

/// One scenario run, fully determined.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// Which adversarial generator to run.
    pub kind: ScenarioKind,
    /// Traffic-volume multiplier (1.0 = the generator's default size;
    /// CI runs reduced scale, perf sweeps run >1).
    pub scale: f64,
    /// Generator seed (forked internally per traffic class).
    pub seed: u64,
    /// Optional capture-level fault layer on top of the generated trace.
    pub fault: Option<FaultConfig>,
    /// Flow-state backend the Dart rows run under — per-backend scorecards
    /// are how the accuracy frontier gets adversarial coverage.
    pub backend: Backend,
}

impl ScenarioConfig {
    /// A clean run of `kind` at `scale`.
    pub fn clean(kind: ScenarioKind, scale: f64, seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            kind,
            scale,
            seed,
            fault: None,
            backend: Backend::Exact,
        }
    }

    /// A run with the stress fault layer (drop/dup/reorder/truncate)
    /// seeded from `fault_seed`.
    pub fn stressed(kind: ScenarioKind, scale: f64, seed: u64, fault_seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            fault: Some(FaultConfig::stress(fault_seed)),
            ..ScenarioConfig::clean(kind, scale, seed)
        }
    }

    /// The same run under a different flow-state backend.
    pub fn with_backend(mut self, backend: Backend) -> ScenarioConfig {
        self.backend = backend;
        self
    }
}

/// The differential configuration scenario runs use: the Dart engines
/// plus the software ground truth and the two encrypted-transport
/// engines this harness exists to judge.
pub fn scenario_diff_config() -> DiffConfig {
    DiffConfig {
        baseline_engines: vec![
            "tcptrace".to_string(),
            "spin".to_string(),
            "dart-hist".to_string(),
        ],
        ..DiffConfig::default()
    }
}

/// Verdict of one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The configuration that produced this outcome.
    pub config: ScenarioConfig,
    /// Packets in the generated (pre-fault) capture.
    pub packets: u64,
    /// Spin flows the generator mixed in.
    pub spin_flows: u64,
    /// Spin edges the oracle observed on the capture the engines saw.
    pub spin_edges: u64,
    /// The full differential report (Dart, tcptrace, spin, dart-hist).
    pub report: DiffReport,
}

impl ScenarioOutcome {
    /// True when every asserted invariant held.
    pub fn pass(&self) -> bool {
        self.report.pass()
    }
}

impl fmt::Display for ScenarioOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scenario[{}] scale {} · seed {:#x}{}{}",
            self.config.kind,
            self.config.scale,
            self.config.seed,
            match &self.config.fault {
                Some(fc) => format!(" · fault seed {:#x}", fc.seed),
                None => String::new(),
            },
            match self.config.backend {
                Backend::Exact => String::new(),
                other => format!(" · backend {other}"),
            }
        )?;
        writeln!(
            f,
            "  {} packets · {} spin flows · {} spin edges observed",
            self.packets, self.spin_flows, self.spin_edges
        )?;
        write!(f, "{}", self.report)
    }
}

/// Generate the scenario, apply the optional fault layer, and run the
/// full differential suite over it.
pub fn run_scenario(cfg: &ScenarioConfig) -> ScenarioOutcome {
    let trace = cfg.kind.generate(cfg.scale, cfg.seed);
    let mut diff_cfg = scenario_diff_config();
    diff_cfg.engine = diff_cfg.engine.with_backend(cfg.backend);
    let report = match cfg.fault {
        Some(fault) => run_diff_faulted(&diff_cfg, fault, &trace.packets),
        None => run_diff(&diff_cfg, &trace.packets),
    };
    // Edge truth on the capture the engines actually saw: re-apply the
    // same seeded fault (FaultInjector is deterministic in its config).
    let spin_edges = match cfg.fault {
        Some(fault) => {
            let mut injector = crate::faults::FaultInjector::new(fault);
            run_spin_oracle(&injector.apply(trace.packets.clone())).edge_count()
        }
        None => run_spin_oracle(&trace.packets).edge_count(),
    };
    ScenarioOutcome {
        config: *cfg,
        packets: trace.packets.len() as u64,
        spin_flows: trace.spin_flows.len() as u64,
        spin_edges,
        report,
    }
}

/// Run every scenario kind at the same scale, clean and (when
/// `fault_seed` is given) stressed — the acceptance sweep the CI
/// `scenarios` job and `dartmon scenarios` report. All Dart rows run
/// under `backend`, so the sweep produces a per-backend scorecard.
pub fn run_scenario_matrix(
    scale: f64,
    seed: u64,
    fault_seed: Option<u64>,
    backend: Backend,
) -> Vec<ScenarioOutcome> {
    let mut outcomes = Vec::new();
    for kind in ScenarioKind::ALL {
        outcomes.push(run_scenario(
            &ScenarioConfig::clean(kind, scale, seed).with_backend(backend),
        ));
        if let Some(fs) = fault_seed {
            outcomes.push(run_scenario(
                &ScenarioConfig::stressed(kind, scale, seed, fs).with_backend(backend),
            ));
        }
    }
    outcomes
}

/// Repository-root directory where scenario scorecards are written
/// (`target/tmp/scenarios/`; CI uploads it as the run's artifact).
pub fn scenario_artifact_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp/scenarios")
}

/// Persist one scorecard per outcome (`<kind>[-stressed].txt`, the
/// Display rendering plus the counter blocks) and a one-line-per-run
/// `scorecard.txt` summary. Returns the summary path.
pub fn write_scorecards(dir: &Path, outcomes: &[ScenarioOutcome]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let mut summary = String::new();
    for o in outcomes {
        let mut stem = match o.config.fault {
            Some(_) => format!("{}-stressed", o.config.kind),
            None => o.config.kind.to_string(),
        };
        if o.config.backend != Backend::Exact {
            stem.push_str(&format!("@{}", o.config.backend));
        }
        let mut text = o.to_string();
        text.push('\n');
        text.push_str(&o.report.counters_text());
        std::fs::write(dir.join(format!("{stem}.txt")), text)?;
        let spin_row = o.report.outcomes.iter().find(|e| e.name == "spin");
        summary.push_str(&format!(
            "{stem}: {} · {} pkts · spin impossible {} · {}\n",
            if o.pass() { "PASS" } else { "FAIL" },
            o.packets,
            spin_row.map_or(0, |e| e.card.impossible),
            match o.config.fault {
                Some(fc) => format!("fault seed {:#x}", fc.seed),
                None => "clean".to_string(),
            },
        ));
    }
    let path = dir.join("scorecard.txt");
    std::fs::write(&path, summary)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_runs_are_deterministic() {
        let cfg = ScenarioConfig::clean(ScenarioKind::QuicMix, 0.15, 0xD7);
        let a = run_scenario(&cfg);
        let b = run_scenario(&cfg);
        assert_eq!(a.report.to_string(), b.report.to_string());
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.spin_edges, b.spin_edges);
    }

    #[test]
    fn scenario_config_includes_the_new_engines() {
        let names = scenario_diff_config().engine_names();
        for name in ["dart", "dart-sharded-4", "tcptrace", "spin", "dart-hist"] {
            assert!(names.contains(&name.to_string()), "{names:?}");
        }
    }

    #[test]
    fn backend_runs_tag_display_and_scorecard_stem() {
        let dir = std::env::temp_dir().join("dart-scenario-backend-selftest");
        let outcome = run_scenario(
            &ScenarioConfig::clean(ScenarioKind::ChurnStorm, 0.1, 3).with_backend(Backend::Sketch),
        );
        assert!(outcome.to_string().contains("backend sketch"), "{outcome}");
        write_scorecards(&dir, std::slice::from_ref(&outcome)).unwrap();
        assert!(
            dir.join("churn-storm@sketch.txt").exists(),
            "backend-suffixed scorecard missing"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scorecards_are_written() {
        let dir = std::env::temp_dir().join("dart-scenario-selftest");
        let outcome = run_scenario(&ScenarioConfig::clean(ScenarioKind::ChurnStorm, 0.1, 3));
        let summary = write_scorecards(&dir, std::slice::from_ref(&outcome)).unwrap();
        let text = std::fs::read_to_string(&summary).unwrap();
        assert!(text.contains("churn-storm"), "{text}");
        assert!(
            dir.join("churn-storm.txt").exists(),
            "per-scenario scorecard missing"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
