//! Kill–restart recovery harness: crash the monitor at seeded points,
//! restore from the last durable checkpoint, and judge what survives
//! against the oracle.
//!
//! A long-lived monitor that checkpoints (`dartmon serve
//! --checkpoint-millis`) makes three promises across a `kill -9`:
//!
//! 1. **No fabrication** — restoring a snapshot never invents RTT
//!    samples. Every sample the restored run emits must still classify as
//!    valid against the unbounded-memory oracle run over the *full*
//!    capture ([`crate::oracle`]).
//! 2. **Bounded loss** — only packets that arrived after the last durable
//!    checkpoint and before the crash are unrecoverable, so the sample
//!    deficit versus an uncrashed reference run is proportional to one
//!    checkpoint interval, never to the whole history.
//! 3. **Conservation** — the restored books still balance:
//!    `packets + monitor_miss` equals everything fed across both lives
//!    (the durable prefix plus the post-crash tail).
//!
//! The harness drives all three through seeded crash points:
//!
//! * [`CrashPoint::MidBlock`] — die between checkpoints, partway through
//!   an ingest block;
//! * [`CrashPoint::MidRotation`] — die immediately after an epoch
//!   rotation whose sweep was never checkpointed (the restored state is
//!   pre-rotation);
//! * [`CrashPoint::MidCheckpointWrite`] — die partway through writing the
//!   snapshot itself: the torn frame must be *detected* (checksum /
//!   length mismatch) and recovery must fall back to the previous durable
//!   snapshot, never restore garbage.
//!
//! Everything is deterministic in [`RecoveryConfig::seed`]: the crash
//! position, the torn-write cut, and the generated trace, so a failing
//! cell of the seeds × crash-points × backends matrix replays exactly.

use crate::oracle::{run_oracle, OracleConfig, OracleReport, ScoreCard};
use dart_core::sharded::{ShardedConfig, ShardedMonitor, ShardedRun};
use dart_core::{Backend, DartConfig, RttMonitor, RttSample, Snapshot};
use dart_packet::{Nanos, PacketMeta, SECOND};
use dart_sim::scenario::{campus, CampusConfig};

/// Where the first life dies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Between checkpoints, partway through an ingest block.
    MidBlock,
    /// Immediately after an epoch rotation that was never checkpointed.
    MidRotation,
    /// Partway through writing the checkpoint: the torn frame must be
    /// rejected and recovery must fall back to the previous snapshot.
    MidCheckpointWrite,
}

impl CrashPoint {
    /// Every crash point, for matrix drivers.
    pub const ALL: [CrashPoint; 3] = [
        CrashPoint::MidBlock,
        CrashPoint::MidRotation,
        CrashPoint::MidCheckpointWrite,
    ];
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CrashPoint::MidBlock => "mid-block",
            CrashPoint::MidRotation => "mid-rotation",
            CrashPoint::MidCheckpointWrite => "mid-checkpoint-write",
        })
    }
}

/// One cell of the recovery matrix.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Flow-state backend under test.
    pub backend: Backend,
    /// Where the first life dies.
    pub crash: CrashPoint,
    /// Seeds the crash position and the torn-write cut.
    pub seed: u64,
    /// Shard workers in the supervised monitor.
    pub shards: usize,
    /// Packets between checkpoints (the durability interval).
    pub checkpoint_every: usize,
    /// Packets between epoch rotations.
    pub rotate_every: usize,
    /// Ingest block size.
    pub block: usize,
}

impl Default for RecoveryConfig {
    fn default() -> RecoveryConfig {
        RecoveryConfig {
            backend: Backend::Exact,
            crash: CrashPoint::MidBlock,
            seed: 0xC4A5_0001,
            shards: 2,
            checkpoint_every: 256,
            rotate_every: 640,
            block: 32,
        }
    }
}

/// What one kill–restart cycle produced, plus the judged verdicts.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Packets in the full capture.
    pub packets: u64,
    /// Packet position of the snapshot the second life restored.
    pub durable_at: u64,
    /// Packet position where the first life died.
    pub crash_at: u64,
    /// Unrecoverable packets: fed before the crash, after the last
    /// durable checkpoint.
    pub lost: u64,
    /// `MidCheckpointWrite` only: the torn frame was rejected by the
    /// checksum/length validation (it must be).
    pub torn_write_detected: bool,
    /// `packets + monitor_miss` in the restored run's final books.
    pub accounted: u64,
    /// What conservation demands: `durable_at + (packets − crash_at)`.
    pub expected_accounted: u64,
    /// Samples the restored run emitted.
    pub samples: u64,
    /// Samples an uncrashed reference run emits on the same schedule.
    pub reference_samples: u64,
    /// The restored samples scored against the full-capture oracle.
    pub card: ScoreCard,
    /// Every violated invariant, human-readable. Empty means pass.
    pub violations: Vec<String>,
}

impl RecoveryReport {
    /// True when every recovery invariant held.
    pub fn pass(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} pkts, durable@{}, crash@{} (lost {}), samples {}/{} ref, \
             accounted {}/{} — {}",
            self.packets,
            self.durable_at,
            self.crash_at,
            self.lost,
            self.samples,
            self.reference_samples,
            self.accounted,
            self.expected_accounted,
            if self.pass() {
                "PASS".to_string()
            } else {
                format!("FAIL: {}", self.violations.join("; "))
            }
        )
    }
}

/// SplitMix64 finalizer: one well-mixed word per (seed, salt) pair.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// A campus-style capture sized for the recovery matrix, deterministic in
/// `seed` (each matrix seed exercises a different traffic pattern, not
/// just a different crash position). Sized for a 90-cell matrix on a CI
/// box: a few thousand packets, several checkpoint intervals deep.
///
/// The campus mix is heavily incomplete (72.5% of connections never
/// complete), so a fixed small population can land an almost-empty
/// capture on an unlucky seed; the population doubles until the capture
/// spans several default checkpoint intervals.
pub fn recovery_trace(seed: u64) -> Vec<PacketMeta> {
    let mut connections = 24;
    loop {
        let packets = campus(CampusConfig {
            connections,
            duration: 2 * SECOND,
            seed,
            ..CampusConfig::default()
        })
        .packets;
        if packets.len() >= 2_048 || connections >= 384 {
            return packets;
        }
        connections *= 2;
    }
}

/// Feed `packets[start..end]` in blocks, rotating at every multiple of
/// `rotate_every`, and hand control to `at_checkpoint` at every multiple
/// of `checkpoint_every` (both positions measured over the full capture,
/// so the second life keeps the first life's schedule).
fn drive(
    monitor: &mut ShardedMonitor,
    packets: &[PacketMeta],
    cfg: &RecoveryConfig,
    start: usize,
    end: usize,
    max_ts: &mut Nanos,
    mut at_checkpoint: impl FnMut(&mut ShardedMonitor, usize),
) {
    let mut sink: Vec<RttSample> = Vec::new();
    let mut pos = start;
    while pos < end {
        let next_ckpt = (pos / cfg.checkpoint_every + 1) * cfg.checkpoint_every;
        let next_rot = (pos / cfg.rotate_every + 1) * cfg.rotate_every;
        let stop = end.min(next_ckpt).min(next_rot).min(pos + cfg.block);
        monitor.on_batch(&packets[pos..stop], &mut sink);
        if let Some(p) = packets[pos..stop].last() {
            *max_ts = (*max_ts).max(p.ts);
        }
        pos = stop;
        if pos < end {
            if pos % cfg.rotate_every == 0 {
                ShardedMonitor::rotate_epoch(monitor, max_ts.saturating_sub(SECOND));
            }
            if pos % cfg.checkpoint_every == 0 {
                at_checkpoint(monitor, pos);
            }
        }
    }
}

/// The oracle the recovery matrix judges against: the full capture, with
/// the role policies every cell's engine shares.
pub fn recovery_oracle(packets: &[PacketMeta]) -> OracleReport {
    run_oracle(
        OracleConfig {
            syn_policy: DartConfig::default().syn_policy,
            leg: DartConfig::default().leg,
        },
        packets,
    )
}

/// The uncrashed reference for a cell: same engine, same rotation
/// schedule, no crash. Shared across a seed × backend's three crash
/// points by [`run_recovery_matrix`].
pub fn recovery_reference(cfg: &RecoveryConfig, packets: &[PacketMeta]) -> ShardedRun {
    let engine = DartConfig::default().with_backend(cfg.backend);
    let scfg = ShardedConfig::new(engine, cfg.shards)
        .with_batch_size(cfg.block)
        .with_keep_samples(true);
    let mut reference = ShardedMonitor::new(scfg);
    let mut ref_ts: Nanos = 0;
    drive(
        &mut reference,
        packets,
        cfg,
        0,
        packets.len(),
        &mut ref_ts,
        |_, _| {},
    );
    reference.into_run()
}

/// Run one kill–restart cycle over `packets` and judge the outcome.
///
/// # Panics
///
/// Panics when the capture is too short to place a crash after the first
/// checkpoint (needs at least `3 × checkpoint_every` packets).
pub fn run_recovery(cfg: &RecoveryConfig, packets: &[PacketMeta]) -> RecoveryReport {
    run_recovery_judged(
        cfg,
        packets,
        &recovery_oracle(packets),
        &recovery_reference(cfg, packets),
    )
}

/// The full seeds × crash-points × backends matrix, amortizing the oracle
/// (per seed) and the reference run (per seed × backend) across cells.
pub fn run_recovery_matrix(
    seeds: &[u64],
    backends: &[Backend],
    base: &RecoveryConfig,
) -> Vec<(RecoveryConfig, RecoveryReport)> {
    let mut out = Vec::new();
    for &seed in seeds {
        let packets = recovery_trace(seed);
        let oracle = recovery_oracle(&packets);
        for &backend in backends {
            let cell = RecoveryConfig {
                backend,
                seed,
                ..base.clone()
            };
            let reference = recovery_reference(&cell, &packets);
            for crash in CrashPoint::ALL {
                let cfg = RecoveryConfig {
                    crash,
                    ..cell.clone()
                };
                let report = run_recovery_judged(&cfg, &packets, &oracle, &reference);
                out.push((cfg, report));
            }
        }
    }
    out
}

/// [`run_recovery`] with the oracle and reference precomputed.
pub fn run_recovery_judged(
    cfg: &RecoveryConfig,
    packets: &[PacketMeta],
    oracle: &OracleReport,
    reference: &ShardedRun,
) -> RecoveryReport {
    let n = packets.len();
    let interval = cfg.checkpoint_every;
    assert!(
        n >= 3 * interval,
        "recovery harness needs >= {} packets, got {n}",
        3 * interval
    );
    let mut violations: Vec<String> = Vec::new();

    // Seeded crash placement: a checkpoint index k with at least one
    // interval before and after, then a position derived from the point.
    let k_max = (n - 1) / interval; // last boundary strictly inside the capture
    let k = 1 + (mix64(cfg.seed ^ 0xC0FF_EE00) as usize) % k_max.saturating_sub(1).max(1);
    let durable_at = k * interval;
    let offset = 1 + (mix64(cfg.seed ^ 0x000F_F5E7) as usize) % (interval - 1);
    let crash_at = match cfg.crash {
        CrashPoint::MidBlock | CrashPoint::MidRotation => (durable_at + offset).min(n),
        // Die exactly at the next boundary, mid-write of its snapshot.
        CrashPoint::MidCheckpointWrite => ((k + 1) * interval).min(n),
    };

    let engine = DartConfig::default().with_backend(cfg.backend);
    let scfg = ShardedConfig::new(engine, cfg.shards)
        .with_batch_size(cfg.block)
        .with_keep_samples(true);

    // ---- First life: feed to the crash point, checkpointing on the way.
    let mut first = ShardedMonitor::new(scfg);
    let mut max_ts: Nanos = 0;
    let mut durable: Option<(usize, Vec<u8>)> = None;
    drive(
        &mut first,
        packets,
        cfg,
        0,
        crash_at,
        &mut max_ts,
        |monitor, pos| match monitor.checkpoint() {
            Ok(snap) => durable = Some((pos, snap.into_bytes())),
            Err(e) => violations.push(format!("checkpoint at {pos} failed: {e}")),
        },
    );
    // The crash itself.
    let mut torn_write_detected = false;
    match cfg.crash {
        CrashPoint::MidBlock => {}
        CrashPoint::MidRotation => {
            // The sweep runs; the process dies before any checkpoint
            // records it. The restored state is pre-rotation.
            ShardedMonitor::rotate_epoch(&mut first, max_ts.saturating_sub(SECOND));
        }
        CrashPoint::MidCheckpointWrite => match first.checkpoint() {
            Ok(snap) => {
                // Tear the frame at a seeded byte: whatever survives on
                // disk must be rejected, not restored.
                let bytes = snap.into_bytes();
                let cut = (mix64(cfg.seed ^ 0x7E42) % (bytes.len() as u64 - 1)) as usize + 1;
                torn_write_detected = Snapshot::from_bytes(bytes[..cut].to_vec()).is_err();
                if !torn_write_detected {
                    violations.push(format!(
                        "torn frame ({cut} of {} bytes) was accepted",
                        bytes.len()
                    ));
                }
            }
            Err(e) => violations.push(format!("crash-point checkpoint failed: {e}")),
        },
    }
    drop(first); // kill -9: no flush, no join, the first life's tail is gone

    // ---- Second life: restore the last durable snapshot, feed the tail.
    let (durable_at, durable_bytes) = match durable {
        Some(d) => d,
        None => {
            violations.push("no durable snapshot before the crash".to_string());
            return incomplete(cfg, n, 0, crash_at, torn_write_detected, violations);
        }
    };
    let snap = match Snapshot::from_bytes(durable_bytes) {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!("durable snapshot failed validation: {e}"));
            return incomplete(
                cfg,
                n,
                durable_at,
                crash_at,
                torn_write_detected,
                violations,
            );
        }
    };
    let mut second = ShardedMonitor::new(scfg);
    if let Err(e) = second.restore(&snap) {
        violations.push(format!("restore failed: {e}"));
        return incomplete(
            cfg,
            n,
            durable_at,
            crash_at,
            torn_write_detected,
            violations,
        );
    }
    let mut max_ts2 = max_ts;
    drive(
        &mut second,
        packets,
        cfg,
        crash_at,
        n,
        &mut max_ts2,
        |_, _| {},
    );
    let run = second.into_run();

    // ---- Judge.
    let lost = (crash_at - durable_at) as u64;
    let accounted = run.stats.packets + run.stats.monitor_miss;
    let expected_accounted = (durable_at + (n - crash_at)) as u64;
    if accounted != expected_accounted {
        violations.push(format!(
            "conservation broke across the crash: accounted {accounted}, expected {expected_accounted}"
        ));
    }
    if !run.healthy() {
        violations.push(format!("restored run degraded: {:?}", run.failures));
    }
    let card = oracle.score(&run.samples);
    if card.impossible + card.cross_anchored > 0 {
        violations.push(format!(
            "{} fabricated + {} cross-anchored samples after restore",
            card.impossible, card.cross_anchored
        ));
    }
    // Each lost packet can cost its own sample (a lost ACK) and poison at
    // most one future match (a lost data packet whose ACK now misses), so
    // the deficit is bounded by twice the lost window — proportional to
    // the checkpoint interval, never the history.
    let deficit = (reference.samples.len() as u64).saturating_sub(run.samples.len() as u64);
    let budget = 2 * lost + 2;
    if deficit > budget {
        violations.push(format!(
            "sample loss {deficit} exceeds the lost-window budget {budget} (lost {lost} packets)"
        ));
    }
    RecoveryReport {
        packets: n as u64,
        durable_at: durable_at as u64,
        crash_at: crash_at as u64,
        lost,
        torn_write_detected,
        accounted,
        expected_accounted,
        samples: run.samples.len() as u64,
        reference_samples: reference.samples.len() as u64,
        card,
        violations,
    }
}

/// A report for a cycle that could not reach judging (restore failed);
/// the violations already say why.
fn incomplete(
    _cfg: &RecoveryConfig,
    n: usize,
    durable_at: usize,
    crash_at: usize,
    torn_write_detected: bool,
    violations: Vec<String>,
) -> RecoveryReport {
    RecoveryReport {
        packets: n as u64,
        durable_at: durable_at as u64,
        crash_at: crash_at as u64,
        lost: (crash_at - durable_at) as u64,
        torn_write_detected,
        accounted: 0,
        expected_accounted: 0,
        samples: 0,
        reference_samples: 0,
        card: ScoreCard::default(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full seeds × crash-points × backends matrix lives in
    // tests/recovery.rs (its own binary, so its load cannot starve the
    // timing-sensitive daemon tests); these are smoke checks.

    #[test]
    fn one_cycle_passes_and_is_deterministic() {
        let cfg = RecoveryConfig::default();
        let pkts = recovery_trace(cfg.seed);
        let a = run_recovery(&cfg, &pkts);
        let b = run_recovery(&cfg, &pkts);
        assert!(a.pass(), "{a}");
        assert_eq!(a.crash_at, b.crash_at);
        assert_eq!(a.samples, b.samples);
        assert!(a.lost > 0, "crash must land strictly after the checkpoint");
    }

    #[test]
    fn torn_write_falls_back_to_the_previous_snapshot() {
        let cfg = RecoveryConfig {
            crash: CrashPoint::MidCheckpointWrite,
            ..RecoveryConfig::default()
        };
        let pkts = recovery_trace(cfg.seed);
        let report = run_recovery(&cfg, &pkts);
        assert!(report.pass(), "{report}");
        assert!(report.torn_write_detected, "torn frame restored");
        assert_eq!(
            report.lost, cfg.checkpoint_every as u64,
            "mid-write crash loses exactly one interval"
        );
    }
}
