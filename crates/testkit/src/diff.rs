//! The differential runner: every implementation, one faulted capture, two
//! invariants.
//!
//! For a given (possibly faulted) trace the runner resolves each configured
//! engine through the [`EngineRegistry`] — the serial `dart`, `dart-sharded-N`
//! at each requested shard count, and any requested baselines — streams the
//! trace through the common [`RttMonitor`](dart_core::RttMonitor) path,
//! scores each sample stream against the [`oracle`](crate::oracle), and
//! checks the invariants each entry's [`Judgement`] promises:
//!
//! * **Soundness** — the engine emits no sample the oracle classifies as
//!   [`Impossible`](crate::oracle::SampleClass::Impossible). Table pressure
//!   may lose samples or (with collapse state evicted) emit *ambiguous*
//!   ones, but a fabricated RTT is a bug at any table size. Configurations
//!   that alias flows on purpose (16-bit signatures) get an explicit
//!   `impossible_budget` instead of zero.
//! * **Bounded loss** — every oracle-valid sample the engine misses must be
//!   accounted for by its own [`EngineStats`] counters: the closing ACK of
//!   a missed sample was necessarily classified by the engine as advanced-
//!   but-unmatched, duplicate, stale, optimistic, or flowless. Recall may
//!   degrade under pressure, but only in ways the counters admit to.
//!
//! Baselines are scored for the accuracy table (EXPERIMENTS.md) but only
//! checked for soundness when their design promises it (`tcptrace` stores
//! real transmission times; `fridge` may alias across flows, so it is
//! reported, not asserted).

use crate::faults::{FaultConfig, FaultInjector, FaultLog};
use crate::oracle::{run_oracle, OracleConfig, OracleReport, ScoreCard};
use crate::spin_oracle::{run_spin_oracle, SpinReport};
use dart_baselines::{EngineRegistry, Judgement};
use dart_core::{run_monitor_slice, DartConfig, EngineStats, RttSample};
use dart_packet::PacketMeta;
use dart_sim::TraceTransform;
use dart_telemetry::histogram::{Histogram, HistogramSnapshot, BUCKETS};
use std::fmt;

/// What to run and how strictly to judge it.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Engine configuration shared by every run (baselines map the fields
    /// that mean something to them — see the registry).
    pub engine: DartConfig,
    /// Shard counts to exercise (1 = the serial engine; N > 1 resolves to
    /// the registry's `dart-sharded-N`).
    pub shards: Vec<usize>,
    /// Impossible samples tolerated per Dart run. Zero for 32-bit
    /// signatures; small and explicit for aliasing sweeps (W16).
    pub impossible_budget: u64,
    /// Also score the engines in `baseline_engines`.
    pub baselines: bool,
    /// Registry names of the non-Dart engines to score when `baselines` is
    /// set. Defaults to the report's historical rows.
    pub baseline_engines: Vec<String>,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            engine: DartConfig::default(),
            shards: vec![1, 4],
            impossible_budget: 0,
            baselines: true,
            baseline_engines: vec!["tcptrace".to_string(), "fridge".to_string()],
        }
    }
}

impl DiffConfig {
    /// The registry names this configuration runs, in report order. The
    /// serial Dart row carries its flow-state backend's registry name
    /// (`dart@sketch`/`dart@precision`) so reports read as the engine
    /// actually run; building that name re-applies `with_backend`, which
    /// is idempotent on an already-normalized config.
    pub fn engine_names(&self) -> Vec<String> {
        let serial = match self.engine.backend() {
            dart_core::Backend::Exact => "dart",
            dart_core::Backend::Sketch => "dart@sketch",
            dart_core::Backend::Precision => "dart@precision",
        };
        let mut names: Vec<String> = self
            .shards
            .iter()
            .map(|&s| {
                if s <= 1 {
                    serial.to_string()
                } else {
                    format!("dart-sharded-{s}")
                }
            })
            .collect();
        if self.baselines {
            names.extend(self.baseline_engines.iter().cloned());
        }
        names
    }
}

/// One implementation's verdict against the oracle.
#[derive(Clone, Debug)]
pub struct EngineOutcome {
    /// Registry name (`dart`, `dart-sharded-4`, `tcptrace`, `fridge`, …).
    pub name: String,
    /// Sample classification and precision/recall accounting.
    pub card: ScoreCard,
    /// Engine counters (baselines fill only the subset they track).
    pub stats: Option<EngineStats>,
    /// Bounded-loss budget derived from `stats` (only for engines whose
    /// judgement asserts bounded loss).
    pub loss_budget: Option<u64>,
    /// Soundness verdict; `None` means not asserted for this runner.
    pub sound: Option<bool>,
    /// Bounded-loss verdict; `None` means not asserted for this runner.
    pub loss_bounded: Option<bool>,
}

impl EngineOutcome {
    /// True unless an asserted invariant failed.
    pub fn ok(&self) -> bool {
        self.sound != Some(false) && self.loss_bounded != Some(false)
    }
}

/// The full differential verdict for one trace.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Size of the oracle's valid sample set.
    pub oracle_valid: u64,
    /// Per-implementation outcomes, Dart engines first.
    pub outcomes: Vec<EngineOutcome>,
    /// What the fault injector did, when one was used.
    pub faults: Option<FaultLog>,
}

impl DiffReport {
    /// True when every asserted invariant held.
    pub fn pass(&self) -> bool {
        self.outcomes.iter().all(EngineOutcome::ok)
    }

    /// The outcomes that violated an invariant.
    pub fn failures(&self) -> Vec<&EngineOutcome> {
        self.outcomes.iter().filter(|o| !o.ok()).collect()
    }

    /// Per-engine nonzero counters rendered through the shared
    /// `dart-telemetry` row formatter — the same path `dartmon stats`
    /// uses — instead of `EngineStats` debug output. One block per
    /// outcome that recorded counters; engines whose counters are all
    /// zero are skipped.
    pub fn counters_text(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            if let Some(stats) = &o.stats {
                let rows: Vec<(&str, u64)> = stats
                    .metric_rows()
                    .into_iter()
                    .filter(|(_, v)| *v > 0)
                    .collect();
                if rows.is_empty() {
                    continue;
                }
                out.push('\n');
                out.push_str(&dart_telemetry::render_rows(
                    &format!("counters[{}]", o.name),
                    &rows,
                ));
            }
        }
        out
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "oracle: {} valid samples", self.oracle_valid)?;
        if let Some(log) = &self.faults {
            writeln!(
                f,
                "faults: {} dropped, {} duplicated, {} reordered{}",
                log.dropped,
                log.duplicated,
                log.reordered,
                match log.truncated_to {
                    Some(n) => format!(", truncated to {n} packets"),
                    None => String::new(),
                }
            )?;
        }
        writeln!(
            f,
            "{:<16} {:>7} {:>7} {:>7} {:>7} {:>9} {:>8} {:>7} {:>7}",
            "runner", "exact", "ambig", "cross", "imposs", "precision", "recall", "sound", "loss"
        )?;
        for o in &self.outcomes {
            let verdict = |v: Option<bool>| match v {
                Some(true) => "ok",
                Some(false) => "FAIL",
                None => "-",
            };
            writeln!(
                f,
                "{:<16} {:>7} {:>7} {:>7} {:>7} {:>9.4} {:>8.4} {:>7} {:>7}",
                o.name,
                o.card.exact,
                o.card.ambiguous,
                o.card.cross_anchored,
                o.card.impossible,
                o.card.precision(),
                o.card.recall(),
                verdict(o.sound),
                verdict(o.loss_bounded),
            )?;
        }
        write!(f, "verdict: {}", if self.pass() { "PASS" } else { "FAIL" })
    }
}

/// The bounded-loss budget a run's own counters admit to: the closing ACK
/// of every missed valid sample is in exactly one of these buckets.
/// (`seq_wraparound` covers samples the oracle takes across a wrap that
/// Dart deliberately forgoes by resetting the range.)
pub fn loss_budget(stats: &EngineStats) -> u64 {
    stats.ack_advanced.saturating_sub(stats.pt_matched)
        + stats.ack_duplicate
        + stats.ack_stale
        + stats.ack_optimistic
        + stats.ack_no_flow
        + stats.seq_wraparound
}

/// Build the oracle-side RTT histogram: every valid sample's exact RTT,
/// binned through the same log2 buckets the `dart-hist` engine uses. This
/// is the reference distribution for the [`Judgement::Histogram`]
/// tolerance check.
pub fn oracle_histogram(oracle: &OracleReport) -> HistogramSnapshot {
    let h = Histogram::new();
    for s in &oracle.valid {
        h.observe(s.rtt);
    }
    h.snapshot()
}

/// Reconstruct a histogram snapshot from the weighted bucket rows a
/// [`Judgement::Histogram`] engine exports (`eack` = bucket index,
/// `weight` = count). Returns the snapshot plus any malformed rows
/// (bucket index out of range) — those are fabrications and fail
/// soundness outright.
pub fn snapshot_from_rows(samples: &[RttSample]) -> (HistogramSnapshot, Vec<RttSample>) {
    let mut buckets = vec![0u64; BUCKETS];
    let mut malformed = Vec::new();
    for s in samples {
        let i = s.eack.raw() as usize;
        if i >= BUCKETS {
            malformed.push(*s);
            continue;
        }
        buckets[i] += s.weight.as_f64().round() as u64;
    }
    let sum = 0; // bucket rows carry counts, not raw values
    (HistogramSnapshot { buckets, sum }, malformed)
}

/// True when `engine`'s p50 and p99 bucket indices are each within
/// `tol` log2 buckets of `oracle`'s — the distribution-level accuracy
/// claim a data-plane histogram makes (DESIGN.md §5g). Quantiles both
/// undefined (both histograms empty) count as agreement; one-sided
/// emptiness does not.
pub fn hist_within_tolerance(
    engine: &HistogramSnapshot,
    oracle: &HistogramSnapshot,
    tol: usize,
) -> bool {
    [0.5, 0.99].iter().all(
        |&q| match (engine.quantile_bucket(q), oracle.quantile_bucket(q)) {
            (Some(e), Some(o)) => e.abs_diff(o) <= tol,
            (None, None) => true,
            _ => false,
        },
    )
}

/// Score one sample stream and apply the invariants the engine's registry
/// [`Judgement`] promises. Everything engine-specific lives in the registry
/// metadata; this function is the same for every runner.
#[allow(clippy::too_many_arguments)]
fn judge_engine(
    name: String,
    judgement: Judgement,
    samples: &[RttSample],
    stats: EngineStats,
    oracle: &OracleReport,
    spin: &SpinReport,
    oracle_hist: &HistogramSnapshot,
    impossible_budget: u64,
) -> EngineOutcome {
    let (card, sound, loss_bounded, budget) = match judgement {
        // Dart matches exact left edges only, so a cross-anchored sample
        // is as much a bug as a fabricated one — and every miss must fit
        // the engine's own loss counters.
        Judgement::ExactAnchored => {
            let card = oracle.score(samples);
            let budget = loss_budget(&stats);
            let sound = Some(card.impossible + card.cross_anchored <= impossible_budget);
            let loss = Some(card.missed() <= budget);
            (card, sound, loss, Some(budget))
        }
        // Real transmission times stored, so fabricated samples are bugs;
        // no loss accounting, and cross-anchoring is legitimate
        // (cumulative ACK semantics).
        Judgement::Anchored => {
            let card = oracle.score(samples);
            let sound = Some(card.impossible == 0);
            (card, sound, None, None)
        }
        // Aliases flows or measures a different clock by design: scored
        // for the record, never asserted.
        Judgement::Reported => (oracle.score(samples), None, None, None),
        // Spin engines are judged by the spin-edge oracle instead of the
        // SEQ/ACK one: every emitted period must anchor both endpoints to
        // observed transitions. Loss is expected (rejection heuristics)
        // and not budgeted.
        Judgement::SpinEdge => {
            let card = spin.score(samples);
            let sound = Some(card.impossible <= impossible_budget);
            (card, sound, None, None)
        }
        // Histogram engines export bucket rows, not per-sample streams:
        // reconstruct the snapshot and require p50/p99 within ±1 log2
        // bucket of the oracle's exact-RTT histogram. With no oracle
        // distribution to compare against, only well-formedness (no
        // out-of-range buckets) is asserted.
        Judgement::Histogram => {
            let (snap, malformed) = snapshot_from_rows(samples);
            let binned = snap.count();
            let mut card = ScoreCard {
                exact: binned,
                impossible: malformed.len() as u64,
                impossible_samples: malformed,
                valid_total: oracle_hist.count(),
                ..ScoreCard::default()
            };
            card.valid_matched = card.exact.min(card.valid_total);
            let well_formed = card.impossible == 0;
            let sound = if oracle_hist.count() == 0 {
                Some(well_formed)
            } else {
                Some(well_formed && hist_within_tolerance(&snap, oracle_hist, 1))
            };
            (card, sound, None, None)
        }
    };
    EngineOutcome {
        name,
        sound,
        loss_bounded,
        card,
        stats: Some(stats),
        loss_budget: budget,
    }
}

/// Run every configured implementation over `packets` (already faulted or
/// clean) and judge them against the oracle.
///
/// Engines are resolved through the [`EngineRegistry`]: each outcome comes
/// from the same streaming path ([`run_monitor_slice`]) and is judged by the
/// [`Judgement`] its registry entry declares — there is no per-engine glue
/// here.
///
/// # Panics
///
/// Panics when a name in `cfg` is not in the registry; validate user input
/// with [`EngineRegistry::build`] before constructing a [`DiffConfig`].
pub fn run_diff(cfg: &DiffConfig, packets: &[PacketMeta]) -> DiffReport {
    let oracle = run_oracle(
        OracleConfig {
            syn_policy: cfg.engine.syn_policy,
            leg: cfg.engine.leg,
        },
        packets,
    );

    let spin = run_spin_oracle(packets);
    let oracle_hist = oracle_histogram(&oracle);

    let registry = EngineRegistry::standard();
    let mut outcomes = Vec::new();
    for name in cfg.engine_names() {
        let mut built = registry
            .build(&name, &cfg.engine)
            .unwrap_or_else(|e| panic!("diff config: {e}"));
        let (samples, stats) = run_monitor_slice(built.monitor.as_mut(), packets);
        outcomes.push(judge_engine(
            name,
            built.judgement,
            &samples,
            stats,
            &oracle,
            &spin,
            &oracle_hist,
            cfg.impossible_budget,
        ));
    }

    DiffReport {
        oracle_valid: oracle.valid_count() as u64,
        outcomes,
        faults: None,
    }
}

/// [`run_diff`] with telemetry attached: engines are built through
/// [`EngineRegistry::build_instrumented`], so Dart runs publish their
/// per-shard series into `metrics` and baselines get run-level mirrors,
/// and the runner narrates progress into `events` (one entry per engine
/// started and judged). The report is identical to [`run_diff`]'s.
#[cfg(feature = "telemetry")]
pub fn run_diff_instrumented(
    cfg: &DiffConfig,
    packets: &[PacketMeta],
    metrics: &dart_telemetry::MetricRegistry,
    events: &dart_telemetry::EventLog,
) -> DiffReport {
    let oracle = run_oracle(
        OracleConfig {
            syn_policy: cfg.engine.syn_policy,
            leg: cfg.engine.leg,
        },
        packets,
    );
    let spin = run_spin_oracle(packets);
    let oracle_hist = oracle_histogram(&oracle);
    let registry = EngineRegistry::standard();
    let mut outcomes = Vec::new();
    let packet_count = packets.len().to_string();
    for name in cfg.engine_names() {
        events.info(
            "diff",
            "engine start",
            &[("engine", &name), ("packets", &packet_count)],
        );
        let mut built = registry
            .build_instrumented(&name, &cfg.engine, metrics)
            .unwrap_or_else(|e| panic!("diff config: {e}"));
        let (samples, stats) = run_monitor_slice(built.monitor.as_mut(), packets);
        let outcome = judge_engine(
            name,
            built.judgement,
            &samples,
            stats,
            &oracle,
            &spin,
            &oracle_hist,
            cfg.impossible_budget,
        );
        events.info(
            "diff",
            "engine judged",
            &[
                ("engine", &outcome.name),
                ("exact", &outcome.card.exact.to_string()),
                ("impossible", &outcome.card.impossible.to_string()),
                ("ok", if outcome.ok() { "true" } else { "false" }),
            ],
        );
        outcomes.push(outcome);
    }
    DiffReport {
        oracle_valid: oracle.valid_count() as u64,
        outcomes,
        faults: None,
    }
}

/// Apply a seeded fault configuration to `packets`, then run the
/// differential suite on the faulted capture (which oracle and engines
/// share — see the module docs on capture-relative truth).
pub fn run_diff_faulted(
    cfg: &DiffConfig,
    fault: FaultConfig,
    packets: &[PacketMeta],
) -> DiffReport {
    let mut injector = FaultInjector::new(fault);
    let faulted = injector.apply(packets.to_vec());
    let mut report = run_diff(cfg, &faulted);
    report.faults = Some(injector.log());
    report
}

/// [`run_diff_faulted`] through the instrumented runner (see
/// [`run_diff_instrumented`]).
#[cfg(feature = "telemetry")]
pub fn run_diff_faulted_instrumented(
    cfg: &DiffConfig,
    fault: FaultConfig,
    packets: &[PacketMeta],
    metrics: &dart_telemetry::MetricRegistry,
    events: &dart_telemetry::EventLog,
) -> DiffReport {
    let mut injector = FaultInjector::new(fault);
    let faulted = injector.apply(packets.to_vec());
    let mut report = run_diff_instrumented(cfg, &faulted, metrics, events);
    report.faults = Some(injector.log());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_sim::scenario::{campus, CampusConfig};

    fn trace(seed: u64) -> Vec<PacketMeta> {
        campus(CampusConfig {
            connections: 60,
            duration: dart_packet::SECOND,
            seed,
            ..CampusConfig::default()
        })
        .packets
    }

    #[test]
    fn clean_trace_passes_both_invariants() {
        let report = run_diff(&DiffConfig::default(), &trace(1));
        assert!(report.pass(), "clean trace must pass:\n{report}");
        assert!(report.oracle_valid > 0, "campus trace has valid samples");
    }

    #[test]
    fn faulted_trace_still_passes() {
        let report = run_diff_faulted(&DiffConfig::default(), FaultConfig::stress(9), &trace(2));
        assert!(report.pass(), "faulted trace must pass:\n{report}");
        assert!(report.faults.unwrap().dropped > 0);
    }

    #[test]
    fn counters_render_through_shared_formatter() {
        let report = run_diff(&DiffConfig::default(), &trace(4));
        let text = report.counters_text();
        assert!(text.contains("counters[dart]"), "{text}");
        assert!(text.contains("packets"), "{text}");
        assert!(!text.contains("EngineStats"), "debug formatting leaked");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn instrumented_diff_matches_plain_and_narrates() {
        use dart_telemetry::{EventLog, MetricRegistry};
        let packets = trace(5);
        let plain = run_diff(&DiffConfig::default(), &packets);
        let metrics = MetricRegistry::new();
        let events = EventLog::new(64);
        let inst = run_diff_instrumented(&DiffConfig::default(), &packets, &metrics, &events);
        assert_eq!(
            inst.to_string(),
            plain.to_string(),
            "telemetry changed results"
        );
        assert!(inst.pass());
        let snap = metrics.scrape();
        assert!(
            snap.samples
                .iter()
                .any(|s| s.name == "dart_shard_packets_total"),
            "per-shard series registered"
        );
        assert!(
            snap.samples
                .iter()
                .any(|s| s.name == "dart_run_packets_total"),
            "baseline run-level series registered"
        );
        // One start + one judged entry per engine.
        assert_eq!(
            events.len_logged(),
            2 * DiffConfig::default().engine_names().len() as u64
        );
    }

    #[test]
    fn report_renders_every_runner() {
        let report = run_diff(&DiffConfig::default(), &trace(3));
        let text = report.to_string();
        for name in ["dart", "dart-sharded-4", "tcptrace", "fridge", "verdict"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }
}
