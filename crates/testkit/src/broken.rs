//! A deliberately unsound engine: the differential harness's canary.
//!
//! The skewed runner executes the real [`DartEngine`](dart_core::DartEngine)
//! and then adds a
//! constant to every emitted RTT. The resulting samples anchor to no
//! captured transmission, so the oracle classifies them as
//! [`Impossible`](crate::oracle::SampleClass::Impossible) — exactly the
//! violation the soundness invariant exists to catch. The differential
//! suite uses it to prove, from fixed seeds, that a broken engine is (a)
//! detected and (b) shrunk to a minimal reproducer; if this canary ever
//! passes, the harness itself has rotted.

use dart_core::{run_trace, DartConfig, EngineStats, RttSample};
use dart_packet::{Nanos, PacketMeta};

/// Run the real engine, then skew every sample's RTT by `offset`
/// nanoseconds — a stand-in for a timestamp-arithmetic bug.
pub fn run_trace_skewed(
    cfg: DartConfig,
    offset: Nanos,
    packets: &[PacketMeta],
) -> (Vec<RttSample>, EngineStats) {
    let (mut samples, stats) = run_trace(cfg, packets);
    for s in &mut samples {
        s.rtt += offset;
    }
    (samples, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{run_oracle, OracleConfig, SampleClass};
    use dart_sim::scenario::{campus, CampusConfig};

    #[test]
    fn skew_fabricates_every_sample() {
        let t = campus(CampusConfig {
            connections: 30,
            duration: dart_packet::SECOND,
            seed: 5,
            ..CampusConfig::default()
        });
        let oracle = run_oracle(OracleConfig::default(), &t.packets);
        let (samples, _) = run_trace_skewed(DartConfig::default(), 1, &t.packets);
        assert!(!samples.is_empty());
        assert!(samples
            .iter()
            .all(|s| oracle.classify(s) == SampleClass::Impossible));
    }
}
