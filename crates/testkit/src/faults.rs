//! Deterministic fault injection for monitor-captured traces and engine
//! configurations.
//!
//! Two orthogonal fault families:
//!
//! * **Trace faults** ([`FaultInjector`], a [`TraceTransform`]): seeded
//!   drop / duplicate / reorder / truncate applied to the captured packet
//!   sequence *before* any consumer sees it. Because the differential
//!   runner feeds the same faulted capture to the oracle and to every
//!   engine, trace faults stress matching logic without breaking the
//!   capture-relative ground truth (DESIGN.md §5b).
//! * **Config faults** ([`ConfigFault`], [`register_sweep`]): doctored
//!   [`DartConfig`]s that force the pressure paths — recirculation-budget
//!   exhaustion, starved tables, narrow signatures — plus register-size
//!   sweeps derived from `dart-switch` [`TargetProfile`] SRAM capacities.

use dart_core::{Backend, DartConfig};
use dart_packet::{Nanos, PacketMeta, SignatureWidth};
use dart_sim::{SimRng, TraceTransform};
use dart_switch::TargetProfile;

/// Probabilities and magnitudes for seeded trace faults.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// RNG seed; the whole transform is a pure function of `(trace, self)`.
    pub seed: u64,
    /// Per-packet probability the monitor misses the packet entirely.
    pub drop: f64,
    /// Per-packet probability a second copy is captured (in-network
    /// duplication or a mirroring artifact).
    pub duplicate: f64,
    /// Delay of the duplicate copy relative to the original.
    pub dup_delay: Nanos,
    /// Per-packet probability the packet is delayed past its neighbors
    /// (in-network reordering upstream of the monitor).
    pub reorder: f64,
    /// Maximum extra delay (exclusive) applied to a reordered packet.
    pub reorder_delay: Nanos,
    /// Probability the capture is cut off at a seeded random point
    /// (monitoring-window truncation).
    pub truncate: f64,
}

impl FaultConfig {
    /// No faults at all; `apply` is the identity.
    pub fn clean(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            dup_delay: 0,
            reorder: 0.0,
            reorder_delay: 0,
            truncate: 0.0,
        }
    }

    /// A moderately hostile capture: ~2% loss, 1% duplication, 2%
    /// reordering within a few hundred microseconds, occasional window
    /// truncation.
    pub fn stress(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop: 0.02,
            duplicate: 0.01,
            dup_delay: 200 * dart_packet::MICROSECOND,
            reorder: 0.02,
            reorder_delay: 500 * dart_packet::MICROSECOND,
            truncate: 0.25,
        }
    }
}

/// What the injector did to one trace, for reporting and budget sanity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Packets removed.
    pub dropped: u64,
    /// Extra copies inserted.
    pub duplicated: u64,
    /// Packets displaced in time.
    pub reordered: u64,
    /// New trace length when window truncation fired.
    pub truncated_to: Option<usize>,
}

/// Seeded fault injector; implements [`TraceTransform`] so it plugs into
/// `dart_sim::load_native_with` as well as the in-memory differential
/// runner.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    log: FaultLog,
}

impl FaultInjector {
    /// Build an injector from a fault configuration.
    pub fn new(cfg: FaultConfig) -> FaultInjector {
        FaultInjector {
            cfg,
            log: FaultLog::default(),
        }
    }

    /// What the most recent [`TraceTransform::apply`] call did.
    pub fn log(&self) -> FaultLog {
        self.log
    }
}

impl TraceTransform for FaultInjector {
    fn apply(&mut self, mut packets: Vec<PacketMeta>) -> Vec<PacketMeta> {
        let cfg = self.cfg;
        let mut rng = SimRng::new(cfg.seed);
        let mut log = FaultLog::default();

        if packets.len() > 1 && rng.chance(cfg.truncate) {
            let keep = rng.range(1, packets.len() as u64) as usize;
            packets.truncate(keep);
            log.truncated_to = Some(keep);
        }

        let mut out: Vec<PacketMeta> = Vec::with_capacity(packets.len());
        for pkt in packets {
            if rng.chance(cfg.drop) {
                log.dropped += 1;
                continue;
            }
            let mut p = pkt;
            if cfg.reorder_delay > 0 && rng.chance(cfg.reorder) {
                p.ts += rng.range(1, cfg.reorder_delay);
                log.reordered += 1;
            }
            out.push(p);
            if rng.chance(cfg.duplicate) {
                let mut d = p;
                d.ts += cfg.dup_delay.max(1);
                out.push(d);
                log.duplicated += 1;
            }
        }
        // Restore capture order: a monitor timestamps packets as they
        // arrive, so its capture is time-sorted by construction. The sort
        // is stable, keeping equal-timestamp packets deterministic.
        out.sort_by_key(|p| p.ts);
        self.log = log;
        out
    }
}

/// Doctored engine configurations that force specific pressure paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigFault {
    /// Recirculation budget zero: every PT eviction loses its record
    /// unless the victim cache saves it.
    RecircExhaustion,
    /// Tables starved to a handful of slots: constant eviction churn.
    TinyTables,
    /// 16-bit flow signatures: aliasing becomes likely, exercising the
    /// signature-collision paths.
    NarrowSignature,
}

/// Apply a [`ConfigFault`] to a base configuration.
pub fn apply_config_fault(base: DartConfig, fault: ConfigFault) -> DartConfig {
    match fault {
        ConfigFault::RecircExhaustion => base.with_max_recirc(0),
        ConfigFault::TinyTables => base.with_rt(64).with_pt(32, 1),
        ConfigFault::NarrowSignature => {
            let mut cfg = base;
            cfg.sig_width = SignatureWidth::W16;
            cfg
        }
    }
}

/// Bits of one Packet Tracker record in the hardware layout: a 32-bit
/// flow signature, 32-bit eACK, and 48-bit timestamp (paper §4's register
/// triple).
pub const PT_RECORD_BITS: u64 = 32 + 32 + 48;

/// Derive a register-size sweep from a switch target profile: for each
/// fraction of the profile's SRAM notionally granted to the Packet
/// Tracker, size the PT to the largest power of two that fits (and the RT
/// to 8× that, mirroring the default config's RT:PT ratio).
pub fn register_sweep(profile: &TargetProfile, fractions: &[f64]) -> Vec<DartConfig> {
    backend_sweep(profile, fractions, Backend::Exact)
}

/// Bits of one *sketch* Packet Tracker cell: a 32-bit fingerprint plus a
/// 48-bit timestamp. The eACK is folded into the fingerprint instead of
/// stored, so a sketch cell costs 80/112 ≈ 0.71× an exact record — the
/// memory side of the accuracy-vs-memory frontier.
pub const PT_SKETCH_CELL_BITS: u64 = 32 + 48;

/// [`register_sweep`] generalised over flow-state backends: the same SRAM
/// fractions, but each backend's own cell cost decides how many slots the
/// budget buys (sketch cells are smaller, so an equal budget holds more of
/// them), and every config is normalised through
/// [`DartConfig::with_backend`]. Configs at the same index across backends
/// occupy the *same* SRAM budget, which is what makes frontier points
/// comparable.
pub fn backend_sweep(
    profile: &TargetProfile,
    fractions: &[f64],
    backend: Backend,
) -> Vec<DartConfig> {
    let cell_bits = match backend {
        Backend::Sketch => PT_SKETCH_CELL_BITS,
        Backend::Exact | Backend::Precision => PT_RECORD_BITS,
    };
    fractions
        .iter()
        .map(|&frac| {
            let budget = (profile.sram_bits as f64 * frac) as u64;
            let raw_slots = (budget / cell_bits).max(2);
            let pt_slots = 1usize << (63 - raw_slots.leading_zeros());
            DartConfig::default()
                .with_pt(pt_slots, 1)
                .with_rt(pt_slots.saturating_mul(8))
                .with_backend(backend)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_core::RtMode;
    use dart_sim::scenario::{campus, CampusConfig};

    fn trace() -> Vec<PacketMeta> {
        campus(CampusConfig {
            connections: 40,
            duration: dart_packet::SECOND,
            seed: 11,
            ..CampusConfig::default()
        })
        .packets
    }

    #[test]
    fn clean_config_is_identity() {
        let t = trace();
        let mut inj = FaultInjector::new(FaultConfig::clean(1));
        let out = inj.apply(t.clone());
        assert_eq!(out, t);
        assert_eq!(inj.log(), FaultLog::default());
    }

    #[test]
    fn same_seed_same_faults() {
        let t = trace();
        let mut a = FaultInjector::new(FaultConfig::stress(42));
        let mut b = FaultInjector::new(FaultConfig::stress(42));
        assert_eq!(a.apply(t.clone()), b.apply(t.clone()));
        assert_eq!(a.log(), b.log());
        let mut c = FaultInjector::new(FaultConfig::stress(43));
        assert_ne!(a.apply(t.clone()), c.apply(t));
    }

    #[test]
    fn faulted_capture_stays_time_sorted_and_log_adds_up() {
        let t = trace();
        let mut inj = FaultInjector::new(FaultConfig::stress(7));
        let out = inj.apply(t.clone());
        assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts));
        let log = inj.log();
        let base = log.truncated_to.unwrap_or(t.len()) as u64;
        assert_eq!(out.len() as u64, base - log.dropped + log.duplicated);
        assert!(log.dropped > 0 && log.duplicated > 0 && log.reordered > 0);
    }

    #[test]
    fn config_faults_hit_their_knobs() {
        let base = DartConfig::default();
        assert_eq!(
            apply_config_fault(base, ConfigFault::RecircExhaustion).max_recirc,
            0
        );
        let tiny = apply_config_fault(base, ConfigFault::TinyTables);
        assert_eq!(tiny.rt, RtMode::Constrained { slots: 64 });
        assert_eq!(
            apply_config_fault(base, ConfigFault::NarrowSignature).sig_width,
            SignatureWidth::W16
        );
    }

    #[test]
    fn backend_sweep_buys_more_sketch_slots_for_equal_sram() {
        let fracs = [0.01, 0.1];
        let exact = backend_sweep(&TargetProfile::tofino1(), &fracs, Backend::Exact);
        let sketch = backend_sweep(&TargetProfile::tofino1(), &fracs, Backend::Sketch);
        for (e, s) in exact.iter().zip(&sketch) {
            let e_slots = match e.pt {
                dart_core::PtMode::Constrained { slots, .. } => slots,
                other => panic!("exact sweep produced {other:?}"),
            };
            let s_slots = match s.pt {
                dart_core::PtMode::Sketch { slots, .. } => slots,
                other => panic!("sketch sweep produced {other:?}"),
            };
            // Equal budget, smaller cells: never fewer slots, and the
            // 112/80 ratio crosses a power of two at least somewhere.
            assert!(s_slots >= e_slots);
        }
        // Precision shares the exact geometry; only admission differs.
        let precision = backend_sweep(&TargetProfile::tofino1(), &fracs, Backend::Precision);
        for (e, p) in exact.iter().zip(&precision) {
            assert_eq!(e.pt, p.pt);
            assert_eq!(e.rt, p.rt);
            assert_ne!(p.admission, dart_core::AdmissionMode::All);
        }
    }

    #[test]
    fn register_sweep_scales_with_sram_budget() {
        let sweep = register_sweep(&TargetProfile::tofino1(), &[0.01, 0.1, 0.5]);
        assert_eq!(sweep.len(), 3);
        let slots: Vec<usize> = sweep
            .iter()
            .map(|c| match c.pt {
                dart_core::PtMode::Constrained { slots, .. } => slots,
                _ => panic!("sweep must be constrained"),
            })
            .collect();
        assert!(slots[0] < slots[1] && slots[1] < slots[2]);
        assert!(slots.iter().all(|s| s.is_power_of_two()));
        // 10% of Tofino 1 SRAM ≈ 12.6 Mb / 112 b ≈ 112k records → 2^16.
        assert_eq!(slots[1], 1 << 16);
    }
}
