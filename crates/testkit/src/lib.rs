//! # dart-testkit
//!
//! The differential-testing kit for the Dart reproduction: every RTT
//! engine in this workspace, run against an omniscient oracle over the
//! same (optionally fault-injected) capture, with failing traces shrunk to
//! minimal replayable reproducers.
//!
//! The pieces (see DESIGN.md §5b for the fidelity contract):
//!
//! * [`oracle`] — unbounded-memory ground truth: the exact valid sample
//!   set for a capture, and per-sample classification of engine output as
//!   exact / ambiguous / impossible;
//! * [`faults`] — seeded, deterministic trace faults (drop, duplicate,
//!   reorder, truncate) via the `dart_sim::TraceTransform` seam, plus
//!   doctored engine configs and `dart-switch`-derived register sweeps;
//! * [`diff`] — the differential runner checking **soundness** (no
//!   fabricated samples) and **bounded loss** (missed samples accounted
//!   for by `EngineStats` counters) across serial, sharded, and baseline
//!   implementations;
//! * [`chaos`] — seeded *runtime* faults (shard panic, worker stall, slow
//!   consumer) injected through the supervised `ShardedMonitor`'s packet
//!   hook, with oracle-backed soundness checks on the degraded output;
//! * [`spin_oracle`] — spin-edge ground truth for QUIC traffic the
//!   SEQ/ACK oracle cannot see: every emitted period must anchor both
//!   endpoints to observed spin transitions;
//! * [`scenarios`] — adversarial scenario suites (QUIC mixes, churn
//!   storms, interception, wireless tails) running the full differential
//!   matrix with the spin and histogram engines judged;
//! * [`daemon`] — the long-lived `dartmon serve` core: a supervised
//!   sharded engine on a live source with wall-clock epoch rotation,
//!   crash-consistent checkpointing, and the embedded observability
//!   server (`telemetry` feature);
//! * [`recovery`] — the kill–restart harness: seeded crash points
//!   (mid-block, mid-rotation, mid-checkpoint-write) driven through
//!   checkpoint/restore cycles and judged against the oracle — zero
//!   fabricated samples, loss bounded by the checkpoint interval;
//! * [`shrink`] — `ddmin` trace minimization writing reproducers under
//!   `tests/shrunk/`;
//! * [`broken`] — an intentionally unsound engine proving the harness
//!   catches what it claims to catch.
//!
//! ```
//! use dart_sim::scenario::{campus, CampusConfig};
//! use dart_testkit::{run_diff, DiffConfig};
//!
//! let trace = campus(CampusConfig {
//!     connections: 20,
//!     duration: dart_packet::SECOND,
//!     ..CampusConfig::default()
//! });
//! let report = run_diff(&DiffConfig::default(), &trace.packets);
//! assert!(report.pass());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod broken;
pub mod chaos;
#[cfg(feature = "telemetry")]
pub mod daemon;
pub mod diff;
pub mod faults;
pub mod oracle;
pub mod recovery;
pub mod scenarios;
pub mod shrink;
pub mod spin_oracle;

pub use broken::run_trace_skewed;
pub use chaos::{
    chaos_hook, quiet_chaos_panics, run_chaos, run_chaos_sweep, ChaosConfig, ChaosReport,
    RuntimeFault,
};
#[cfg(feature = "telemetry")]
pub use daemon::{Daemon, DaemonConfig, DaemonReport};
pub use diff::{
    hist_within_tolerance, loss_budget, oracle_histogram, run_diff, run_diff_faulted,
    snapshot_from_rows, DiffConfig, DiffReport, EngineOutcome,
};
#[cfg(feature = "telemetry")]
pub use diff::{run_diff_faulted_instrumented, run_diff_instrumented};
pub use faults::{
    apply_config_fault, backend_sweep, register_sweep, ConfigFault, FaultConfig, FaultInjector,
    FaultLog, PT_RECORD_BITS, PT_SKETCH_CELL_BITS,
};
pub use oracle::{run_oracle, OracleConfig, OracleReport, SampleClass, ScoreCard};
pub use recovery::{
    recovery_oracle, recovery_reference, recovery_trace, run_recovery, run_recovery_judged,
    run_recovery_matrix, CrashPoint, RecoveryConfig, RecoveryReport,
};
pub use scenarios::{
    run_scenario, run_scenario_matrix, scenario_artifact_dir, scenario_diff_config,
    write_scorecards, ScenarioConfig, ScenarioOutcome,
};
pub use shrink::{ddmin, shrink_and_save, shrunk_dir, write_artifact};
pub use spin_oracle::{run_spin_oracle, SpinClass, SpinReport};
