//! Spin-edge ground truth: an omniscient per-direction spin-bit tracker.
//!
//! The SEQ/ACK [`oracle`](crate::oracle) is blind to QUIC traffic by
//! construction (`is_seq`/`is_ack` are false for spin-marked packets), so
//! spin engines need their own notion of capture-relative truth. A spin
//! sample carries no sequence numbers — the *only* thing a sound spin
//! engine can claim is that both endpoints of its measured period are
//! **observed spin transitions** of that flow direction. This module
//! computes exactly that set.
//!
//! For every flow key (each direction of a QUIC flow is its own key, just
//! as the engine tracks them) the oracle replays the capture and records
//! the timestamp of every packet whose spin bit differs from the flow's
//! previous packet. An engine sample `(flow, rtt, ts)` is then classified:
//!
//! * [`Exact`](SpinClass::Exact) — `ts` and `ts − rtt` are *consecutive*
//!   observed edges of the flow: the cleanest period the capture supports.
//! * [`Spanning`](SpinClass::Spanning) — both endpoints are observed
//!   edges, but other edges lie between them. A direct-mapped engine emits
//!   these legitimately after an eviction erased the intermediate edge
//!   state; the period spans several half-round-trips, so it is reported
//!   but not asserted exact.
//! * [`Impossible`](SpinClass::Impossible) — at least one endpoint is not
//!   an observed transition of the flow: the measurement is fabricated.
//!   No spin engine may emit these at any table size (the `SpinEdge`
//!   judgement contract, DESIGN.md §5g).
//!
//! The fidelity contract is the same capture-relative one as the SEQ/ACK
//! oracle's (DESIGN.md §5b): the oracle and the engine read the *same*
//! (possibly faulted) capture, so edges eclipsed by drops are invisible to
//! both, and "fabricated" means *underivable from the captured sequence*.

use crate::oracle::ScoreCard;
use dart_core::RttSample;
use dart_packet::{FlowKey, Nanos, PacketMeta};
use std::collections::HashMap;

/// How the spin oracle classifies one engine-emitted sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpinClass {
    /// Both endpoints are observed edges and no edge lies between them.
    Exact,
    /// Both endpoints are observed edges with other edges in between
    /// (post-eviction re-sync territory; reported, not asserted).
    Spanning,
    /// An endpoint is not an observed spin transition: fabricated.
    Impossible,
}

/// The spin oracle's verdict on a capture: every observed edge, per flow
/// direction.
pub struct SpinReport {
    /// Observed edge timestamps per flow key, each list ascending in
    /// capture order.
    edges: HashMap<FlowKey, Vec<Nanos>>,
    /// Spin-marked packets seen (both directions).
    pub spin_packets: u64,
}

impl SpinReport {
    /// Total observed edges across all flow directions.
    pub fn edge_count(&self) -> u64 {
        self.edges.values().map(|v| v.len() as u64).sum()
    }

    /// Number of consecutive-edge periods the capture supports: the
    /// spin-side analogue of the SEQ/ACK oracle's valid set size.
    pub fn valid_count(&self) -> u64 {
        self.edges
            .values()
            .map(|v| v.len().saturating_sub(1) as u64)
            .sum()
    }

    /// The observed edges of one flow direction, ascending.
    pub fn edges_of(&self, flow: &FlowKey) -> &[Nanos] {
        self.edges.get(flow).map_or(&[], Vec::as_slice)
    }

    /// Classify one engine-emitted sample (see [`SpinClass`]).
    pub fn classify(&self, s: &RttSample) -> SpinClass {
        let Some(edges) = self.edges.get(&s.flow) else {
            return SpinClass::Impossible;
        };
        let Some(start_ts) = s.ts.checked_sub(s.rtt) else {
            return SpinClass::Impossible;
        };
        // Occurrence ranges via binary search: edges can share a timestamp
        // (distinct packets at the same capture tick), so compare ranges,
        // not single indices.
        let range = |t: Nanos| {
            let lo = edges.partition_point(|&e| e < t);
            let hi = edges.partition_point(|&e| e <= t);
            (lo, hi)
        };
        let (end_lo, end_hi) = range(s.ts);
        let (start_lo, start_hi) = range(start_ts);
        if end_lo == end_hi || start_lo == start_hi {
            return SpinClass::Impossible;
        }
        // Consecutive: some occurrence of the start edge immediately
        // precedes some occurrence of the end edge.
        if start_hi == end_lo {
            SpinClass::Exact
        } else {
            SpinClass::Spanning
        }
    }

    /// Score a sample stream into the shared [`ScoreCard`] shape:
    /// Exact → `exact`, Spanning → `ambiguous`, Impossible →
    /// `impossible` (with the samples kept for shrinking), and the
    /// valid/recall fields filled from [`SpinReport::valid_count`].
    pub fn score(&self, samples: &[RttSample]) -> ScoreCard {
        let mut card = ScoreCard::default();
        let mut matched: std::collections::HashSet<(FlowKey, Nanos, Nanos)> =
            std::collections::HashSet::new();
        for s in samples {
            match self.classify(s) {
                SpinClass::Exact => {
                    card.exact += 1;
                    matched.insert((s.flow, s.rtt, s.ts));
                }
                SpinClass::Spanning => card.ambiguous += 1,
                SpinClass::Impossible => {
                    card.impossible += 1;
                    card.impossible_samples.push(*s);
                }
            }
        }
        card.valid_total = self.valid_count();
        card.valid_matched = matched.len() as u64;
        card
    }
}

/// Replay `packets` and record every observed spin transition per flow
/// direction. Non-QUIC packets are ignored (they carry no spin signal).
pub fn run_spin_oracle(packets: &[PacketMeta]) -> SpinReport {
    let mut last_bit: HashMap<FlowKey, bool> = HashMap::new();
    let mut edges: HashMap<FlowKey, Vec<Nanos>> = HashMap::new();
    let mut spin_packets = 0u64;
    for pkt in packets {
        let Some(bit) = pkt.spin() else { continue };
        spin_packets += 1;
        match last_bit.insert(pkt.flow, bit) {
            Some(prev) if prev != bit => {
                edges.entry(pkt.flow).or_default().push(pkt.ts);
            }
            // First packet of the direction seeds the bit without an
            // edge — a transition needs a previous observation.
            _ => {}
        }
    }
    SpinReport {
        edges,
        spin_packets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{Direction, PacketBuilder, SeqNum, MILLISECOND};

    fn flow() -> FlowKey {
        FlowKey::from_raw(0x0a0b_0001, 41_000, 0x5db8_d901, 443)
    }

    fn spin_pkt(ts: Nanos, f: FlowKey, bit: bool) -> PacketMeta {
        PacketBuilder::new(f, ts)
            .dir(Direction::Outbound)
            .quic_spin(bit)
            .build()
    }

    fn sample(rtt: Nanos, ts: Nanos) -> RttSample {
        RttSample::new(flow(), SeqNum(0), rtt, ts)
    }

    #[test]
    fn edges_are_recorded_per_direction() {
        let f = flow();
        let rev = f.reverse();
        let pkts = vec![
            spin_pkt(0, f, false),
            spin_pkt(MILLISECOND, rev, false),
            spin_pkt(10 * MILLISECOND, f, true),   // edge on f
            spin_pkt(11 * MILLISECOND, rev, true), // edge on rev
            spin_pkt(20 * MILLISECOND, f, false),  // edge on f
        ];
        let rep = run_spin_oracle(&pkts);
        assert_eq!(rep.spin_packets, 5);
        assert_eq!(rep.edges_of(&f), &[10 * MILLISECOND, 20 * MILLISECOND]);
        assert_eq!(rep.edges_of(&rev), &[11 * MILLISECOND]);
        assert_eq!(rep.edge_count(), 3);
        assert_eq!(rep.valid_count(), 1, "only f has a consecutive pair");
    }

    #[test]
    fn consecutive_edges_classify_exact() {
        let f = flow();
        let pkts = vec![
            spin_pkt(0, f, false),
            spin_pkt(10 * MILLISECOND, f, true),
            spin_pkt(30 * MILLISECOND, f, false),
            spin_pkt(50 * MILLISECOND, f, true),
        ];
        let rep = run_spin_oracle(&pkts);
        // 10→30: consecutive.
        assert_eq!(
            rep.classify(&sample(20 * MILLISECOND, 30 * MILLISECOND)),
            SpinClass::Exact
        );
        // 10→50: spans the 30 ms edge.
        assert_eq!(
            rep.classify(&sample(40 * MILLISECOND, 50 * MILLISECOND)),
            SpinClass::Spanning
        );
        // 30 ms end edge but a start nobody observed.
        assert_eq!(
            rep.classify(&sample(7 * MILLISECOND, 30 * MILLISECOND)),
            SpinClass::Impossible
        );
        // rtt larger than ts underflows: fabricated by definition.
        assert_eq!(
            rep.classify(&sample(u64::MAX, 30 * MILLISECOND)),
            SpinClass::Impossible
        );
        // Unknown flow.
        let stranger = RttSample::new(
            FlowKey::from_raw(1, 2, 3, 4),
            SeqNum(0),
            20 * MILLISECOND,
            30 * MILLISECOND,
        );
        assert_eq!(rep.classify(&stranger), SpinClass::Impossible);
    }

    #[test]
    fn score_maps_into_the_shared_card() {
        let f = flow();
        let pkts = vec![
            spin_pkt(0, f, false),
            spin_pkt(10 * MILLISECOND, f, true),
            spin_pkt(30 * MILLISECOND, f, false),
            spin_pkt(50 * MILLISECOND, f, true),
        ];
        let rep = run_spin_oracle(&pkts);
        let card = rep.score(&[
            sample(20 * MILLISECOND, 30 * MILLISECOND), // exact
            sample(40 * MILLISECOND, 50 * MILLISECOND), // spanning
            sample(123, 30 * MILLISECOND),              // impossible
        ]);
        assert_eq!(card.exact, 1);
        assert_eq!(card.ambiguous, 1);
        assert_eq!(card.impossible, 1);
        assert_eq!(card.impossible_samples.len(), 1);
        assert_eq!(card.valid_total, 2);
        assert_eq!(card.valid_matched, 1);
    }

    #[test]
    fn spin_engine_matches_oracle_on_generated_flows() {
        // End-to-end: the real generator, the real engine, zero
        // fabrications, and every emitted sample Exact on a clean trace.
        use dart_baselines::{SpinConfig, SpinMonitor};
        use dart_core::run_monitor_slice;
        use dart_sim::spin::{spin_flow_meta, SpinFlowConfig};
        let pkts = spin_flow_meta(SpinFlowConfig {
            seed: 7,
            ..SpinFlowConfig::default()
        });
        let rep = run_spin_oracle(&pkts);
        assert!(rep.edge_count() > 2, "generator produced edges");
        let mut eng = SpinMonitor::new(SpinConfig::default());
        let (samples, _) = run_monitor_slice(&mut eng, &pkts);
        assert!(!samples.is_empty(), "engine produced samples");
        let card = rep.score(&samples);
        assert_eq!(
            card.impossible, 0,
            "fabricated: {:?}",
            card.impossible_samples
        );
        assert_eq!(card.ambiguous, 0, "clean single-flow trace: all exact");
    }

    #[test]
    fn tcp_only_traces_have_no_spin_truth() {
        let pkts = vec![PacketBuilder::new(flow(), 0)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build()];
        let rep = run_spin_oracle(&pkts);
        assert_eq!(rep.spin_packets, 0);
        assert_eq!(rep.edge_count(), 0);
        assert_eq!(rep.valid_count(), 0);
    }
}
