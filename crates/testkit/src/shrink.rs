//! Failing-trace shrinking: bisect a packet sequence to a minimal
//! reproducer and persist it as a replayable artifact.
//!
//! The shrinker is classic delta debugging (`ddmin`): given a trace on
//! which some predicate fails (e.g. "the engine emits an impossible
//! sample"), it removes ever-finer chunks of packets, keeping any
//! reduction that still fails, until the failure is 1-minimal — removing
//! any single remaining packet makes it pass. Predicates must be
//! deterministic (fixed seeds everywhere), which the whole testkit is
//! built around; a flaky predicate would shrink toward noise.
//!
//! Artifacts land under `tests/shrunk/` at the repository root in the
//! native trace format, replayable with `dart_sim::load_native` or
//! `dartmon diff --trace`.

use dart_packet::{trace, PacketMeta};
use std::path::{Path, PathBuf};

/// Minimize `packets` with respect to a failing predicate.
///
/// `fails` must return `true` on the full input (asserted) and must be
/// deterministic. The result is 1-minimal: `fails` still returns `true` on
/// it, and dropping any single packet makes it return `false`.
pub fn ddmin(
    packets: &[PacketMeta],
    fails: &mut dyn FnMut(&[PacketMeta]) -> bool,
) -> Vec<PacketMeta> {
    assert!(fails(packets), "ddmin needs a failing input to start from");
    let mut current = packets.to_vec();
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        for i in 0..n {
            let lo = (i * chunk).min(current.len());
            let hi = ((i + 1) * chunk).min(current.len());
            if lo >= hi {
                continue;
            }
            let complement: Vec<PacketMeta> = current[..lo]
                .iter()
                .chain(&current[hi..])
                .copied()
                .collect();
            if !complement.is_empty() && fails(&complement) {
                current = complement;
                reduced = true;
                break;
            }
        }
        if reduced {
            n = n.saturating_sub(1).max(2);
        } else {
            if n >= current.len() {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    current
}

/// Repository-root directory where shrunk reproducers are written
/// (`tests/shrunk/`; CI uploads it when the differential suite fails).
pub fn shrunk_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/shrunk")
}

/// Persist a reproducer: `<name>.trace` (native format, replayable) plus
/// `<name>.txt` (one human-readable line per packet). Returns the trace
/// path.
pub fn write_artifact(name: &str, packets: &[PacketMeta]) -> std::io::Result<PathBuf> {
    let dir = shrunk_dir();
    std::fs::create_dir_all(&dir)?;
    let trace_path = dir.join(format!("{name}.trace"));
    std::fs::write(&trace_path, trace::to_bytes(packets))?;
    let listing: String = packets.iter().map(|p| format!("{p}\n")).collect();
    std::fs::write(dir.join(format!("{name}.txt")), listing)?;
    Ok(trace_path)
}

/// Shrink a failing trace and persist the reproducer in one step. Returns
/// the minimal packets and the artifact path.
pub fn shrink_and_save(
    name: &str,
    packets: &[PacketMeta],
    fails: &mut dyn FnMut(&[PacketMeta]) -> bool,
) -> std::io::Result<(Vec<PacketMeta>, PathBuf)> {
    let minimal = ddmin(packets, fails);
    let path = write_artifact(name, &minimal)?;
    Ok((minimal, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{Direction, FlowKey, PacketBuilder};

    fn pkt(i: u32) -> PacketMeta {
        PacketBuilder::new(
            FlowKey::from_raw(0x0a000001, 40000 + (i % 7) as u16, 0x5db8d822, 443),
            i as u64 * 1_000,
        )
        .seq(i * 100)
        .payload(100)
        .dir(Direction::Outbound)
        .build()
    }

    #[test]
    fn ddmin_finds_the_single_culprit() {
        // Failure = "packet with seq 4200 present".
        let trace: Vec<PacketMeta> = (0..100).map(pkt).collect();
        let needle = pkt(42);
        let mut fails = |t: &[PacketMeta]| t.contains(&needle);
        let minimal = ddmin(&trace, &mut fails);
        assert_eq!(minimal, vec![needle]);
    }

    #[test]
    fn ddmin_keeps_interacting_pairs() {
        // Failure needs BOTH packet 10 and packet 90: 1-minimality must
        // stop at the pair, not a single packet.
        let trace: Vec<PacketMeta> = (0..100).map(pkt).collect();
        let (a, b) = (pkt(10), pkt(90));
        let mut fails = |t: &[PacketMeta]| t.contains(&a) && t.contains(&b);
        let minimal = ddmin(&trace, &mut fails);
        assert_eq!(minimal, vec![a, b]);
    }

    #[test]
    fn ddmin_is_deterministic() {
        let trace: Vec<PacketMeta> = (0..64).map(pkt).collect();
        let needle = pkt(7);
        let mut f1 = |t: &[PacketMeta]| t.contains(&needle);
        let mut f2 = |t: &[PacketMeta]| t.contains(&needle);
        assert_eq!(ddmin(&trace, &mut f1), ddmin(&trace, &mut f2));
    }

    #[test]
    fn artifact_round_trips_through_native_format() {
        let minimal: Vec<PacketMeta> = (0..3).map(pkt).collect();
        let path = write_artifact("testkit-selftest", &minimal).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let back = dart_sim::load_native(&bytes[..]).unwrap();
        assert_eq!(back, minimal);
        // Self-test artifacts are disposable; leave the directory clean.
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("txt"));
    }
}
