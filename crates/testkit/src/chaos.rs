//! Chaos harness: seeded *runtime* fault injection for the supervised
//! sharded engine.
//!
//! PR 2's [`faults`](crate::faults) module perturbs the **trace** — what
//! the monitor sees. This module perturbs the **runtime** — what the
//! monitor's own workers do — through the
//! [`dart_core::PacketHook`] seam the supervised
//! [`ShardedMonitor`] exposes: a seeded hook makes one worker panic at a
//! chosen packet, hang long enough to trip the feeder watchdog, or consume
//! slowly enough to exercise bounded-channel backpressure. Everything is a
//! pure function of the [`ChaosConfig`] (seed included), so a failing run
//! is replayable from its config alone.
//!
//! The harness then closes the loop the ISSUE asks for: after the degraded
//! run it checks, against the same oracle the differential suite uses, that
//!
//! * the process never aborted (the run returned at all),
//! * the runtime's books balance (`fed == packets + monitor_miss`),
//! * every surviving RTT sample is **sound** (no impossible or
//!   cross-anchored matches), and
//! * every valid sample the degraded run missed is admitted to by its own
//!   counters plus the runtime's `monitor_miss` accounting.

use crate::diff::loss_budget;
use crate::oracle::{run_oracle, OracleConfig, ScoreCard};
use dart_core::{
    DartConfig, EngineError, FailurePolicy, PacketHook, ShardFailure, ShardedConfig,
    ShardedMonitor, ShardedRun,
};
use dart_packet::PacketMeta;
use dart_sim::SimRng;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// The runtime fault a chaos run injects through the worker-side hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeFault {
    /// The worker processing global packet `at` panics.
    PanicAt {
        /// Global trace index of the poisoned packet.
        at: u64,
    },
    /// The worker processing global packet `at` hangs for `hold_ms`
    /// milliseconds — with a shorter watchdog timeout, a stall.
    StallAt {
        /// Global trace index of the packet the worker hangs on.
        at: u64,
        /// How long the worker holds the pipeline, in milliseconds.
        hold_ms: u64,
    },
    /// Every `every`-th packet costs `delay_us` microseconds: a slow
    /// consumer that exercises bounded-channel backpressure without ever
    /// failing.
    SlowEvery {
        /// Packet-index stride between injected delays (≥ 1).
        every: u64,
        /// Injected processing delay, in microseconds.
        delay_us: u64,
    },
}

impl fmt::Display for RuntimeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeFault::PanicAt { at } => write!(f, "panic at packet {at}"),
            RuntimeFault::StallAt { at, hold_ms } => {
                write!(f, "stall at packet {at} ({hold_ms} ms)")
            }
            RuntimeFault::SlowEvery { every, delay_us } => {
                write!(f, "slow consumer ({delay_us} µs every {every} packets)")
            }
        }
    }
}

/// One chaos run, fully determined: engine config, sharding, supervision,
/// and the injected fault.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed recorded for provenance (the seeded constructors fold it into
    /// the fault position; the run itself is deterministic regardless).
    pub seed: u64,
    /// Per-shard engine configuration.
    pub engine: DartConfig,
    /// Shard count (≥ 1).
    pub shards: usize,
    /// Hand-off batch size — small, so failures land mid-run.
    pub batch_size: usize,
    /// Bounded-channel depth in batches — small, so backpressure is real.
    pub queue_depth: usize,
    /// How the supervised runtime reacts to the fault.
    pub policy: FailurePolicy,
    /// Feeder watchdog deadline (shorter than any injected stall).
    pub stall_timeout: Duration,
    /// The fault to inject.
    pub fault: RuntimeFault,
}

impl ChaosConfig {
    /// A seeded mid-run panic: the poisoned packet lands in the middle
    /// half of a `trace_len`-packet trace, at a position derived from
    /// `seed`.
    pub fn seeded_panic(seed: u64, trace_len: usize, policy: FailurePolicy) -> ChaosConfig {
        let mut rng = SimRng::new(seed);
        let len = trace_len.max(4) as u64;
        let at = rng.range(len / 4, 3 * len / 4);
        ChaosConfig {
            seed,
            engine: DartConfig::default(),
            shards: 4,
            batch_size: 8,
            queue_depth: 2,
            policy,
            stall_timeout: Duration::from_secs(5),
            fault: RuntimeFault::PanicAt { at },
        }
    }

    /// A seeded worker hang that outlives the watchdog: the feeder must
    /// abandon the shard instead of blocking forever.
    pub fn seeded_stall(seed: u64, trace_len: usize, policy: FailurePolicy) -> ChaosConfig {
        let mut rng = SimRng::new(seed);
        let len = trace_len.max(4) as u64;
        let at = rng.range(len / 8, len / 2);
        ChaosConfig {
            seed,
            engine: DartConfig::default(),
            shards: 2,
            batch_size: 1,
            queue_depth: 1,
            policy,
            stall_timeout: Duration::from_millis(20),
            fault: RuntimeFault::StallAt { at, hold_ms: 400 },
        }
    }

    /// A seeded slow consumer: no failure, just sustained backpressure on
    /// the bounded channels. The run must stay healthy and lossless.
    pub fn seeded_slow(seed: u64, policy: FailurePolicy) -> ChaosConfig {
        let mut rng = SimRng::new(seed);
        let every = rng.range(16, 64);
        ChaosConfig {
            seed,
            engine: DartConfig::default(),
            shards: 2,
            batch_size: 4,
            queue_depth: 1,
            policy,
            stall_timeout: Duration::from_secs(5),
            fault: RuntimeFault::SlowEvery {
                every,
                delay_us: 200,
            },
        }
    }

    fn sharded(&self) -> ShardedConfig {
        ShardedConfig::new(self.engine, self.shards)
            .with_batch_size(self.batch_size)
            .with_queue_depth(self.queue_depth)
            .with_policy(self.policy)
            .with_stall_timeout(self.stall_timeout)
    }
}

/// Build the worker-side hook that injects `fault`.
pub fn chaos_hook(fault: RuntimeFault) -> PacketHook {
    Arc::new(move |idx, shard| match fault {
        RuntimeFault::PanicAt { at } => {
            if idx == at {
                panic!("chaos: injected panic at packet {at} (shard {shard})");
            }
        }
        RuntimeFault::StallAt { at, hold_ms } => {
            if idx == at {
                std::thread::sleep(Duration::from_millis(hold_ms));
            }
        }
        RuntimeFault::SlowEvery { every, delay_us } => {
            if every > 0 && idx % every == 0 {
                std::thread::sleep(Duration::from_micros(delay_us));
            }
        }
    })
}

/// Verdict of one chaos run. Constructed only if the process survived —
/// the "no abort" acceptance criterion is the existence of the report.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The configuration that produced this report.
    pub config: ChaosConfig,
    /// The (possibly partial) merged run — under `FailFast` this is the
    /// partial output carried by the typed error.
    pub run: ShardedRun,
    /// The fatal failure when the policy surfaced one (`FailFast` only).
    pub fatal: Option<ShardFailure>,
    /// Packets offered to the monitor.
    pub fed: u64,
    /// Oracle classification of every surviving sample.
    pub card: ScoreCard,
    /// `fed == packets + monitor_miss` held on the degraded output.
    pub conservation_ok: bool,
    /// No surviving sample was impossible or cross-anchored.
    pub sound: bool,
    /// Every missed valid sample fits the engine's own loss counters plus
    /// the runtime's `monitor_miss`.
    pub loss_bounded: bool,
}

impl ChaosReport {
    /// True when every invariant held on the degraded output.
    pub fn pass(&self) -> bool {
        self.conservation_ok && self.sound && self.loss_bounded
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos[{}] {} · seed {}",
            self.config.policy, self.config.fault, self.config.seed
        )?;
        match &self.fatal {
            Some(failure) => writeln!(f, "  surfaced: Err(ShardFailed: {failure})")?,
            None => writeln!(
                f,
                "  surfaced: Ok ({} failure(s) recorded)",
                self.run.failures.len()
            )?,
        }
        writeln!(
            f,
            "  fed {} → processed {} + missed {} · samples {} · restarts {} · flows lost {}",
            self.fed,
            self.run.stats.packets,
            self.run.stats.monitor_miss,
            self.run.stats.samples,
            self.run.stats.shard_restarts,
            self.run.stats.flows_lost,
        )?;
        writeln!(
            f,
            "  oracle: {} exact, {} ambiguous, {} cross, {} impossible",
            self.card.exact, self.card.ambiguous, self.card.cross_anchored, self.card.impossible
        )?;
        let verdict = |ok: bool| if ok { "ok" } else { "FAIL" };
        write!(
            f,
            "  conservation {} · soundness {} · bounded loss {} → {}",
            verdict(self.conservation_ok),
            verdict(self.sound),
            verdict(self.loss_bounded),
            if self.pass() { "PASS" } else { "FAIL" }
        )
    }
}

/// Run `packets` through a supervised [`ShardedMonitor`] with the
/// configured fault injected, then verify the degradation invariants
/// against the oracle over the same (clean) trace.
pub fn run_chaos(cfg: &ChaosConfig, packets: &[PacketMeta]) -> ChaosReport {
    quiet_chaos_panics();
    let mut monitor = ShardedMonitor::with_packet_hook(cfg.sharded(), chaos_hook(cfg.fault));
    for pkt in packets {
        monitor.feed(pkt);
    }
    let (run, fatal) = match monitor.try_into_run() {
        Ok(run) => (run, None),
        Err(EngineError::ShardFailed { failure, partial }) => (*partial, Some(failure)),
        Err(EngineError::FedAfterFlush) => (ShardedRun::default(), None),
    };
    judge(cfg, packets, run, fatal)
}

/// Score a degraded (or healthy) run against the oracle and the
/// conservation/soundness/bounded-loss invariants.
fn judge(
    cfg: &ChaosConfig,
    packets: &[PacketMeta],
    run: ShardedRun,
    fatal: Option<ShardFailure>,
) -> ChaosReport {
    let oracle = run_oracle(
        OracleConfig {
            syn_policy: cfg.engine.syn_policy,
            leg: cfg.engine.leg,
        },
        packets,
    );
    let card = oracle.score(&run.samples);
    let fed = packets.len() as u64;
    let conservation_ok = run.stats.packets + run.stats.monitor_miss == fed;
    // Dart's exact-anchored judgement: a cross-anchored sample is as wrong
    // as a fabricated one (see the differential runner).
    let sound = card.impossible + card.cross_anchored == 0;
    // Every missed valid sample either had its closing ACK classified by a
    // live engine (the normal budget) or never reached one (`monitor_miss`;
    // each dropped packet can cost at most one sample).
    let loss_bounded = card.missed() <= loss_budget(&run.stats) + run.stats.monitor_miss;
    ChaosReport {
        config: *cfg,
        run,
        fatal,
        fed,
        card,
        conservation_ok,
        sound,
        loss_bounded,
    }
}

/// Run the same seeded fault under all three [`FailurePolicy`] modes — the
/// acceptance sweep `dartmon chaos` and the CI suite report.
pub fn run_chaos_sweep(
    seed: u64,
    packets: &[PacketMeta],
    fault: impl Fn(u64, usize, FailurePolicy) -> ChaosConfig,
) -> Vec<ChaosReport> {
    [
        FailurePolicy::FailFast,
        FailurePolicy::RestartShard,
        FailurePolicy::ShedLoad,
    ]
    .into_iter()
    .map(|policy| run_chaos(&fault(seed, packets.len(), policy), packets))
    .collect()
}

/// Install (once per process) a panic hook that swallows the backtrace
/// noise of *injected* panics — payloads starting with `"chaos: "` — and
/// delegates everything else to the previously installed hook, so real
/// failures still print.
pub fn quiet_chaos_panics() {
    use std::sync::Once;
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("chaos: "))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.starts_with("chaos: "));
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_sim::scenario::{campus, CampusConfig};

    fn trace(seed: u64) -> Vec<PacketMeta> {
        campus(CampusConfig {
            connections: 40,
            duration: dart_packet::SECOND,
            seed,
            ..CampusConfig::default()
        })
        .packets
    }

    #[test]
    fn seeded_panic_passes_under_every_policy() {
        let packets = trace(11);
        let reports = run_chaos_sweep(7, &packets, ChaosConfig::seeded_panic);
        assert_eq!(reports.len(), 3);
        for report in &reports {
            assert!(report.pass(), "{report}");
            assert!(
                report.fatal.is_some() || !report.run.failures.is_empty(),
                "the injected panic must be visible somewhere: {report}"
            );
        }
        // Policy contracts: FailFast surfaces the error; the others absorb.
        assert!(reports[0].fatal.is_some(), "{}", reports[0]);
        assert!(reports[1].fatal.is_none(), "{}", reports[1]);
        assert_eq!(reports[1].run.stats.shard_restarts, 1, "{}", reports[1]);
        assert!(reports[2].fatal.is_none(), "{}", reports[2]);
    }

    #[test]
    fn stall_is_detected_and_survived() {
        let packets = trace(12);
        let cfg = ChaosConfig::seeded_stall(3, packets.len(), FailurePolicy::ShedLoad);
        let report = run_chaos(&cfg, &packets);
        assert!(report.pass(), "{report}");
        assert!(
            report
                .run
                .failures
                .iter()
                .any(|f| matches!(f.kind, dart_core::FailureKind::Stalled { .. })),
            "watchdog must have fired: {report}"
        );
        assert!(report.run.stats.monitor_miss > 0, "{report}");
    }

    #[test]
    fn slow_consumer_backpressure_is_lossless() {
        let packets: Vec<PacketMeta> = trace(13).into_iter().take(2_000).collect();
        let cfg = ChaosConfig::seeded_slow(5, FailurePolicy::FailFast);
        let report = run_chaos(&cfg, &packets);
        assert!(report.pass(), "{report}");
        assert!(report.run.healthy(), "{report}");
        assert!(report.fatal.is_none(), "{report}");
        assert_eq!(report.run.stats.monitor_miss, 0, "{report}");
        assert_eq!(report.run.stats.packets, packets.len() as u64);
    }

    #[test]
    fn chaos_is_deterministic() {
        let packets = trace(14);
        let cfg = ChaosConfig::seeded_panic(21, packets.len(), FailurePolicy::RestartShard);
        let a = run_chaos(&cfg, &packets);
        let b = run_chaos(&cfg, &packets);
        assert_eq!(a.run.samples, b.run.samples);
        assert_eq!(a.run.stats, b.run.stats);
        assert_eq!(a.run.failures, b.run.failures);
    }
}
