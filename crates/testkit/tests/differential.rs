//! The pinned-seed differential suite: every engine vs. the oracle, clean
//! and faulted, plus the broken-engine canary and the shrinker acceptance
//! check. CI runs exactly this (`cargo test -p dart-testkit`) and uploads
//! `tests/shrunk/` when it fails.

use dart_core::DartConfig;
use dart_packet::PacketMeta;
use dart_sim::scenario::{campus, CampusConfig};
use dart_testkit::oracle::{run_oracle, OracleConfig, SampleClass};
use dart_testkit::{
    apply_config_fault, ddmin, register_sweep, run_diff, run_diff_faulted, run_trace_skewed,
    shrink_and_save, ConfigFault, DiffConfig, FaultConfig,
};

/// Pinned trace seeds; changing these invalidates the calibrated
/// expectations below, so treat them as part of the suite.
const TRACE_SEEDS: [u64; 3] = [101, 202, 303];
const FAULT_SEEDS: [u64; 2] = [7, 77];

fn trace(seed: u64) -> Vec<PacketMeta> {
    campus(CampusConfig {
        connections: 80,
        duration: 2 * dart_packet::SECOND,
        seed,
        ..CampusConfig::default()
    })
    .packets
}

/// Assert a differential report passed; on failure, shrink the trace to a
/// minimal reproducer, persist it under `tests/shrunk/`, and panic with
/// the artifact path (CI uploads the directory).
fn assert_diff_passes(name: &str, cfg: &DiffConfig, packets: &[PacketMeta]) {
    let report = run_diff(cfg, packets);
    if report.pass() {
        return;
    }
    let shrink_cfg = cfg.clone();
    let mut fails = move |t: &[PacketMeta]| !run_diff(&shrink_cfg, t).pass();
    let (minimal, path) = shrink_and_save(name, packets, &mut fails)
        .expect("writing the shrunk reproducer must succeed");
    panic!(
        "differential check '{name}' failed; {}-packet reproducer at {}\n{report}",
        minimal.len(),
        path.display()
    );
}

#[test]
fn clean_traces_pass_for_all_engines_and_shards() {
    for seed in TRACE_SEEDS {
        assert_diff_passes(
            &format!("clean-{seed}"),
            &DiffConfig::default(),
            &trace(seed),
        );
    }
}

#[test]
fn faulted_traces_pass_for_all_engines_and_shards() {
    for trace_seed in TRACE_SEEDS {
        let packets = trace(trace_seed);
        for fault_seed in FAULT_SEEDS {
            let report = run_diff_faulted(
                &DiffConfig::default(),
                FaultConfig::stress(fault_seed),
                &packets,
            );
            assert!(
                report.pass(),
                "trace seed {trace_seed}, fault seed {fault_seed}:\n{report}"
            );
        }
    }
}

#[test]
fn recirculation_exhaustion_stays_sound_with_admitted_loss() {
    let cfg = DiffConfig {
        engine: apply_config_fault(DartConfig::default(), ConfigFault::RecircExhaustion),
        baselines: false,
        ..DiffConfig::default()
    };
    for seed in TRACE_SEEDS {
        assert_diff_passes(&format!("no-recirc-{seed}"), &cfg, &trace(seed));
    }
}

#[test]
fn starved_tables_stay_sound_with_admitted_loss() {
    let cfg = DiffConfig {
        engine: apply_config_fault(DartConfig::default(), ConfigFault::TinyTables),
        baselines: false,
        ..DiffConfig::default()
    };
    for seed in TRACE_SEEDS {
        let packets = trace(seed);
        let report = run_diff(&cfg, &packets);
        assert!(report.pass(), "seed {seed}:\n{report}");
        // Tiny tables must actually hurt: the oracle out-measures the
        // engine, otherwise this config exercises nothing.
        let dart = &report.outcomes[0];
        assert!(
            dart.card.missed() > 0,
            "seed {seed}: starved tables should lose samples\n{report}"
        );
    }
}

#[test]
fn narrow_signatures_alias_within_an_explicit_budget() {
    // W16 signatures may alias flows; soundness gets a small explicit
    // budget instead of zero. The budget is part of the fidelity contract:
    // if aliasing exceeds it, the hash layout regressed.
    let cfg = DiffConfig {
        engine: apply_config_fault(DartConfig::default(), ConfigFault::NarrowSignature),
        impossible_budget: 10,
        baselines: false,
        ..DiffConfig::default()
    };
    for seed in TRACE_SEEDS {
        let report = run_diff(&cfg, &trace(seed));
        assert!(report.pass(), "seed {seed}:\n{report}");
    }
}

#[test]
fn register_sweep_configs_all_pass() {
    let packets = trace(TRACE_SEEDS[0]);
    for (i, engine) in register_sweep(&dart_switch::TargetProfile::tofino1(), &[0.02, 0.2])
        .into_iter()
        .enumerate()
    {
        let cfg = DiffConfig {
            engine,
            shards: vec![1],
            baselines: false,
            ..DiffConfig::default()
        };
        assert_diff_passes(&format!("sweep-{i}"), &cfg, &packets);
    }
}

#[test]
fn broken_engine_is_caught_and_shrunk_small() {
    let packets = trace(404);
    let oracle_cfg = OracleConfig::default();
    let skew = 3; // nanoseconds: a subtle off-by-a-tick bug

    let is_broken = |t: &[PacketMeta]| {
        let oracle = run_oracle(oracle_cfg, t);
        let (samples, _) = run_trace_skewed(DartConfig::default(), skew, t);
        samples
            .iter()
            .any(|s| oracle.classify(s) == SampleClass::Impossible)
    };

    // Detection: the doctored engine violates soundness on the full trace.
    assert!(is_broken(&packets), "canary engine must be detected");

    // Shrinking: the reproducer is tiny (acceptance bound: ≤ 200 packets;
    // in practice one data packet and one ACK).
    let mut fails = is_broken;
    let minimal = ddmin(&packets, &mut fails);
    assert!(
        minimal.len() <= 200,
        "reproducer too large: {} packets",
        minimal.len()
    );
    assert!(is_broken(&minimal), "reproducer must still fail");

    // The artifact replays byte-identically through the native format.
    let path = dart_testkit::write_artifact("broken-engine-canary", &minimal).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let back = dart_sim::load_native(&bytes[..]).unwrap();
    assert_eq!(back, minimal);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("txt"));
}

#[test]
fn sharded_and_serial_agree_on_faulted_traces() {
    // The differential runner compares each against the oracle; this pins
    // the stronger property that they agree with each other exactly.
    use std::collections::HashMap;
    for seed in FAULT_SEEDS {
        let mut injector = dart_testkit::FaultInjector::new(FaultConfig::stress(seed));
        use dart_sim::TraceTransform;
        let faulted = injector.apply(trace(TRACE_SEEDS[0]));
        let (serial, _) = dart_core::run_trace(DartConfig::default(), &faulted);
        let (sharded, _) = dart_core::run_trace_sharded(DartConfig::default(), 4, &faulted);
        let count = |samples: &[dart_core::RttSample]| {
            let mut m: HashMap<_, u64> = HashMap::new();
            for s in samples {
                *m.entry((s.flow, s.eack.raw(), s.rtt, s.ts)).or_default() += 1;
            }
            m
        };
        assert_eq!(count(&serial), count(&sharded), "fault seed {seed}");
    }
}
