//! Crash-consistency acceptance: the pinned seeds × crash-points ×
//! backends recovery matrix, plus the daemon-level checkpoint/restore
//! round trip.
//!
//! These live in their own test binary (not `daemon.rs`/`recovery.rs`
//! unit tests) because they are CPU-heavy: cargo runs test binaries one
//! at a time, so this load cannot starve the timing-sensitive daemon
//! tests in the library binary.

use dart_core::sharded::ShardedConfig;
use dart_core::{Backend, DartConfig};
use dart_testkit::{recovery_trace, run_recovery_matrix, CrashPoint, RecoveryConfig};

/// The ten pinned matrix seeds. Chosen once, never rotated: a failure at
/// one of these replays exactly (seed → trace, crash position, torn cut).
const SEEDS: [u64; 10] = [
    0xC4A5_0001,
    0xC4A5_0002,
    0xC4A5_0003,
    0xC4A5_0004,
    0xC4A5_0005,
    0xC4A5_0006,
    0xC4A5_0007,
    0xC4A5_0008,
    0xC4A5_0009,
    0xC4A5_000A,
];

const BACKENDS: [Backend; 3] = [Backend::Exact, Backend::Sketch, Backend::Precision];

#[test]
fn recovery_matrix_holds_for_every_seed_crash_point_and_backend() {
    let results = run_recovery_matrix(&SEEDS, &BACKENDS, &RecoveryConfig::default());
    assert_eq!(
        results.len(),
        SEEDS.len() * BACKENDS.len() * CrashPoint::ALL.len()
    );
    let failures: Vec<String> = results
        .iter()
        .filter(|(_, report)| !report.pass())
        .map(|(cfg, report)| {
            format!(
                "seed {:#x} / {} / {:?}: {report}",
                cfg.seed, cfg.crash, cfg.backend
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "{} of {} matrix cells failed:\n{}",
        failures.len(),
        results.len(),
        failures.join("\n")
    );
    // Every mid-checkpoint-write cell must have proven the torn frame is
    // rejected — a vacuous pass here would hide a checksum regression.
    for (cfg, report) in &results {
        if cfg.crash == CrashPoint::MidCheckpointWrite {
            assert!(
                report.torn_write_detected,
                "seed {:#x}: torn frame accepted",
                cfg.seed
            );
        }
        assert!(
            report.lost > 0,
            "seed {:#x}: crash did not lose anything",
            cfg.seed
        );
        assert_eq!(
            report.card.impossible + report.card.cross_anchored,
            0,
            "seed {:#x}: fabricated samples after restore",
            cfg.seed
        );
    }
}

#[test]
fn snapshot_restore_round_trips_byte_identical_state_on_exact() {
    // Acceptance: checkpoint → restore → immediate checkpoint must
    // reproduce the exact same payload on the exact backend (restore is
    // lossless, not merely consistent).
    use dart_core::sharded::ShardedMonitor;
    use dart_core::{RttMonitor, RttSample};

    let pkts = recovery_trace(SEEDS[0]);
    let cfg = ShardedConfig::new(DartConfig::default(), 2)
        .with_batch_size(64)
        .with_keep_samples(true);
    let mut monitor = ShardedMonitor::new(cfg);
    let mut sink: Vec<RttSample> = Vec::new();
    monitor.on_batch(&pkts[..pkts.len() / 2], &mut sink);
    let snap = monitor.checkpoint().expect("checkpoint");
    drop(monitor);

    let mut restored = ShardedMonitor::new(cfg);
    restored.restore(&snap).expect("restore");
    let again = restored.checkpoint().expect("re-checkpoint");
    assert_eq!(
        snap.payload(),
        again.payload(),
        "restore must round-trip byte-identical state"
    );
}

#[test]
fn checkpoint_pause_stays_under_ten_milliseconds_at_design_scale() {
    // Acceptance: the feed-loop pause for a checkpoint (serialize every
    // shard's tables + frame the snapshot) must stay under 10 ms at the
    // default design-scale table sizes (RT 2^20, PT 2^17) so a cadence of
    // seconds costs well under 1% of ingest time. The minimum over a few
    // runs is asserted: the design target is the pause itself, not
    // scheduler tail jitter on a loaded CI box.
    use dart_core::sharded::ShardedMonitor;
    use dart_core::{RttMonitor, RttSample};
    use std::time::{Duration, Instant};

    for backend in BACKENDS {
        let pkts = recovery_trace(SEEDS[1]);
        let cfg =
            ShardedConfig::new(DartConfig::default().with_backend(backend), 2).with_batch_size(256);
        let mut monitor = ShardedMonitor::new(cfg);
        let mut sink: Vec<RttSample> = Vec::new();
        monitor.on_batch(&pkts, &mut sink);
        let mut best = Duration::MAX;
        for _ in 0..5 {
            let start = Instant::now();
            let snap = monitor.checkpoint().expect("checkpoint");
            best = best.min(start.elapsed());
            assert!(!snap.payload().is_empty());
        }
        assert!(
            best < Duration::from_millis(10),
            "{backend:?}: checkpoint pause {best:?} over the 10 ms budget"
        );
    }
}

#[cfg(feature = "telemetry")]
mod daemon_restart {
    use dart_core::sharded::ShardedConfig;
    use dart_core::DartConfig;
    use dart_packet::{Direction, FlowKey, Nanos, PacketBuilder, PacketMeta};
    use dart_testkit::{Daemon, DaemonConfig};
    use std::time::Duration;

    fn exchanges(flows: u32, count: u32) -> Vec<PacketMeta> {
        let mut pkts = Vec::new();
        for e in 0..count {
            for fi in 0..flows {
                let flow =
                    FlowKey::from_raw(0x0a00_0100 + fi, 40_000 + fi as u16, 0x5db8_d822, 443);
                let t = (e as Nanos) * 10_000_000 + (fi as Nanos) * 1_000;
                pkts.push(
                    PacketBuilder::new(flow, t)
                        .seq(e * 1460)
                        .payload(1460)
                        .dir(Direction::Outbound)
                        .build(),
                );
                pkts.push(
                    PacketBuilder::new(flow.reverse(), t + 5_000_000)
                        .ack((e * 1460).wrapping_add(1460))
                        .dir(Direction::Inbound)
                        .build(),
                );
            }
        }
        pkts.sort_by_key(|p| p.ts);
        pkts
    }

    fn cfg() -> DaemonConfig {
        DaemonConfig {
            sharded: ShardedConfig::new(DartConfig::default(), 2).with_batch_size(64),
            block_pkts: 128,
            rotate_every: Duration::from_millis(20),
            retain: 50_000_000,
            ..DaemonConfig::default()
        }
    }

    #[test]
    fn checkpoint_then_restore_preserves_the_books_across_a_restart() {
        let dir = std::env::temp_dir().join(format!(
            "dart_daemon_ckpt_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let snap = dir.join("daemon.dsnp");
        let pkts = exchanges(10, 6);
        let total = pkts.len() as u64;
        let split = pkts.len() / 2;

        // First incarnation: drain the first half, leaving the shutdown
        // checkpoint behind.
        let daemon = Daemon::start(DaemonConfig {
            snapshot_path: Some(snap.clone()),
            checkpoint_every: Some(Duration::from_millis(5)),
            ..cfg()
        })
        .expect("bind");
        let mut source = dart_packet::SliceSource::new(&pkts[..split]);
        let first = daemon.run(&mut source).expect("first run");
        assert!(first.checkpoints >= 1, "no checkpoint written");
        assert!(!first.restored);
        assert!(snap.is_file(), "snapshot missing after shutdown");

        // Second incarnation: restore, then feed the rest. The books must
        // carry across the boundary — fed == packets + monitor_miss summed
        // over both lives.
        let daemon = Daemon::start(DaemonConfig {
            snapshot_path: Some(snap.clone()),
            restore_from: Some(snap.clone()),
            ..cfg()
        })
        .expect("bind after restore");
        let mut source = dart_packet::SliceSource::new(&pkts[split..]);
        let second = daemon.run(&mut source).expect("second run");
        assert!(second.restored);
        assert_eq!(
            second.stats.packets + second.stats.monitor_miss,
            total,
            "conservation across the restart: {:?}",
            second.stats
        );
        assert!(second.stats.samples >= first.stats.samples);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_refuses_a_mismatched_snapshot() {
        let dir = std::env::temp_dir().join(format!(
            "dart_daemon_badsnap_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let snap = dir.join("daemon.dsnp");
        let pkts = exchanges(6, 2);
        let daemon = Daemon::start(DaemonConfig {
            snapshot_path: Some(snap.clone()),
            ..cfg()
        })
        .expect("bind");
        let mut source = dart_packet::SliceSource::new(&pkts);
        daemon.run(&mut source).expect("run");
        // Same snapshot, different shard count: must fail loudly at start.
        let err = match Daemon::start(DaemonConfig {
            sharded: ShardedConfig::new(DartConfig::default(), 4).with_batch_size(64),
            restore_from: Some(snap.clone()),
            ..cfg()
        }) {
            Err(e) => e,
            Ok(_) => panic!("shard-count mismatch must not start"),
        };
        assert!(err.to_string().contains("restore"), "{err}");
        // A torn write (truncated file) must also fail loudly.
        let bytes = std::fs::read(&snap).expect("snapshot bytes");
        std::fs::write(&snap, &bytes[..bytes.len() / 2]).expect("truncate");
        let err = match Daemon::start(DaemonConfig {
            restore_from: Some(snap.clone()),
            ..cfg()
        }) {
            Err(e) => e,
            Ok(_) => panic!("torn snapshot must not start"),
        };
        assert!(err.to_string().contains("restore"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
