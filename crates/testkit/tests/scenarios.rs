//! The pinned-seed adversarial scenario suite: every scenario kind, clean
//! and stressed, with the spin and histogram engines judged alongside the
//! Dart rows. CI's `scenarios` job runs exactly this test binary and
//! uploads `target/tmp/scenarios/` (the scorecards) on every run plus
//! `tests/shrunk/` when a run fails.

use dart_packet::PacketMeta;
use dart_sim::adversarial::ScenarioKind;
use dart_sim::TraceTransform;
use dart_testkit::{
    run_diff, run_scenario, run_scenario_matrix, scenario_artifact_dir, scenario_diff_config,
    shrink_and_save, write_scorecards, FaultConfig, FaultInjector, ScenarioConfig,
};

/// Pinned suite seeds; the scorecard numbers in EXPERIMENTS.md come from
/// these, so treat them as part of the suite.
const SCALE: f64 = 0.2;
const SEED: u64 = 0xD1A7;
const FAULT_SEED: u64 = 0x0F17;

/// Assert a scenario passed; on failure, shrink the (faulted) capture to
/// a minimal reproducer under `tests/shrunk/` and panic with its path.
fn assert_scenario_passes(cfg: &ScenarioConfig) {
    let outcome = run_scenario(cfg);
    if outcome.pass() {
        return;
    }
    let mut capture: Vec<PacketMeta> = cfg.kind.generate(cfg.scale, cfg.seed).packets;
    if let Some(fault) = cfg.fault {
        capture = FaultInjector::new(fault).apply(capture);
    }
    let diff_cfg = scenario_diff_config();
    let mut fails = move |t: &[PacketMeta]| !run_diff(&diff_cfg, t).pass();
    let name = format!(
        "scenario-{}-{}",
        cfg.kind,
        if cfg.fault.is_some() {
            "stressed"
        } else {
            "clean"
        }
    );
    let (minimal, path) =
        shrink_and_save(&name, &capture, &mut fails).expect("persist shrunk reproducer");
    panic!(
        "scenario failed; shrunk to {} packets at {}:\n{outcome}",
        minimal.len(),
        path.display()
    );
}

#[test]
fn every_scenario_passes_clean() {
    for kind in ScenarioKind::ALL {
        assert_scenario_passes(&ScenarioConfig::clean(kind, SCALE, SEED));
    }
}

#[test]
fn every_scenario_passes_stressed() {
    for kind in ScenarioKind::ALL {
        assert_scenario_passes(&ScenarioConfig::stressed(kind, SCALE, SEED, FAULT_SEED));
    }
}

#[test]
fn spin_engine_is_exercised_and_sound_on_every_scenario() {
    for kind in ScenarioKind::ALL {
        let outcome = run_scenario(&ScenarioConfig::clean(kind, SCALE, SEED));
        assert!(outcome.spin_flows > 0, "{kind}: no spin traffic generated");
        assert!(outcome.spin_edges > 0, "{kind}: no spin edges observed");
        let spin = outcome
            .report
            .outcomes
            .iter()
            .find(|o| o.name == "spin")
            .unwrap_or_else(|| panic!("{kind}: spin row missing"));
        assert_eq!(spin.sound, Some(true), "{kind}:\n{outcome}");
        assert_eq!(spin.card.impossible, 0, "{kind}: fabricated periods");
        assert!(
            spin.card.exact + spin.card.ambiguous > 0,
            "{kind}: spin engine emitted nothing:\n{outcome}"
        );
    }
}

#[test]
fn histogram_engine_tracks_the_oracle_distribution() {
    for kind in ScenarioKind::ALL {
        let outcome = run_scenario(&ScenarioConfig::clean(kind, SCALE, SEED));
        let hist = outcome
            .report
            .outcomes
            .iter()
            .find(|o| o.name == "dart-hist")
            .unwrap_or_else(|| panic!("{kind}: dart-hist row missing"));
        assert_eq!(
            hist.sound,
            Some(true),
            "{kind}: p50/p99 drifted:\n{outcome}"
        );
        assert!(hist.card.exact > 0, "{kind}: nothing binned:\n{outcome}");
    }
}

#[test]
fn matrix_writes_scorecard_artifacts() {
    let outcomes = run_scenario_matrix(SCALE, SEED, Some(FAULT_SEED), dart_core::Backend::Exact);
    assert_eq!(outcomes.len(), 2 * ScenarioKind::ALL.len());
    let dir = scenario_artifact_dir();
    let summary = write_scorecards(&dir, &outcomes).expect("write scorecards");
    let text = std::fs::read_to_string(&summary).expect("read scorecard");
    for kind in ScenarioKind::ALL {
        assert!(text.contains(&kind.to_string()), "missing {kind}:\n{text}");
        assert!(
            dir.join(format!("{kind}.txt")).exists(),
            "per-scenario card missing for {kind}"
        );
        assert!(
            dir.join(format!("{kind}-stressed.txt")).exists(),
            "stressed card missing for {kind}"
        );
    }
    assert!(!text.contains("FAIL"), "scorecard has failures:\n{text}");
}

#[test]
fn stressed_runs_fault_the_capture_spin_truth_included() {
    let cfg = ScenarioConfig::stressed(ScenarioKind::WirelessTail, SCALE, SEED, FAULT_SEED);
    let outcome = run_scenario(&cfg);
    let faults = outcome.report.faults.as_ref().expect("fault log recorded");
    assert!(faults.dropped > 0, "stress layer did nothing: {faults:?}");
    // The spin oracle judged the faulted capture, not the clean one: the
    // fault layer re-applies deterministically from the config, so an
    // independent replay must observe the same edge set.
    let faulted = FaultInjector::new(FaultConfig::stress(FAULT_SEED))
        .apply(cfg.kind.generate(cfg.scale, cfg.seed).packets);
    assert_eq!(
        outcome.spin_edges,
        dart_testkit::run_spin_oracle(&faulted).edge_count(),
        "edge truth not derived from the faulted capture"
    );
    assert!(outcome.pass(), "{outcome}");
}
