//! Differential coverage of the flow-state backends.
//!
//! Three layers:
//!
//! * **Sweeps** — [`backend_sweep`] configs (equal SRAM budgets per index
//!   across backends) run through the full differential matrix with
//!   `dart@sketch` / `dart@precision` judged by their registry contracts;
//! * **Exact parity** — the refactored `dart` entry replayed through the
//!   registry, the direct engine, and the batched monitor path must be
//!   byte-identical (samples and counters), which is what the frontier
//!   benchmark's throughput comparison rests on;
//! * **Reproducer regeneration** — `UPDATE_SHRUNK=1` re-derives the
//!   committed ddmin-minimal sketch-divergence artifact.

use dart_baselines::EngineRegistry;
use dart_core::{run_monitor_slice, Backend, DartConfig, DartEngine, RttMonitor, RttSample};
use dart_packet::PacketMeta;
use dart_sim::scenario::{campus, CampusConfig};
use dart_switch::TargetProfile;
use dart_testkit::{backend_sweep, run_diff, shrink_and_save, DiffConfig};

fn trace(seed: u64, connections: usize) -> Vec<PacketMeta> {
    campus(CampusConfig {
        connections,
        duration: dart_packet::SECOND,
        seed,
        mean_loss: 0.02,
        reorder: 0.01,
        ..CampusConfig::default()
    })
    .packets
}

/// Every point of a reduced SRAM sweep, for every backend, must pass the
/// differential suite under its registry judgement: `dart@sketch` and
/// `dart@precision` are `ExactAnchored`, so fabrication, cross-anchoring,
/// and unaccounted loss all fail here — across table sizes, not just the
/// default operating point.
#[test]
fn backend_sweeps_pass_the_differential_matrix() {
    let pkts = trace(0xF007, 80);
    let fractions = [0.0005, 0.005];
    for backend in [Backend::Sketch, Backend::Precision] {
        for cfg in backend_sweep(&TargetProfile::tofino1(), &fractions, backend) {
            let name = match backend {
                Backend::Sketch => "dart@sketch",
                Backend::Precision => "dart@precision",
                Backend::Exact => unreachable!("sweep covers non-exact backends"),
            };
            let diff = DiffConfig {
                engine: cfg,
                shards: vec![1],
                impossible_budget: 0,
                baselines: true,
                baseline_engines: vec![name.to_string()],
            };
            let report = run_diff(&diff, &pkts);
            assert!(
                report.pass(),
                "{name} failed at {:?}/{:?}:\n{report}",
                cfg.rt,
                cfg.pt
            );
        }
    }
}

fn streaming_run(cfg: DartConfig, pkts: &[PacketMeta]) -> (Vec<RttSample>, dart_core::EngineStats) {
    let mut engine = DartEngine::new(cfg);
    let mut samples = Vec::new();
    for p in pkts {
        engine.process(p, &mut samples);
    }
    engine.flush();
    (samples, *engine.stats())
}

/// Exact parity across every construction path: the registry's `dart`
/// entry (built through the backend seam), a directly constructed engine,
/// and the batched `run_monitor_slice` driver must agree byte-for-byte on
/// samples and the full counter set.
#[test]
fn exact_backend_is_identical_across_construction_and_batch_paths() {
    let pkts = trace(0xE4AC, 70);
    for cfg in [
        DartConfig::default(),
        DartConfig::default().with_rt(1 << 10).with_pt(256, 2),
    ] {
        let (direct_samples, direct_stats) = streaming_run(cfg, &pkts);

        let registry = EngineRegistry::standard();
        let mut built = registry.build("dart", &cfg).expect("dart is registered");
        let (reg_samples, reg_stats) = run_monitor_slice(built.monitor.as_mut(), &pkts);
        assert_eq!(reg_samples, direct_samples, "registry path diverged");
        assert_eq!(reg_stats, direct_stats, "registry counters diverged");

        let mut engine = DartEngine::new(cfg);
        let (batch_samples, batch_stats) =
            run_monitor_slice(&mut engine as &mut dyn RttMonitor, &pkts);
        assert_eq!(batch_samples, direct_samples, "batch path diverged");
        assert_eq!(batch_stats, direct_stats, "batch counters diverged");
    }
}

/// An explicit `Backend::Exact` round-trip is the identity on results: a
/// config normalised through `with_backend(Exact)` replays identically to
/// the untouched config.
#[test]
fn with_backend_exact_is_an_identity_on_results() {
    let pkts = trace(0x1DE0, 50);
    let base = DartConfig::default().with_pt(128, 2);
    let (a, sa) = streaming_run(base, &pkts);
    let (b, sb) = streaming_run(base.with_backend(Backend::Exact), &pkts);
    assert_eq!(a, b);
    assert_eq!(sa, sb);
}

/// `fails` predicate for the shrinker: the sketch backend emits strictly
/// fewer samples than exact on starved 2-way tables — the overwrite
/// divergence the committed reproducer pins.
fn sketch_diverges(pkts: &[PacketMeta]) -> bool {
    let cfg_exact = DartConfig::default().with_rt(2).with_pt(2, 2);
    let (exact, _) = streaming_run(cfg_exact, pkts);
    let (sketch, stats) = streaming_run(cfg_exact.with_backend(Backend::Sketch), pkts);
    sketch.len() < exact.len() && stats.sketch_overwritten > 0
}

/// Regenerate the committed divergence reproducer (normally a no-op):
///
/// ```text
/// UPDATE_SHRUNK=1 cargo test -p dart-testkit --test backends
/// ```
///
/// then `git add -f tests/shrunk/backend-sketch-overwrite-minimal.*`.
/// The facade test `backend_soundness::shrunk_sketch_divergence_stays_sound`
/// replays the artifact on every run.
#[test]
fn regenerate_sketch_divergence_reproducer() {
    if std::env::var("UPDATE_SHRUNK").is_err() {
        return;
    }
    let full = (0..64u64)
        .map(|s| trace(0xD1CE ^ s, 12))
        .find(|t| sketch_diverges(t))
        .expect("no diverging seed found in the search budget");
    let (minimal, path) = shrink_and_save("backend-sketch-overwrite-minimal", &full, &mut |t| {
        sketch_diverges(t)
    })
    .expect("artifact write failed");
    assert!(sketch_diverges(&minimal));
    eprintln!("wrote {} ({} packets)", path.display(), minimal.len());
}
