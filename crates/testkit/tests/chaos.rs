//! The chaos suite: pinned seeds for CI (report written as a build
//! artifact) plus a property sweep over random seeds and policies.
//!
//! Acceptance criteria exercised here (ISSUE 5): an injected shard panic
//! mid-run returns `Err`/a degraded `ShardedRun` — never a process abort —
//! under all three `FailurePolicy` modes, with the degradation accounted
//! in `EngineStats` and every surviving RTT sample sound against the
//! oracle.

use dart_core::FailurePolicy;
use dart_packet::PacketMeta;
use dart_sim::scenario::{campus, CampusConfig};
use dart_testkit::{run_chaos, run_chaos_sweep, ChaosConfig};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Seeds the CI job runs every time; a regression on any of them is
/// reproducible from the uploaded report alone.
const PINNED_SEEDS: [u64; 4] = [1, 7, 21, 42];

fn trace(seed: u64) -> Vec<PacketMeta> {
    campus(CampusConfig {
        connections: 40,
        duration: dart_packet::SECOND,
        seed,
        ..CampusConfig::default()
    })
    .packets
}

/// Append the suite's reports to the build-artifact file CI uploads.
fn save_artifact(name: &str, text: &str) {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("chaos");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(name), text);
    }
}

#[test]
fn pinned_seed_panic_sweep_passes_every_policy() {
    let mut artifact = String::new();
    for seed in PINNED_SEEDS {
        let packets = trace(seed);
        let reports = run_chaos_sweep(seed, &packets, ChaosConfig::seeded_panic);
        assert_eq!(reports.len(), 3);
        for report in &reports {
            let _ = writeln!(artifact, "{report}\n");
            assert!(report.pass(), "seed {seed}:\n{report}");
            // The injected panic must be visible: surfaced as the typed
            // error (FailFast) or recorded on the degraded run.
            assert!(
                report.fatal.is_some() || !report.run.failures.is_empty(),
                "seed {seed}: injected panic vanished:\n{report}"
            );
        }
        let [failfast, restart, shed] = &reports[..] else {
            unreachable!("sweep is three policies");
        };
        assert!(
            failfast.fatal.is_some(),
            "FailFast surfaces Err:\n{failfast}"
        );
        assert!(
            failfast.run.stats.monitor_miss > 0,
            "FailFast stops feeding after the failure:\n{failfast}"
        );
        assert_eq!(
            restart.run.stats.shard_restarts, 1,
            "RestartShard respawns exactly once:\n{restart}"
        );
        assert!(restart.fatal.is_none());
        assert!(shed.fatal.is_none());
        assert!(
            shed.run.stats.samples > 0,
            "surviving shards keep measuring under ShedLoad:\n{shed}"
        );
    }
    save_artifact("pinned-panic.txt", &artifact);
}

#[test]
fn pinned_seed_stall_is_survived() {
    let mut artifact = String::new();
    for (seed, policy) in [
        (3u64, FailurePolicy::ShedLoad),
        (9, FailurePolicy::FailFast),
    ] {
        let packets = trace(seed);
        let cfg = ChaosConfig::seeded_stall(seed, packets.len(), policy);
        let report = run_chaos(&cfg, &packets);
        let _ = writeln!(artifact, "{report}\n");
        assert!(report.pass(), "{report}");
        assert!(
            report
                .run
                .failures
                .iter()
                .chain(report.fatal.iter())
                .any(|f| matches!(f.kind, dart_core::FailureKind::Stalled { .. })),
            "watchdog must have fired:\n{report}"
        );
    }
    save_artifact("pinned-stall.txt", &artifact);
}

#[test]
fn pinned_seed_backpressure_is_lossless() {
    let packets: Vec<PacketMeta> = trace(5).into_iter().take(2_000).collect();
    let report = run_chaos(
        &ChaosConfig::seeded_slow(5, FailurePolicy::FailFast),
        &packets,
    );
    assert!(report.pass(), "{report}");
    assert!(report.run.healthy(), "{report}");
    assert_eq!(report.run.stats.monitor_miss, 0, "{report}");
    save_artifact("pinned-slow.txt", &report.to_string());
}

/// Shared trace for the property sweep (building one campus trace per case
/// would dominate the runtime).
fn shared_trace() -> &'static [PacketMeta] {
    static TRACE: OnceLock<Vec<PacketMeta>> = OnceLock::new();
    TRACE.get_or_init(|| trace(77))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seed, any policy: a mid-run shard panic never aborts and the
    /// degraded output holds every invariant the harness checks
    /// (conservation, soundness, bounded loss).
    #[test]
    fn random_seed_panic_never_aborts(seed in any::<u64>(), policy_idx in 0usize..3) {
        let policy = [
            FailurePolicy::FailFast,
            FailurePolicy::RestartShard,
            FailurePolicy::ShedLoad,
        ][policy_idx];
        let packets = shared_trace();
        let cfg = ChaosConfig::seeded_panic(seed, packets.len(), policy);
        let report = run_chaos(&cfg, packets);
        prop_assert!(report.pass(), "{}", report);
        prop_assert!(
            report.fatal.is_some() || !report.run.failures.is_empty(),
            "injected panic vanished: {}", report
        );
    }
}
