//! Command-line front end for the exposition schema checkers — lets CI
//! validate the files `dartmon --metrics-out/--metrics-prom` wrote without
//! a dedicated binary crate:
//!
//! ```text
//! cargo run -p dart-telemetry --example check -- --prom m.prom --jsonl m.jsonl
//! ```
//!
//! Exits nonzero and prints every error if any document fails validation.

use dart_telemetry::{check_jsonl_series, check_prometheus, SchemaReport};
use std::process::ExitCode;

fn report(kind: &str, path: &str, rep: &SchemaReport) -> bool {
    if rep.ok() {
        println!(
            "{kind} {path}: ok ({} series, {} lines)",
            rep.series, rep.lines
        );
        true
    } else {
        eprintln!("{kind} {path}: {} error(s)", rep.errors.len());
        for e in &rep.errors {
            eprintln!("  {e}");
        }
        false
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ok = true;
    let mut checked = 0;
    let mut i = 0;
    while i < args.len() {
        let (kind, path) = match (args[i].as_str(), args.get(i + 1)) {
            ("--prom", Some(p)) | ("--jsonl", Some(p)) => (args[i].clone(), p.clone()),
            _ => {
                eprintln!("usage: check [--prom <file>] [--jsonl <file>] ...");
                return ExitCode::FAILURE;
            }
        };
        i += 2;
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("read {path}: {e}");
                ok = false;
                continue;
            }
        };
        let rep = if kind == "--prom" {
            check_prometheus(&text)
        } else {
            check_jsonl_series(&text)
        };
        ok &= report(&kind[2..], &path, &rep);
        checked += 1;
    }
    if checked == 0 {
        eprintln!("usage: check [--prom <file>] [--jsonl <file>] ...");
        return ExitCode::FAILURE;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
