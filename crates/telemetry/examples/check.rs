//! Command-line front end for the exposition schema checkers — lets CI
//! validate the files `dartmon --metrics-out/--metrics-prom` wrote without
//! a dedicated binary crate:
//!
//! ```text
//! cargo run -p dart-telemetry --example check -- \
//!     --prom m.prom --jsonl m.jsonl --require dart_supervisor_stalls_total
//! ```
//!
//! `--require <name>` (repeatable) asserts the named metric family appears
//! in at least one of the checked documents — the drift guard that keeps
//! newly added counters (e.g. the supervisor's stall/restart series) from
//! silently vanishing from the expositions.
//!
//! Exits nonzero and prints every error if any document fails validation.

use dart_telemetry::{check_jsonl_series, check_prometheus, check_required, SchemaReport};
use std::process::ExitCode;

const USAGE: &str = "usage: check [--prom <file>] [--jsonl <file>] [--require <series>] ...";

fn report(kind: &str, path: &str, rep: &SchemaReport) -> bool {
    if rep.ok() {
        println!(
            "{kind} {path}: ok ({} series, {} lines)",
            rep.series, rep.lines
        );
        true
    } else {
        eprintln!("{kind} {path}: {} error(s)", rep.errors.len());
        for e in &rep.errors {
            eprintln!("  {e}");
        }
        false
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ok = true;
    let mut checked = 0;
    let mut required: Vec<String> = Vec::new();
    let mut corpus = String::new();
    let mut i = 0;
    while i < args.len() {
        let (kind, value) = match (args[i].as_str(), args.get(i + 1)) {
            ("--prom", Some(p)) | ("--jsonl", Some(p)) | ("--require", Some(p)) => {
                (args[i].clone(), p.clone())
            }
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        };
        i += 2;
        if kind == "--require" {
            required.push(value);
            continue;
        }
        let text = match std::fs::read_to_string(&value) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("read {value}: {e}");
                ok = false;
                continue;
            }
        };
        let rep = if kind == "--prom" {
            check_prometheus(&text)
        } else {
            check_jsonl_series(&text)
        };
        ok &= report(&kind[2..], &value, &rep);
        checked += 1;
        corpus.push_str(&text);
        corpus.push('\n');
    }
    if checked == 0 {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    if !required.is_empty() {
        let names: Vec<&str> = required.iter().map(String::as_str).collect();
        let rep = check_required(&corpus, &names);
        ok &= report("require", &format!("{} series", names.len()), &rep);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
