//! Bounded structured event log.
//!
//! A fixed-capacity ring of structured events — level, component, message,
//! key/value fields — that instrumented code appends to and the CLI dumps
//! as JSONL. When the ring is full the oldest event is dropped and a drop
//! counter advances, so a chatty component can never grow memory without
//! bound or hide that it was chatty.

use crate::json::escape;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Event severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Development-time detail.
    Debug,
    /// Normal milestones (engine built, replay finished).
    Info,
    /// Degraded but continuing (oversubscribed shards, drops).
    Warn,
    /// Failed invariants.
    Error,
}

impl Level {
    /// Lower-case name used in the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// One logged event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Position in the log (1-based, counts dropped events too).
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// Emitting component (`engine`, `shard-3`, `recirc`, `diff`, ...).
    pub component: String,
    /// Human-readable message.
    pub message: String,
    /// Structured context fields, in insertion order.
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// One JSON object, no trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"seq\":{},\"level\":\"{}\",\"component\":\"{}\",\"message\":\"{}\"",
            self.seq,
            self.level.as_str(),
            escape(&self.component),
            escape(&self.message),
        );
        for (k, v) in &self.fields {
            let _ = write!(out, ",\"{}\":\"{}\"", escape(k), escape(v));
        }
        out.push('}');
        out
    }
}

struct Inner {
    ring: VecDeque<Event>,
    cap: usize,
    next_seq: u64,
    dropped: u64,
}

/// The bounded event log handle; clones share the same ring.
#[derive(Clone)]
pub struct EventLog {
    inner: Arc<Mutex<Inner>>,
}

impl EventLog {
    /// A log retaining at most `cap` events (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> EventLog {
        EventLog {
            inner: Arc::new(Mutex::new(Inner {
                ring: VecDeque::new(),
                cap: cap.max(1),
                next_seq: 0,
                dropped: 0,
            })),
        }
    }

    /// Append one event, evicting the oldest if the ring is full.
    pub fn log(&self, level: Level, component: &str, message: &str, fields: &[(&str, &str)]) {
        let mut inner = crate::lock(&self.inner);
        inner.next_seq += 1;
        let seq = inner.next_seq;
        if inner.ring.len() == inner.cap {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(Event {
            seq,
            level,
            component: component.to_string(),
            message: message.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    /// Convenience for [`Level::Info`].
    pub fn info(&self, component: &str, message: &str, fields: &[(&str, &str)]) {
        self.log(Level::Info, component, message, fields);
    }

    /// Convenience for [`Level::Warn`].
    pub fn warn(&self, component: &str, message: &str, fields: &[(&str, &str)]) {
        self.log(Level::Warn, component, message, fields);
    }

    /// Events currently retained, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let inner = crate::lock(&self.inner);
        inner.ring.iter().cloned().collect()
    }

    /// Events evicted by the ring bound so far.
    pub fn dropped(&self) -> u64 {
        crate::lock(&self.inner).dropped
    }

    /// Total events ever logged (retained + dropped).
    pub fn len_logged(&self) -> u64 {
        crate::lock(&self.inner).next_seq
    }

    /// The retained events as JSONL, one object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.snapshot() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn ring_bounds_and_counts_drops() {
        let log = EventLog::new(2);
        log.info("engine", "first", &[]);
        log.info("engine", "second", &[]);
        log.warn("engine", "third", &[("k", "v")]);
        let events = log.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "second");
        assert_eq!(events[1].seq, 3);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.len_logged(), 3);
    }

    #[test]
    fn jsonl_lines_parse() {
        let log = EventLog::new(8);
        log.log(
            Level::Error,
            "recirc",
            "queue \"full\"",
            &[("depth", "128"), ("shard", "2")],
        );
        let text = log.to_jsonl();
        let v = json::parse(text.trim()).expect("event line must parse");
        assert_eq!(v.get("level").unwrap().as_str(), Some("error"));
        assert_eq!(v.get("component").unwrap().as_str(), Some("recirc"));
        assert_eq!(v.get("message").unwrap().as_str(), Some("queue \"full\""));
        assert_eq!(v.get("depth").unwrap().as_str(), Some("128"));
    }

    #[test]
    fn levels_order() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Warn < Level::Error);
    }
}
