//! Counter and gauge handles: `Arc`-shared atomics.
//!
//! Handles are cheap to clone and safe to update from any thread; the
//! registry keeps one clone and scrapes it, instrumented code keeps
//! another and updates it. All ordering is `Relaxed` — metrics are
//! monotone observations, not synchronization points.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
///
/// Besides [`inc`](Counter::inc)/[`add`](Counter::add), a counter can be
/// [`store`](Counter::store)d to an absolute value: engines that already
/// keep their own `EngineStats` counters publish them by storing the
/// current total at sync points instead of double-counting on the hot
/// path. Stores must be monotone — the Prometheus contract is enforced by
/// the schema checker, not the handle.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Publish an externally accumulated total (must be monotone).
    #[inline]
    pub fn store(&self, total: u64) {
        self.v.store(total, Ordering::Relaxed);
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depths, occupancy).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    v: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Increase by `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrease by `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.v.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_shares() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        c.store(11);
        assert_eq!(c2.get(), 11);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(7);
        g.add(3);
        g.sub(12);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn counter_is_shared_across_threads() {
        let c = Counter::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
