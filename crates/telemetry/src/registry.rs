//! The metric registry: named counters, gauges, and histograms with label
//! sets, and windowed scrapes.
//!
//! Registration is get-or-create keyed on `(family name, label set)`, so
//! re-attaching telemetry to a rebuilt engine reuses the existing series
//! instead of shadowing it. A [`scrape`](MetricRegistry::scrape) walks
//! every entry, reads the atomics, and reports both the cumulative value
//! and the **delta since the previous scrape** — the cheap windowed view
//! the periodic JSONL snapshots are built from. Scraping never blocks
//! instrumented threads: they touch only their `Arc`'d atomics.

use crate::histogram::Histogram;
use crate::metric::{Counter, Gauge};
use crate::snapshot::{MetricSample, MetricValue, Snapshot};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// What a registered metric is, for exposition `# TYPE` lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter (name must end in `_total`).
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Log2 histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    handle: Handle,
    /// Counter total (or histogram count) at the previous scrape, for the
    /// delta-since-last-scrape window.
    last: u64,
}

#[derive(Default)]
struct Inner {
    entries: Vec<Entry>,
    index: HashMap<String, usize>,
    scrapes: u64,
}

/// The registry handle; clones share the same metric table.
#[derive(Clone, Default)]
pub struct MetricRegistry {
    inner: Arc<Mutex<Inner>>,
}

/// `true` for a legal Prometheus metric/label name.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn series_key(name: &str, labels: &[(String, String)]) -> String {
    let mut key = name.to_string();
    for (k, v) in labels {
        key.push('\u{1}');
        key.push_str(k);
        key.push('\u{2}');
        key.push_str(v);
    }
    key
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl MetricRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricRegistry {
        MetricRegistry::default()
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce() -> Handle,
    ) -> usize {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name {k:?}");
        }
        let labels = own_labels(labels);
        let key = series_key(name, &labels);
        let mut inner = crate::lock(&self.inner);
        if let Some(&i) = inner.index.get(&key) {
            return i;
        }
        let i = inner.entries.len();
        inner.entries.push(Entry {
            name: name.to_string(),
            labels,
            help: help.to_string(),
            handle: make(),
            last: 0,
        });
        inner.index.insert(key, i);
        i
    }

    /// Get or create a counter. Counter family names end in `_total` by
    /// convention; the registry enforces it so the schema checker can too.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        assert!(
            name.ends_with("_total"),
            "counter {name:?} must end in _total"
        );
        let i = self.register(name, labels, help, || Handle::Counter(Counter::new()));
        let inner = crate::lock(&self.inner);
        match &inner.entries[i].handle {
            Handle::Counter(c) => c.clone(),
            _ => panic!("{name:?} already registered with a different kind"),
        }
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        let i = self.register(name, labels, help, || Handle::Gauge(Gauge::new()));
        let inner = crate::lock(&self.inner);
        match &inner.entries[i].handle {
            Handle::Gauge(g) => g.clone(),
            _ => panic!("{name:?} already registered with a different kind"),
        }
    }

    /// Get or create a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        let i = self.register(name, labels, help, || Handle::Histogram(Histogram::new()));
        let inner = crate::lock(&self.inner);
        match &inner.entries[i].handle {
            Handle::Histogram(h) => h.clone(),
            _ => panic!("{name:?} already registered with a different kind"),
        }
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        crate::lock(&self.inner).entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read every metric, compute deltas against the previous scrape, and
    /// advance the window.
    pub fn scrape(&self) -> Snapshot {
        let mut inner = crate::lock(&self.inner);
        inner.scrapes += 1;
        let seq = inner.scrapes;
        let mut samples = Vec::with_capacity(inner.entries.len());
        for e in inner.entries.iter_mut() {
            let (kind, value) = match &e.handle {
                Handle::Counter(c) => {
                    let total = c.get();
                    let delta = total.saturating_sub(e.last);
                    e.last = total;
                    (MetricKind::Counter, MetricValue::Counter { total, delta })
                }
                Handle::Gauge(g) => (MetricKind::Gauge, MetricValue::Gauge(g.get())),
                Handle::Histogram(h) => {
                    let snap = h.snapshot();
                    let count = snap.count();
                    let delta = count.saturating_sub(e.last);
                    e.last = count;
                    (
                        MetricKind::Histogram,
                        MetricValue::Histogram {
                            hist: snap,
                            delta_count: delta,
                        },
                    )
                }
            };
            samples.push(MetricSample {
                name: e.name.clone(),
                labels: e.labels.clone(),
                help: e.help.clone(),
                kind,
                value,
            });
        }
        Snapshot { seq, samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_series() {
        let r = MetricRegistry::new();
        let a = r.counter("x_total", &[("shard", "0")], "help");
        let b = r.counter("x_total", &[("shard", "0")], "help");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.len(), 1);
        // Different label value: a new series of the same family.
        let c = r.counter("x_total", &[("shard", "1")], "help");
        c.add(5);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn scrape_windows_counters() {
        let r = MetricRegistry::new();
        let c = r.counter("pkts_total", &[], "packets");
        c.add(10);
        let s1 = r.scrape();
        match &s1.samples[0].value {
            MetricValue::Counter { total, delta } => {
                assert_eq!((*total, *delta), (10, 10));
            }
            _ => panic!("expected counter"),
        }
        c.add(3);
        let s2 = r.scrape();
        match &s2.samples[0].value {
            MetricValue::Counter { total, delta } => {
                assert_eq!((*total, *delta), (13, 3));
            }
            _ => panic!("expected counter"),
        }
        assert_eq!(s2.seq, 2);
    }

    #[test]
    fn scrape_windows_histograms() {
        let r = MetricRegistry::new();
        let h = r.histogram("lat_ns", &[], "latency");
        h.observe(5);
        h.observe(6);
        r.scrape();
        h.observe(7);
        let s = r.scrape();
        match &s.samples[0].value {
            MetricValue::Histogram { hist, delta_count } => {
                assert_eq!(hist.count(), 3);
                assert_eq!(*delta_count, 1);
            }
            _ => panic!("expected histogram"),
        }
    }

    #[test]
    #[should_panic(expected = "_total")]
    fn counters_must_end_in_total() {
        MetricRegistry::new().counter("bad_name", &[], "no suffix");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        MetricRegistry::new().gauge("bad name", &[], "space");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_collisions_are_rejected() {
        let r = MetricRegistry::new();
        r.gauge("depth_total", &[], "gauge first");
        r.counter("depth_total", &[], "counter second");
    }
}
