//! # dart-telemetry
//!
//! Zero-dependency observability for the Dart reproduction: the paper's
//! whole point is *continuous* monitoring (§3, §6), so the replay engines
//! must be watchable while they run, not just summarized afterwards.
//!
//! Four pieces, all `std`-only (the build environment is offline and the
//! workspace policy is vendored-or-nothing for external crates):
//!
//! * [`Counter`] / [`Gauge`] — cheap `Arc`-shared atomic handles, safe to
//!   update from shard worker threads while the driver scrapes;
//! * [`Histogram`] — fixed-bucket log2 histograms for RTT samples, batch
//!   processing latency, and recirculation queue depth;
//! * [`MetricRegistry`] — named metrics with label sets and windowed
//!   [`Snapshot`]s (each scrape reports cumulative totals *and* the delta
//!   since the previous scrape);
//! * [`EventLog`] — a bounded ring buffer of structured events (level +
//!   component + key/value fields) with JSONL export;
//! * [`HttpServer`] — an embedded `std`-only HTTP server exposing all of
//!   the above live (`/metrics`, `/healthz`, `/snapshot`, `/events`) plus
//!   the daemon control plane (`/control/shutdown`, `/control/reload`).
//!
//! Two exposition formats: Prometheus text ([`Snapshot::prometheus`]) and
//! JSONL time-series ([`Snapshot::jsonl_line`], one snapshot per line).
//! [`schema`] holds the in-repo checker CI runs against both.
//!
//! ## Naming scheme (normative, see DESIGN.md §5d)
//!
//! Every metric is prefixed `dart_`. Counters end in `_total`; histograms
//! carry a unit suffix (`_ns` for nanoseconds); gauges are bare nouns.
//! Per-shard series carry a `shard="N"` label — the serial engine is
//! `shard="0"`, so dashboards need no special case for `--shards 1`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod events;
pub mod histogram;
pub mod json;
pub mod metric;
pub mod registry;
pub mod schema;
pub mod server;
pub mod snapshot;

pub use events::{Event, EventLog, Level};
pub use histogram::{Histogram, HistogramSnapshot};
pub use metric::{Counter, Gauge};
pub use registry::{MetricKind, MetricRegistry};
pub use schema::{check_jsonl_series, check_prometheus, check_required, SchemaReport};
pub use server::{HealthProvider, HttpServer};
pub use snapshot::{render_rows, MetricSample, MetricValue, Snapshot};

/// Lock a mutex, recovering from poisoning. Telemetry state (counter maps,
/// event rings) stays internally consistent under panics elsewhere — every
/// critical section completes its structural updates before returning — so
/// observability keeps working while the process unwinds and reports.
pub(crate) fn lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
