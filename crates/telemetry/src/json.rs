//! A minimal JSON reader for the crate's own output.
//!
//! The schema checker has to read back the JSONL snapshots this crate
//! writes (CI validates counter monotonicity across a series), and the
//! workspace policy forbids external crates — so here is the smallest
//! correct JSON parser that covers what our exposition emits: objects,
//! arrays, strings with standard escapes, integer/float numbers, booleans,
//! and null. Not a general-purpose validator; numbers outside `f64`/`i64`
//! range degrade the way `parse::<f64>` does.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; see [`JsonValue::as_u64`]).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys sorted (BTreeMap) for deterministic iteration.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole number ≥ 0.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

/// Parse one JSON document (must consume the whole input bar whitespace).
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let b = text.as_bytes();
    let mut p = Parser { b, i: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.i,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| self.err("malformed number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs don't appear in our output;
                            // map them to the replacement character.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // is always on a boundary).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let Some(ch) = rest.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Escape a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_roundtrip_shapes() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\"y"}, "d": true, "e": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a": 1} extra"#).is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn large_counters_survive() {
        // f64 holds integers exactly up to 2^53 — far beyond any replay's
        // packet count; document the behavior at the edge.
        let v = parse("9007199254740992").unwrap(); // 2^53
        assert_eq!(v.as_u64(), Some(1 << 53));
    }
}
