//! Exposition validators — the in-repo "schema checker" CI runs.
//!
//! [`check_prometheus`] lints one Prometheus text exposition: every sample
//! belongs to a `# TYPE`-declared family, names are legal, counters end in
//! `_total`, histogram bucket series are cumulative with ascending `le`
//! and a `+Inf` bucket that matches `_count`, and no series appears twice.
//! [`check_jsonl_series`] replays a `--metrics-out` JSONL file and checks
//! each line parses, `seq` strictly increases, and counter totals are
//! monotone per series — the properties a time-series consumer relies on.

use crate::json;
use crate::registry::valid_name;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Outcome of a validation pass.
#[derive(Clone, Debug, Default)]
pub struct SchemaReport {
    /// Problems found; empty means the document is valid.
    pub errors: Vec<String>,
    /// Distinct series checked.
    pub series: usize,
    /// Lines (Prometheus) or snapshots (JSONL) examined.
    pub lines: usize,
}

impl SchemaReport {
    /// True when no errors were recorded.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// A parsed Prometheus sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parse `name{k="v",...} value` (timestamps are not emitted by this crate
/// and are rejected).
fn parse_sample(line: &str) -> Result<Sample, String> {
    // Split at the last space: label values may contain spaces.
    let (name_labels, value) = match line.rfind(' ') {
        Some(i) => (&line[..i], &line[i + 1..]),
        None => return Err("no value".to_string()),
    };
    let value: f64 = value.parse().map_err(|_| format!("bad value {value:?}"))?;
    let (name, labels) = match name_labels.find('{') {
        None => (name_labels.to_string(), Vec::new()),
        Some(open) => {
            if !name_labels.ends_with('}') {
                return Err("unterminated label set".to_string());
            }
            let name = name_labels[..open].to_string();
            let body = &name_labels[open + 1..name_labels.len() - 1];
            let mut labels = Vec::new();
            let mut rest = body;
            while !rest.is_empty() {
                let eq = rest.find('=').ok_or("label without '='")?;
                let key = rest[..eq].to_string();
                let after = &rest[eq + 1..];
                if !after.starts_with('"') {
                    return Err("unquoted label value".to_string());
                }
                // Find the closing quote, honoring backslash escapes.
                let bytes = after.as_bytes();
                let mut i = 1;
                let mut val = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err("unterminated label value".to_string()),
                        Some(b'"') => break,
                        Some(b'\\') => {
                            match bytes.get(i + 1) {
                                Some(b'"') => val.push('"'),
                                Some(b'\\') => val.push('\\'),
                                Some(b'n') => val.push('\n'),
                                _ => return Err("bad escape in label value".to_string()),
                            }
                            i += 2;
                        }
                        Some(_) => {
                            let s = &after[i..];
                            let Some(ch) = s.chars().next() else {
                                return Err("unterminated label value".to_string());
                            };
                            val.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                labels.push((key, val));
                rest = &after[i + 1..];
                if let Some(stripped) = rest.strip_prefix(',') {
                    rest = stripped;
                } else if !rest.is_empty() {
                    return Err("expected ',' between labels".to_string());
                }
            }
            (name, labels)
        }
    };
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// The family a sample belongs to, folding histogram suffixes.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

fn series_id(name: &str, labels: &[(String, String)]) -> String {
    let mut id = name.to_string();
    for (k, v) in labels {
        id.push('\u{1}');
        id.push_str(k);
        id.push('\u{2}');
        id.push_str(v);
    }
    id
}

/// Validate a Prometheus text exposition. See the module docs for the
/// exact properties checked.
pub fn check_prometheus(text: &str) -> SchemaReport {
    let mut report = SchemaReport::default();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    // (family, labels-minus-le) → ascending (le, cumulative count) pairs.
    type BucketRun = Vec<(f64, f64)>;
    let mut buckets: BTreeMap<String, BucketRun> = BTreeMap::new();
    let mut counts: HashMap<String, f64> = HashMap::new();
    let mut sums: HashSet<String> = HashSet::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        report.lines += 1;
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                report.errors.push(err(format!("unknown TYPE {kind:?}")));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                report
                    .errors
                    .push(err(format!("duplicate TYPE for {name}")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let sample = match parse_sample(line) {
            Ok(s) => s,
            Err(msg) => {
                report.errors.push(err(msg));
                continue;
            }
        };
        if !valid_name(&sample.name) {
            report
                .errors
                .push(err(format!("invalid metric name {:?}", sample.name)));
            continue;
        }
        for (k, _) in &sample.labels {
            if !valid_name(k) {
                report.errors.push(err(format!("invalid label name {k:?}")));
            }
        }
        let id = series_id(&sample.name, &sample.labels);
        if !seen_series.insert(id) {
            report
                .errors
                .push(err(format!("duplicate series {}", sample.name)));
        }
        report.series += 1;
        let family = family_of(&sample.name).to_string();
        let kind = match types.get(&family) {
            Some(k) => k.clone(),
            None => {
                report
                    .errors
                    .push(err(format!("sample {} has no # TYPE", sample.name)));
                continue;
            }
        };
        match kind.as_str() {
            "counter" => {
                if !sample.name.ends_with("_total") {
                    report
                        .errors
                        .push(err(format!("counter {} must end in _total", sample.name)));
                }
                if sample.value < 0.0 {
                    report
                        .errors
                        .push(err(format!("counter {} is negative", sample.name)));
                }
            }
            "histogram" => {
                if sample.name == format!("{family}_bucket") {
                    let mut le = None;
                    let mut rest: Vec<(String, String)> = Vec::new();
                    for (k, v) in &sample.labels {
                        if k == "le" {
                            le = Some(v.clone());
                        } else {
                            rest.push((k.clone(), v.clone()));
                        }
                    }
                    let le = match le {
                        Some(le) => le,
                        None => {
                            report
                                .errors
                                .push(err(format!("{} without le label", sample.name)));
                            continue;
                        }
                    };
                    let le_val = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        match le.parse::<f64>() {
                            Ok(v) => v,
                            Err(_) => {
                                report.errors.push(err(format!("bad le {le:?}")));
                                continue;
                            }
                        }
                    };
                    buckets
                        .entry(series_id(&family, &rest))
                        .or_default()
                        .push((le_val, sample.value));
                } else if sample.name == format!("{family}_count") {
                    let id = series_id(&family, &sample.labels);
                    counts.insert(id, sample.value);
                } else if sample.name == format!("{family}_sum") {
                    sums.insert(series_id(&family, &sample.labels));
                } else {
                    report.errors.push(err(format!(
                        "histogram family {family} has stray sample {}",
                        sample.name
                    )));
                }
            }
            _ => {} // gauge: any value goes
        }
    }

    for (id, run) in &buckets {
        let family = id.split('\u{1}').next().unwrap_or(id).to_string();
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_count = f64::NEG_INFINITY;
        for &(le, count) in run {
            if le <= prev_le {
                report
                    .errors
                    .push(format!("{family}: bucket le values not ascending"));
            }
            if count < prev_count {
                report
                    .errors
                    .push(format!("{family}: bucket counts not cumulative"));
            }
            prev_le = le;
            prev_count = count;
        }
        match run.last() {
            Some(&(le, count)) if le.is_infinite() => {
                if let Some(&total) = counts.get(id) {
                    if (total - count).abs() > 0.0 {
                        report
                            .errors
                            .push(format!("{family}: +Inf bucket {count} != _count {total}"));
                    }
                } else {
                    report.errors.push(format!("{family}: missing _count"));
                }
            }
            _ => report
                .errors
                .push(format!("{family}: missing le=\"+Inf\" bucket")),
        }
        if !sums.contains(id) {
            report.errors.push(format!("{family}: missing _sum"));
        }
    }

    report
}

/// Check that every metric family in `required` appears somewhere in the
/// document. Works on both exposition formats this crate writes (a
/// Prometheus text exposition or a JSONL snapshot series): a family is
/// present when its exact name occurs as a metric identifier, with
/// histogram suffixes (`_bucket`/`_sum`/`_count`) folded onto their base
/// family.
///
/// This is the drift guard CI runs: a counter added to `EngineStats` (or a
/// supervisor series added to the sharded runtime) is listed in the CI
/// `--require` set, so it can never silently vanish from the expositions.
pub fn check_required(text: &str, required: &[&str]) -> SchemaReport {
    let mut report = SchemaReport::default();
    let mut present: HashSet<String> = HashSet::new();
    // Scan every maximal identifier token; this covers bare Prometheus
    // sample names and the quoted `name{labels}` keys in JSONL snapshots.
    for line in text.lines() {
        report.lines += 1;
        let mut start = None;
        let push = |present: &mut HashSet<String>, token: &str| {
            if !token.is_empty() {
                present.insert(family_of(token).to_string());
            }
        };
        for (i, c) in line.char_indices() {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                start.get_or_insert(i);
            } else if let Some(s) = start.take() {
                push(&mut present, &line[s..i]);
            }
        }
        if let Some(s) = start {
            push(&mut present, &line[s..]);
        }
    }
    report.series = present.len();
    for name in required {
        if !present.contains(family_of(name)) {
            report
                .errors
                .push(format!("required series {name} not found"));
        }
    }
    report
}

/// Validate a JSONL snapshot series (the `--metrics-out` file): every line
/// parses, `seq` strictly increases, counter totals are monotone per
/// series.
pub fn check_jsonl_series(text: &str) -> SchemaReport {
    let mut report = SchemaReport::default();
    let mut last_seq: Option<u64> = None;
    let mut last_totals: HashMap<String, u64> = HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        report.lines += 1;
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                report.errors.push(err(e.to_string()));
                continue;
            }
        };
        match v.get("seq").and_then(|s| s.as_u64()) {
            Some(seq) => {
                if let Some(prev) = last_seq {
                    if seq <= prev {
                        report
                            .errors
                            .push(err(format!("seq {seq} not greater than {prev}")));
                    }
                }
                last_seq = Some(seq);
            }
            None => report.errors.push(err("missing seq".to_string())),
        }
        let Some(counters) = v.get("counters").and_then(|c| c.as_object()) else {
            report
                .errors
                .push(err("missing counters object".to_string()));
            continue;
        };
        for (key, entry) in counters {
            let Some(total) = entry.get("total").and_then(|t| t.as_u64()) else {
                report
                    .errors
                    .push(err(format!("counter {key} missing total")));
                continue;
            };
            if let Some(&prev) = last_totals.get(key) {
                if total < prev {
                    report.errors.push(err(format!(
                        "counter {key} went backwards ({prev} -> {total})"
                    )));
                }
            }
            last_totals.insert(key.clone(), total);
        }
    }
    report.series = last_totals.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricRegistry;

    fn instrumented() -> MetricRegistry {
        let r = MetricRegistry::new();
        r.counter("dart_packets_total", &[("shard", "0")], "packets")
            .add(42);
        r.counter("dart_packets_total", &[("shard", "1")], "packets")
            .add(41);
        r.gauge("dart_recirc_queue_depth", &[], "depth").set(5);
        let h = r.histogram("dart_rtt_ns", &[], "rtt");
        for v in [100, 2000, 2000, 1 << 40] {
            h.observe(v);
        }
        r
    }

    #[test]
    fn our_own_exposition_passes() {
        let text = instrumented().scrape().prometheus();
        let report = check_prometheus(&text);
        assert!(report.ok(), "errors: {:?}", report.errors);
        assert!(report.series >= 4);
    }

    #[test]
    fn our_own_jsonl_passes() {
        let r = instrumented();
        let mut out = String::new();
        for i in 0..3 {
            r.counter("dart_packets_total", &[("shard", "0")], "packets")
                .add(i);
            out.push_str(&r.scrape().jsonl_line(&[("packets", 42 + i)]));
            out.push('\n');
        }
        let report = check_jsonl_series(&out);
        assert!(report.ok(), "errors: {:?}", report.errors);
        assert_eq!(report.lines, 3);
    }

    #[test]
    fn catches_untyped_samples() {
        let report = check_prometheus("dart_x_total 1\n");
        assert!(!report.ok());
        assert!(report.errors[0].contains("no # TYPE"));
    }

    #[test]
    fn catches_bad_counter_names() {
        let text = "# TYPE dart_x counter\ndart_x 1\n";
        let report = check_prometheus(text);
        assert!(report.errors.iter().any(|e| e.contains("_total")));
    }

    #[test]
    fn catches_non_cumulative_buckets() {
        let text = concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"1\"} 5\n",
            "h_bucket{le=\"2\"} 3\n",
            "h_bucket{le=\"+Inf\"} 5\n",
            "h_sum 10\n",
            "h_count 5\n",
        );
        let report = check_prometheus(text);
        assert!(report.errors.iter().any(|e| e.contains("cumulative")));
    }

    #[test]
    fn catches_missing_inf_bucket() {
        let text = concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"1\"} 5\n",
            "h_sum 10\n",
            "h_count 5\n",
        );
        let report = check_prometheus(text);
        assert!(report.errors.iter().any(|e| e.contains("+Inf")));
    }

    #[test]
    fn catches_duplicate_series() {
        let text = concat!("# TYPE g gauge\n", "g{a=\"1\"} 5\n", "g{a=\"1\"} 6\n",);
        let report = check_prometheus(text);
        assert!(report.errors.iter().any(|e| e.contains("duplicate series")));
    }

    #[test]
    fn catches_counter_regression_in_jsonl() {
        let lines = concat!(
            "{\"seq\":1,\"counters\":{\"x_total\":{\"total\":10,\"delta\":10}},\"gauges\":{},\"histograms\":{}}\n",
            "{\"seq\":2,\"counters\":{\"x_total\":{\"total\":7,\"delta\":0}},\"gauges\":{},\"histograms\":{}}\n",
        );
        let report = check_jsonl_series(lines);
        assert!(report.errors.iter().any(|e| e.contains("went backwards")));
    }

    #[test]
    fn required_series_found_in_both_formats() {
        let r = instrumented();
        let required = [
            "dart_packets_total",
            "dart_recirc_queue_depth",
            "dart_rtt_ns",
        ];
        let prom = check_required(&r.scrape().prometheus(), &required);
        assert!(prom.ok(), "prometheus: {:?}", prom.errors);
        let jsonl = check_required(&r.scrape().jsonl_line(&[]), &required);
        assert!(jsonl.ok(), "jsonl: {:?}", jsonl.errors);
    }

    #[test]
    fn missing_required_series_is_an_error() {
        let r = instrumented();
        let report = check_required(
            &r.scrape().prometheus(),
            &["dart_packets_total", "dart_supervisor_stalls_total"],
        );
        assert!(!report.ok());
        assert!(
            report.errors[0].contains("dart_supervisor_stalls_total"),
            "{:?}",
            report.errors
        );
    }

    #[test]
    fn required_folds_histogram_suffixes() {
        let text = "h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n";
        assert!(check_required(text, &["h"]).ok());
    }

    #[test]
    fn catches_seq_regression() {
        let lines = concat!(
            "{\"seq\":2,\"counters\":{}}\n",
            "{\"seq\":2,\"counters\":{}}\n",
        );
        let report = check_jsonl_series(lines);
        assert!(report.errors.iter().any(|e| e.contains("not greater")));
    }
}
