//! Zero-dependency embedded HTTP observability plane.
//!
//! A long-lived monitor is only useful if you can look at it while it
//! runs. This module serves the crate's primitives over a minimal
//! `std`-only HTTP/1.1 server (no external dependencies — the workspace
//! policy is vendored-or-nothing, and an accept loop plus a request-line
//! parser needs none):
//!
//! | Endpoint            | Method | Body                                          |
//! |---------------------|--------|-----------------------------------------------|
//! | `/metrics`          | GET    | Prometheus text exposition of the registry    |
//! | `/healthz`          | GET    | caller-supplied JSON health object            |
//! | `/snapshot`         | GET    | one JSONL windowed snapshot (totals + deltas) |
//! | `/events`           | GET    | the bounded [`EventLog`] as JSONL             |
//! | `/control/shutdown` | POST   | ask the daemon to flush and exit              |
//! | `/control/reload`   | POST   | ask the daemon to rebuild its monitor         |
//! | `/control/checkpoint` | POST | ask the daemon to write a snapshot now        |
//!
//! The control endpoints only *set flags* ([`HttpServer::shutdown_requested`],
//! [`HttpServer::take_reload_request`]); the daemon's own loop polls them
//! between batches and performs the action at a safe point — the same
//! contract as a POSIX signal handler, minus the signal. `/control/reload`
//! is the daemon's SIGHUP analogue.
//!
//! Scrape semantics: `/metrics` and `/snapshot` both advance the
//! registry's delta window (a delta is "since the previous scrape by
//! anyone"). Point one collector at a time at a given registry, or treat
//! deltas as advisory; cumulative totals are always exact.
//!
//! Connections are handled serially on one accept thread with short I/O
//! timeouts: an observability plane for a handful of curl/Prometheus
//! clients, not a web server. A stuck client costs at most the timeout.

use crate::events::EventLog;
use crate::registry::MetricRegistry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Caller-supplied provider for the `/healthz` body: returns one JSON
/// object describing the daemon's current health (see
/// `SupervisorHealth::to_json` in `dart-core` for the canonical shape).
pub type HealthProvider = Arc<dyn Fn() -> String + Send + Sync>;

/// Per-connection I/O timeout: generous for a local scrape, small enough
/// that a wedged client cannot stall the accept loop for long.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Longest request head (request line + headers) we accept.
const MAX_HEAD_BYTES: u64 = 16 * 1024;

/// The running observability server. Dropping it stops the accept loop
/// and joins the thread; [`HttpServer::stop`] does the same explicitly.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    reload: Arc<AtomicBool>,
    checkpoint: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `registry`, `events`, and `health` on a background thread.
    pub fn serve(
        addr: impl ToSocketAddrs,
        registry: MetricRegistry,
        events: EventLog,
        health: HealthProvider,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shutdown = Arc::new(AtomicBool::new(false));
        let reload = Arc::new(AtomicBool::new(false));
        let checkpoint = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let ctx = ServeCtx {
            registry,
            events,
            health,
            stop: Arc::clone(&stop),
            shutdown: Arc::clone(&shutdown),
            reload: Arc::clone(&reload),
            checkpoint: Arc::clone(&checkpoint),
            requests: Arc::clone(&requests),
        };
        let thread = std::thread::Builder::new()
            .name("dart-obs-http".to_string())
            .spawn(move || accept_loop(listener, ctx))?;
        Ok(HttpServer {
            addr,
            stop,
            shutdown,
            reload,
            checkpoint,
            requests,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a client POSTed `/control/shutdown` (or the process asked
    /// via [`HttpServer::request_shutdown`]). Sticky: stays set.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// The shared shutdown flag itself. Long-blocking packet sources (a
    /// `Follow` tail waiting on a quiet fifo) watch this so a POSTed
    /// `/control/shutdown` also wakes a daemon parked in `next_chunk`.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Set the shutdown flag from inside the process — what a SIGTERM
    /// handler or a test harness calls to end the daemon loop.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Consume a pending `/control/reload` request: returns true at most
    /// once per POST, so the daemon reloads exactly once per ask.
    pub fn take_reload_request(&self) -> bool {
        self.reload.swap(false, Ordering::Relaxed)
    }

    /// Consume a pending `/control/checkpoint` request: returns true at
    /// most once per POST, so the daemon snapshots exactly once per ask.
    pub fn take_checkpoint_request(&self) -> bool {
        self.checkpoint.swap(false, Ordering::Relaxed)
    }

    /// Requests served so far (any endpoint, any status).
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stop the accept loop and join the server thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Relaxed);
        // The accept loop is parked in accept(); poke it awake with a
        // throwaway connection so it observes the stop flag.
        if let Ok(s) = TcpStream::connect(self.addr) {
            drop(s);
        }
        let _ = thread.join();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Everything the accept loop needs, bundled for the thread spawn.
struct ServeCtx {
    registry: MetricRegistry,
    events: EventLog,
    health: HealthProvider,
    stop: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    reload: Arc<AtomicBool>,
    checkpoint: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
}

fn accept_loop(listener: TcpListener, ctx: ServeCtx) {
    for conn in listener.incoming() {
        if ctx.stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = conn else { continue };
        ctx.requests.fetch_add(1, Ordering::Relaxed);
        // A failed client write is the client's problem, not the loop's.
        let _ = handle_connection(stream, &ctx);
    }
}

/// One HTTP status line we know how to send.
struct Response {
    status: &'static str,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn ok(content_type: &'static str, body: String) -> Response {
        Response {
            status: "200 OK",
            content_type,
            body,
        }
    }

    fn not_found() -> Response {
        Response {
            status: "404 Not Found",
            content_type: "text/plain; charset=utf-8",
            body: "unknown path; try /metrics /healthz /snapshot /events\n".to_string(),
        }
    }

    fn method_not_allowed() -> Response {
        Response {
            status: "405 Method Not Allowed",
            content_type: "text/plain; charset=utf-8",
            body: "read endpoints are GET; /control/* are POST\n".to_string(),
        }
    }

    fn bad_request() -> Response {
        Response {
            status: "400 Bad Request",
            content_type: "text/plain; charset=utf-8",
            body: "malformed request line\n".to_string(),
        }
    }
}

fn handle_connection(stream: TcpStream, ctx: &ServeCtx) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?).take(MAX_HEAD_BYTES);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers so well-behaved clients see their whole request
    // consumed; their contents don't matter to any endpoint.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 0 && header.trim_end() != "" {
        header.clear();
    }
    let response = route(&request_line, ctx);
    let mut stream = stream;
    write!(
        stream,
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.content_type,
        response.body.len(),
    )?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

fn route(request_line: &str, ctx: &ServeCtx) -> Response {
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Response::bad_request();
    };
    // Ignore any query string: `/metrics?x=y` is `/metrics`.
    let path = path.split('?').next().unwrap_or(path);
    match (method, path) {
        ("GET", "/metrics") => Response::ok(
            "text/plain; version=0.0.4; charset=utf-8",
            ctx.registry.scrape().prometheus(),
        ),
        ("GET", "/healthz") => {
            let mut body = (ctx.health)();
            body.push('\n');
            Response::ok("application/json", body)
        }
        ("GET", "/snapshot") => {
            let mut body = ctx.registry.scrape().jsonl_line(&[]);
            body.push('\n');
            Response::ok("application/jsonl", body)
        }
        ("GET", "/events") => Response::ok("application/jsonl", ctx.events.to_jsonl()),
        ("POST", "/control/shutdown") => {
            ctx.shutdown.store(true, Ordering::Relaxed);
            Response::ok(
                "text/plain; charset=utf-8",
                "shutdown requested\n".to_string(),
            )
        }
        ("POST", "/control/reload") => {
            ctx.reload.store(true, Ordering::Relaxed);
            Response::ok(
                "text/plain; charset=utf-8",
                "reload requested\n".to_string(),
            )
        }
        ("POST", "/control/checkpoint") => {
            ctx.checkpoint.store(true, Ordering::Relaxed);
            Response::ok(
                "text/plain; charset=utf-8",
                "checkpoint requested\n".to_string(),
            )
        }
        ("GET", "/control/shutdown" | "/control/reload" | "/control/checkpoint")
        | ("POST", "/metrics" | "/healthz" | "/snapshot" | "/events") => {
            Response::method_not_allowed()
        }
        _ => Response::not_found(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal test client: send `req`, return (status line, body).
    fn request(addr: SocketAddr, req: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(req.as_bytes()).expect("send");
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("read");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status = head.lines().next().unwrap_or_default().to_string();
        (status, body.to_string())
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        request(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
        )
    }

    fn post(addr: SocketAddr, path: &str) -> (String, String) {
        request(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
            ),
        )
    }

    fn spawn_server() -> (HttpServer, MetricRegistry, EventLog) {
        let registry = MetricRegistry::new();
        let events = EventLog::new(16);
        let server = HttpServer::serve(
            "127.0.0.1:0",
            registry.clone(),
            events.clone(),
            Arc::new(|| "{\"healthy\":true}".to_string()),
        )
        .expect("bind ephemeral port");
        (server, registry, events)
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (server, registry, _events) = spawn_server();
        registry
            .counter("dart_test_pkts_total", &[], "packets")
            .add(7);
        let (status, body) = get(server.addr(), "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(
            body.contains("# TYPE dart_test_pkts_total counter"),
            "{body}"
        );
        assert!(body.contains("dart_test_pkts_total 7"), "{body}");
        server.stop();
    }

    #[test]
    fn healthz_serves_the_provider_json() {
        let (server, _registry, _events) = spawn_server();
        let (status, body) = get(server.addr(), "/healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "{\"healthy\":true}\n");
        server.stop();
    }

    #[test]
    fn snapshot_serves_windowed_deltas() {
        let (server, registry, _events) = spawn_server();
        let c = registry.counter("dart_test_pkts_total", &[], "packets");
        c.add(10);
        let (_, first) = get(server.addr(), "/snapshot");
        let v = crate::json::parse(first.trim()).expect("snapshot line parses");
        let counters = v.get("counters").expect("counters section");
        let series = counters.get("dart_test_pkts_total").expect("series");
        assert_eq!(series.get("delta").and_then(|d| d.as_u64()), Some(10));
        c.add(3);
        let (_, second) = get(server.addr(), "/snapshot");
        let v = crate::json::parse(second.trim()).expect("second line parses");
        let series = v
            .get("counters")
            .and_then(|c| c.get("dart_test_pkts_total"))
            .expect("series");
        assert_eq!(series.get("total").and_then(|d| d.as_u64()), Some(13));
        assert_eq!(series.get("delta").and_then(|d| d.as_u64()), Some(3));
        server.stop();
    }

    #[test]
    fn events_endpoint_dumps_the_ring() {
        let (server, _registry, events) = spawn_server();
        events.info("daemon", "rotated", &[("epoch", "3")]);
        let (status, body) = get(server.addr(), "/events");
        assert!(status.contains("200"), "{status}");
        let v = crate::json::parse(body.trim()).expect("event line parses");
        assert_eq!(v.get("message").and_then(|m| m.as_str()), Some("rotated"));
        assert_eq!(v.get("epoch").and_then(|m| m.as_str()), Some("3"));
        server.stop();
    }

    #[test]
    fn control_endpoints_set_flags_once() {
        let (server, _registry, _events) = spawn_server();
        assert!(!server.shutdown_requested());
        assert!(!server.take_reload_request());
        let (status, _) = post(server.addr(), "/control/reload");
        assert!(status.contains("200"), "{status}");
        assert!(server.take_reload_request(), "one POST, one reload");
        assert!(!server.take_reload_request(), "consumed");
        let (status, _) = post(server.addr(), "/control/checkpoint");
        assert!(status.contains("200"), "{status}");
        assert!(server.take_checkpoint_request(), "one POST, one checkpoint");
        assert!(!server.take_checkpoint_request(), "consumed");
        let (status, _) = post(server.addr(), "/control/shutdown");
        assert!(status.contains("200"), "{status}");
        assert!(server.shutdown_requested());
        assert!(server.shutdown_requested(), "sticky");
        server.stop();
    }

    #[test]
    fn wrong_method_and_unknown_path_are_rejected() {
        let (server, _registry, _events) = spawn_server();
        let (status, _) = post(server.addr(), "/metrics");
        assert!(status.contains("405"), "{status}");
        let (status, _) = get(server.addr(), "/control/shutdown");
        assert!(status.contains("405"), "{status}");
        assert!(!server.shutdown_requested(), "GET must not trigger control");
        let (status, _) = get(server.addr(), "/nope");
        assert!(status.contains("404"), "{status}");
        assert!(server.requests_served() >= 3);
        server.stop();
    }

    #[test]
    fn query_strings_are_ignored() {
        let (server, _registry, _events) = spawn_server();
        let (status, _) = get(server.addr(), "/metrics?format=prometheus");
        assert!(status.contains("200"), "{status}");
        server.stop();
    }

    /// After any abusive connection, a clean scrape must still succeed —
    /// the abuse test's real assertion.
    fn assert_scrape_ok(addr: SocketAddr) {
        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "scrape after abuse: {status}");
        assert!(
            body.contains("dart_abuse_probe_total"),
            "scrape after abuse lost registry contents: {body}"
        );
    }

    #[test]
    fn oversized_request_head_does_not_poison_later_scrapes() {
        let (server, registry, _events) = spawn_server();
        registry
            .counter("dart_abuse_probe_total", &[], "canary")
            .add(1);
        // A request head far past MAX_HEAD_BYTES: the reader's take() stops
        // consuming, the connection is answered or dropped, and the accept
        // loop moves on.
        let mut s = TcpStream::connect(server.addr()).expect("connect");
        let mut junk = String::from("GET /metrics HTTP/1.1\r\n");
        while junk.len() < 2 * MAX_HEAD_BYTES as usize {
            junk.push_str("X-Filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        // The server may close mid-write once the head budget is spent;
        // a send error is an acceptable outcome for the abuser.
        let _ = s.write_all(junk.as_bytes());
        drop(s);
        assert_scrape_ok(server.addr());
        server.stop();
    }

    #[test]
    fn slowloris_partial_write_times_out_and_frees_the_loop() {
        let (server, registry, _events) = spawn_server();
        registry
            .counter("dart_abuse_probe_total", &[], "canary")
            .add(1);
        // Send half a request line and go silent. The per-connection read
        // timeout (IO_TIMEOUT) must cut the connection loose; the follow-up
        // scrape proves the accept loop was stalled at most that long.
        let mut s = TcpStream::connect(server.addr()).expect("connect");
        s.write_all(b"GET /metr").expect("partial send");
        let start = std::time::Instant::now();
        assert_scrape_ok(server.addr());
        assert!(
            start.elapsed() < IO_TIMEOUT + Duration::from_secs(2),
            "slowloris held the loop past the timeout: {:?}",
            start.elapsed()
        );
        drop(s);
        server.stop();
    }

    #[test]
    fn pipelined_garbage_gets_one_error_and_a_close() {
        let (server, registry, _events) = spawn_server();
        registry
            .counter("dart_abuse_probe_total", &[], "canary")
            .add(1);
        // Several pipelined "requests", the first malformed. The server is
        // Connection: close — it answers the first parse with an error (or
        // 404/405) and closes; the trailing garbage must not be replayed
        // into later connections.
        let (status, _) = request(
            server.addr(),
            "\u{0}\u{1}\u{2} garbage\r\n\r\nGET /metrics HTTP/1.1\r\n\r\nPOST /control/shutdown HTTP/1.1\r\n\r\n",
        );
        assert!(
            status.contains("400") || status.contains("404") || status.contains("405"),
            "garbage got {status}"
        );
        assert!(
            !server.shutdown_requested(),
            "pipelined tail must not reach the router"
        );
        assert_scrape_ok(server.addr());
        server.stop();
    }

    #[test]
    fn stop_joins_and_drop_is_idempotent() {
        let (server, _registry, _events) = spawn_server();
        let addr = server.addr();
        server.stop();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may briefly accept on the closed listener's
                // backlog; a read must still see EOF / reset.
                true
            }
        );
    }
}
