//! Fixed-bucket log2 histograms.
//!
//! Bucket `i` counts observations `v` with `v < 2^i` (and `v ≥ 2^(i-1)`
//! for `i ≥ 1`), i.e. the inclusive Prometheus upper bound of bucket `i`
//! is `2^i − 1`. Values at or above `2^63` land in the final catch-all
//! bucket (`le="+Inf"`). Sixty-five atomic buckets cover the full `u64`
//! range — RTTs in nanoseconds, batch latencies, queue depths — with one
//! `leading_zeros` and one relaxed `fetch_add` per observation, so the
//! hot path costs a few nanoseconds and never allocates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: indices 0..=64 (`v = 0` through `v ≥ 2^63`).
pub const BUCKETS: usize = 65;

#[derive(Debug)]
struct Inner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log2 histogram handle; clones share the same buckets.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    inner: Arc<Inner>,
}

/// The bucket an observation falls into.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper bound (`le`) of bucket `i`; `None` is `+Inf`.
pub fn bucket_le(i: usize) -> Option<u64> {
    if i >= BUCKETS - 1 {
        None
    } else {
        Some((1u64 << i) - 1)
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all observed values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            sum: self.sum(),
            buckets,
        }
    }
}

/// A frozen histogram: per-bucket (non-cumulative) counts plus the sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Non-cumulative count per bucket, indexed as [`bucket_index`].
    pub buckets: Vec<u64>,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Index of the highest non-empty bucket, if any observation exists.
    pub fn highest_nonempty(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// Index of the bucket where the cumulative count crosses `q · count`
    /// — the quantile at bucket granularity. The differential testkit's
    /// histogram-tolerance judgement compares engine vs. oracle on these
    /// indices (±1 bucket), which is the strongest claim a log2 sketch can
    /// honestly make.
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(i);
            }
        }
        self.highest_nonempty()
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// where the cumulative count crosses `q · count`. Log2 buckets make
    /// this a factor-of-two estimate — good enough for live dashboards.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.quantile_bucket(q)
            .map(|i| bucket_le(i).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_le(0), Some(0));
        assert_eq!(bucket_le(1), Some(1));
        assert_eq!(bucket_le(2), Some(3));
        assert_eq!(bucket_le(64), None);
    }

    #[test]
    fn observe_counts_and_sums() {
        let h = Histogram::new();
        for v in [0, 1, 1, 5, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1007);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1); // v = 0
        assert_eq!(s.buckets[1], 2); // v = 1
        assert_eq!(s.buckets[3], 1); // v = 5
        assert_eq!(s.buckets[10], 1); // v = 1000
        assert_eq!(s.count(), 5);
        assert_eq!(s.highest_nonempty(), Some(10));
    }

    #[test]
    fn quantile_is_bucket_upper_bound() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.observe(10); // bucket 4, le 15
        }
        h.observe(1_000_000); // bucket 20, le 2^20 - 1
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), Some(15));
        assert_eq!(s.quantile(1.0), Some((1 << 20) - 1));
        assert_eq!(s.quantile_bucket(0.5), Some(4));
        assert_eq!(s.quantile_bucket(1.0), Some(20));
        assert_eq!(
            HistogramSnapshot {
                buckets: vec![],
                sum: 0
            }
            .quantile_bucket(0.99),
            None
        );
        assert_eq!(
            HistogramSnapshot {
                buckets: vec![],
                sum: 0
            }
            .quantile(0.5),
            None
        );
    }

    #[test]
    fn shared_across_threads() {
        let h = Histogram::new();
        let workers: Vec<_> = (0..4)
            .map(|i| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for k in 0..500u64 {
                        h.observe(i * 1000 + k);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(h.count(), 2000);
    }
}
