//! Frozen scrapes and the two exposition formats.
//!
//! A [`Snapshot`] is what [`MetricRegistry::scrape`](crate::MetricRegistry::scrape)
//! returns: every registered series with its cumulative value and the
//! delta since the previous scrape. It renders three ways:
//!
//! * [`Snapshot::prometheus`] — Prometheus text exposition (`# HELP` /
//!   `# TYPE` / samples, histograms as cumulative `_bucket{le=...}` +
//!   `_sum` + `_count`);
//! * [`Snapshot::jsonl_line`] — one JSON object per scrape, the periodic
//!   time-series format `--metrics-out` appends to;
//! * [`Snapshot::render_text`] — the human-readable table `dartmon stats`
//!   prints; [`render_rows`] is the same table for plain name/value rows
//!   so one formatter serves live snapshots and `EngineStats` reports.

use crate::histogram::{bucket_le, HistogramSnapshot};
use crate::json::escape;
use crate::registry::MetricKind;
use std::fmt::Write as _;

/// One series in a snapshot.
#[derive(Clone, Debug)]
pub struct MetricSample {
    /// Family name (`dart_rtt_ns`, `dart_shard_packets_total`, ...).
    pub name: String,
    /// Label set, in registration order.
    pub labels: Vec<(String, String)>,
    /// Help text for `# HELP`.
    pub help: String,
    /// Counter / gauge / histogram.
    pub kind: MetricKind,
    /// The scraped value.
    pub value: MetricValue,
}

/// A scraped value.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Counter: cumulative total plus the delta since the last scrape.
    Counter {
        /// Cumulative total.
        total: u64,
        /// Increase since the previous scrape.
        delta: u64,
    },
    /// Gauge: the current value.
    Gauge(i64),
    /// Histogram: bucket snapshot plus the observation-count delta.
    Histogram {
        /// Bucket counts and sum.
        hist: HistogramSnapshot,
        /// Observations since the previous scrape.
        delta_count: u64,
    },
}

impl MetricSample {
    /// The series identity: `name` or `name{k="v",...}`.
    pub fn key(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// One scrape of the whole registry.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Scrape sequence number (1-based, monotone per registry).
    pub seq: u64,
    /// Every registered series, in registration order.
    pub samples: Vec<MetricSample>,
}

/// Escape a label value for the Prometheus text format.
fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn prom_sample_line(out: &mut String, name: &str, labels: &[(String, String)], value: &str) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", prom_escape(v));
        }
        out.push('}');
    }
    let _ = writeln!(out, " {value}");
}

impl Snapshot {
    /// Prometheus text exposition of the cumulative values.
    ///
    /// Families keep registration order; `# HELP`/`# TYPE` are emitted
    /// once per family, before its first sample. Histograms emit
    /// cumulative `_bucket` lines up to the highest non-empty bucket plus
    /// the mandatory `le="+Inf"`, then `_sum` and `_count`.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for s in &self.samples {
            if !seen.contains(&s.name.as_str()) {
                seen.push(&s.name);
                let _ = writeln!(out, "# HELP {} {}", s.name, s.help.replace('\n', " "));
                let _ = writeln!(out, "# TYPE {} {}", s.name, s.kind.as_str());
            }
            match &s.value {
                MetricValue::Counter { total, .. } => {
                    prom_sample_line(&mut out, &s.name, &s.labels, &total.to_string());
                }
                MetricValue::Gauge(v) => {
                    prom_sample_line(&mut out, &s.name, &s.labels, &v.to_string());
                }
                MetricValue::Histogram { hist, .. } => {
                    let bucket_name = format!("{}_bucket", s.name);
                    let top = hist.highest_nonempty().unwrap_or(0);
                    let mut cumulative = 0u64;
                    for (i, &c) in hist.buckets.iter().enumerate().take(top + 1) {
                        cumulative += c;
                        let mut labels = s.labels.clone();
                        let le = match bucket_le(i) {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_string(),
                        };
                        labels.push(("le".to_string(), le));
                        prom_sample_line(&mut out, &bucket_name, &labels, &cumulative.to_string());
                    }
                    let count = hist.count();
                    if bucket_le(top).is_some() {
                        let mut labels = s.labels.clone();
                        labels.push(("le".to_string(), "+Inf".to_string()));
                        prom_sample_line(&mut out, &bucket_name, &labels, &count.to_string());
                    }
                    prom_sample_line(
                        &mut out,
                        &format!("{}_sum", s.name),
                        &s.labels,
                        &hist.sum.to_string(),
                    );
                    prom_sample_line(
                        &mut out,
                        &format!("{}_count", s.name),
                        &s.labels,
                        &count.to_string(),
                    );
                }
            }
        }
        out
    }

    /// One JSONL time-series line: the scrape seq, caller-supplied context
    /// fields (e.g. `packets`, `elapsed_ns`), then counters (total +
    /// delta), gauges, and histograms (count, sum, non-empty buckets as
    /// `[le, count]` pairs, `le = null` for the +Inf bucket).
    pub fn jsonl_line(&self, extra: &[(&str, u64)]) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"seq\":{}", self.seq);
        for (k, v) in extra {
            let _ = write!(out, ",\"{}\":{}", escape(k), v);
        }
        for (section, kind) in [
            ("counters", MetricKind::Counter),
            ("gauges", MetricKind::Gauge),
            ("histograms", MetricKind::Histogram),
        ] {
            let _ = write!(out, ",\"{section}\":{{");
            let mut first = true;
            for s in self.samples.iter().filter(|s| s.kind == kind) {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{}\":", escape(&s.key()));
                match &s.value {
                    MetricValue::Counter { total, delta } => {
                        let _ = write!(out, "{{\"total\":{total},\"delta\":{delta}}}");
                    }
                    MetricValue::Gauge(v) => {
                        let _ = write!(out, "{v}");
                    }
                    MetricValue::Histogram { hist, delta_count } => {
                        let _ = write!(
                            out,
                            "{{\"count\":{},\"sum\":{},\"delta\":{delta_count},\"buckets\":[",
                            hist.count(),
                            hist.sum
                        );
                        let mut first_b = true;
                        for (i, &c) in hist.buckets.iter().enumerate() {
                            if c == 0 {
                                continue;
                            }
                            if !first_b {
                                out.push(',');
                            }
                            first_b = false;
                            match bucket_le(i) {
                                Some(le) => {
                                    let _ = write!(out, "[{le},{c}]");
                                }
                                None => {
                                    let _ = write!(out, "[null,{c}]");
                                }
                            }
                        }
                        out.push_str("]}");
                    }
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Human-readable table: counters with totals and window deltas,
    /// gauges, and histograms with approximate quantiles.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .samples
            .iter()
            .map(|s| s.key().len())
            .max()
            .unwrap_or(0)
            .max(6);
        let counters: Vec<&MetricSample> = self
            .samples
            .iter()
            .filter(|s| s.kind == MetricKind::Counter)
            .collect();
        if !counters.is_empty() {
            let _ = writeln!(out, "{:<width$} {:>14} {:>14}", "counter", "total", "delta");
            for s in counters {
                if let MetricValue::Counter { total, delta } = &s.value {
                    let _ = writeln!(out, "{:<width$} {:>14} {:>14}", s.key(), total, delta);
                }
            }
        }
        let gauges: Vec<&MetricSample> = self
            .samples
            .iter()
            .filter(|s| s.kind == MetricKind::Gauge)
            .collect();
        if !gauges.is_empty() {
            let _ = writeln!(out, "{:<width$} {:>14}", "gauge", "value");
            for s in gauges {
                if let MetricValue::Gauge(v) = &s.value {
                    let _ = writeln!(out, "{:<width$} {:>14}", s.key(), v);
                }
            }
        }
        for s in &self.samples {
            if let MetricValue::Histogram { hist, delta_count } = &s.value {
                let _ = writeln!(
                    out,
                    "{:<width$} count {} (Δ{delta_count}) sum {} p50≈{} p90≈{} p99≈{}",
                    s.key(),
                    hist.count(),
                    hist.sum,
                    hist.quantile(0.50).unwrap_or(0),
                    hist.quantile(0.90).unwrap_or(0),
                    hist.quantile(0.99).unwrap_or(0),
                );
            }
        }
        out
    }
}

/// The shared name/value table used for `EngineStats`-style reports: the
/// same alignment rules as [`Snapshot::render_text`]'s counter section, so
/// differential reports and live stats read identically.
pub fn render_rows(header: &str, rows: &[(&str, u64)]) -> String {
    let width = rows
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(0)
        .max(header.len())
        .max(6);
    let mut out = String::new();
    let _ = writeln!(out, "{:<width$} {:>14}", header, "value");
    for (name, value) in rows {
        let _ = writeln!(out, "{:<width$} {:>14}", name, value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::MetricRegistry;

    fn example() -> MetricRegistry {
        let r = MetricRegistry::new();
        r.counter("dart_packets_total", &[("shard", "0")], "packets offered")
            .add(100);
        r.gauge("dart_recirc_queue_depth", &[("shard", "0")], "in flight")
            .set(3);
        let h = r.histogram("dart_rtt_ns", &[], "rtt samples");
        h.observe(1_000_000);
        h.observe(25_000_000);
        r
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = example().scrape().prometheus();
        assert!(text.contains("# TYPE dart_packets_total counter"));
        assert!(text.contains("dart_packets_total{shard=\"0\"} 100"));
        assert!(text.contains("# TYPE dart_recirc_queue_depth gauge"));
        assert!(text.contains("dart_recirc_queue_depth{shard=\"0\"} 3"));
        assert!(text.contains("# TYPE dart_rtt_ns histogram"));
        assert!(text.contains("dart_rtt_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("dart_rtt_ns_sum 26000000"));
        assert!(text.contains("dart_rtt_ns_count 2"));
        // Buckets are cumulative: the 25ms bucket line counts both.
        assert!(text.contains("dart_rtt_ns_bucket{le=\"33554431\"} 2"));
    }

    #[test]
    fn jsonl_line_parses_and_carries_extras() {
        let line = example().scrape().jsonl_line(&[("packets", 100)]);
        let v = json::parse(&line).expect("jsonl line must be valid json");
        assert_eq!(v.get("seq").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("packets").unwrap().as_u64(), Some(100));
        let counters = v.get("counters").unwrap().as_object().unwrap();
        let c = counters.get("dart_packets_total{shard=\"0\"}").unwrap();
        assert_eq!(c.get("total").unwrap().as_u64(), Some(100));
        assert_eq!(c.get("delta").unwrap().as_u64(), Some(100));
        let h = v.get("histograms").unwrap().get("dart_rtt_ns").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn text_rendering_lists_everything() {
        let text = example().scrape().render_text();
        assert!(text.contains("dart_packets_total{shard=\"0\"}"));
        assert!(text.contains("dart_recirc_queue_depth"));
        assert!(text.contains("p50≈"));
    }

    #[test]
    fn render_rows_aligns() {
        let text = render_rows("counter", &[("packets", 10), ("samples", 2)]);
        assert!(text.starts_with("counter"));
        assert!(text.contains("packets"));
        assert!(text.lines().count() == 3);
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let snap = MetricRegistry::new().scrape();
        assert_eq!(snap.prometheus(), "");
        assert!(snap.render_text().is_empty());
        let line = snap.jsonl_line(&[]);
        json::parse(&line).expect("still valid json");
    }
}
