//! Property tests for windowed delta snapshots: the `/snapshot` endpoint
//! and the daemon's periodic JSONL export both lean on `Snapshot` deltas
//! being exact *windows* — every increment lands in exactly one scrape's
//! delta, no matter how increments (including bursts from epoch
//! rotations) interleave with scrapes.

use dart_telemetry::{MetricRegistry, MetricValue};
use proptest::prelude::*;

/// The one counter/histogram value in a snapshot, by name.
fn counter_value(reg: &MetricRegistry, name: &str) -> (u64, u64) {
    let snap = reg.scrape();
    let sample = snap
        .samples
        .iter()
        .find(|s| s.name == name)
        .expect("series exists");
    match &sample.value {
        MetricValue::Counter { total, delta } => (*total, *delta),
        other => panic!("expected counter, got {other:?}"),
    }
}

fn histogram_delta(reg: &MetricRegistry, name: &str) -> (u64, u64) {
    let snap = reg.scrape();
    let sample = snap
        .samples
        .iter()
        .find(|s| s.name == name)
        .expect("series exists");
    match &sample.value {
        MetricValue::Histogram { hist, delta_count } => (hist.count(), *delta_count),
        other => panic!("expected histogram, got {other:?}"),
    }
}

proptest! {
    /// For ANY interleaving of counter increments and scrapes — a model of
    /// the daemon loop, where rotation bursts add between scrape windows —
    /// each scrape's delta is exactly the increments since the previous
    /// scrape, and the deltas partition the final total: nothing negative
    /// (the type forbids it), nothing lost, nothing double-counted.
    #[test]
    fn counter_deltas_partition_the_total(
        ops in proptest::collection::vec((0u64..1_000, any::<bool>()), 1..60),
    ) {
        let reg = MetricRegistry::new();
        let counter = reg.counter("dart_test_window_total", &[], "test counter");
        let mut since_last = 0u64;
        let mut expected_total = 0u64;
        let mut delta_sum = 0u64;
        for &(inc, scrape_after) in &ops {
            counter.add(inc);
            since_last += inc;
            expected_total += inc;
            if scrape_after {
                let (total, delta) = counter_value(&reg, "dart_test_window_total");
                prop_assert_eq!(delta, since_last, "window != increments since last scrape");
                prop_assert_eq!(total, expected_total);
                delta_sum += delta;
                since_last = 0;
            }
        }
        // Final scrape drains whatever the last window left.
        let (total, delta) = counter_value(&reg, "dart_test_window_total");
        prop_assert_eq!(delta, since_last);
        delta_sum += delta;
        prop_assert_eq!(total, expected_total);
        prop_assert_eq!(delta_sum, expected_total, "deltas must partition the total");
        // An empty window scrapes as zero, not a re-count of old increments.
        let (total, delta) = counter_value(&reg, "dart_test_window_total");
        prop_assert_eq!(delta, 0, "idle window re-counted increments");
        prop_assert_eq!(total, expected_total);
    }

    /// The same windowing contract for histogram observation counts (the
    /// rotation-pause and stage-timer series): each scrape's `delta_count`
    /// is the observations since the previous scrape, and they sum to the
    /// cumulative count.
    #[test]
    fn histogram_delta_counts_partition_observations(
        ops in proptest::collection::vec((0u64..1u64 << 40, any::<bool>()), 1..60),
    ) {
        let reg = MetricRegistry::new();
        let hist = reg.histogram("dart_test_window_ns", &[], "test histogram");
        let mut since_last = 0u64;
        let mut observed = 0u64;
        let mut delta_sum = 0u64;
        for &(v, scrape_after) in &ops {
            hist.observe(v);
            since_last += 1;
            observed += 1;
            if scrape_after {
                let (count, delta) = histogram_delta(&reg, "dart_test_window_ns");
                prop_assert_eq!(delta, since_last);
                prop_assert_eq!(count, observed);
                delta_sum += delta;
                since_last = 0;
            }
        }
        let (count, delta) = histogram_delta(&reg, "dart_test_window_ns");
        prop_assert_eq!(delta, since_last);
        delta_sum += delta;
        prop_assert_eq!(count, observed);
        prop_assert_eq!(delta_sum, observed, "delta_counts must partition the count");
    }

    /// Scrapes observe concurrent writers without tearing the window
    /// invariant: with increments racing a scrape, the delta may land in
    /// either window, but the sum of all windows still equals the final
    /// total — the cross-thread version of "no loss, no double count".
    #[test]
    fn concurrent_increments_land_in_exactly_one_window(
        per_thread in 1u64..400,
        scrapes in 2usize..8,
    ) {
        let reg = MetricRegistry::new();
        let counter = reg.counter("dart_test_race_total", &[], "test counter");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        let mut delta_sum = 0u64;
        for _ in 0..scrapes {
            let (_, delta) = counter_value(&reg, "dart_test_race_total");
            delta_sum += delta;
        }
        for t in threads {
            t.join().expect("writer thread");
        }
        let (total, delta) = counter_value(&reg, "dart_test_race_total");
        delta_sum += delta;
        prop_assert_eq!(total, 4 * per_thread);
        prop_assert_eq!(delta_sum, total, "windows lost or double-counted increments");
    }
}
