//! `dartmon serve` crash-recovery surface: checkpoint/restore flags, the
//! reconnecting follow source, and the SIGINT/SIGTERM → shutdown path.
//!
//! Lives in its own test binary: the signal test exercises the
//! process-wide shutdown flag, and cargo running test binaries serially
//! guarantees no other `serve` test is racing for it.

#![cfg(feature = "telemetry")]

use std::time::Duration;

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("{}_{}", name, std::process::id()))
        .to_str()
        .expect("utf-8 temp path")
        .to_string()
}

fn run_line(line: &[&str]) -> Result<String, String> {
    let args: Vec<String> = line.iter().map(|s| s.to_string()).collect();
    let (cmd, opts) = dart_tools::parse(&args)?;
    dart_tools::run(cmd, &opts)
}

fn field(report: &str, name: &str) -> String {
    report
        .lines()
        .find(|l| l.starts_with(name))
        .and_then(|l| l.split(':').nth(1))
        .map(|v| v.trim().to_string())
        .unwrap_or_else(|| panic!("missing field {name:?} in:\n{report}"))
}

#[test]
fn serve_checkpoints_then_restores_across_an_incarnation() {
    let trace = tmp("dartmon_serve_ckpt.trace");
    let snap = tmp("dartmon_serve_ckpt.dsnp");
    run_line(&[
        "generate",
        &trace,
        "--connections",
        "60",
        "--duration-secs",
        "2",
    ])
    .expect("generate");

    let first = run_line(&[
        "serve",
        &trace,
        "--listen",
        "127.0.0.1:0",
        "--snapshot-path",
        &snap,
        "--checkpoint-millis",
        "5",
    ])
    .expect("first serve");
    let written: u64 = field(&first, "checkpoints").parse().expect("count");
    assert!(written >= 1, "no checkpoint written:\n{first}");
    assert_eq!(field(&first, "restored"), "no");
    assert!(std::path::Path::new(&snap).is_file(), "snapshot missing");

    let second = run_line(&[
        "serve",
        &trace,
        "--listen",
        "127.0.0.1:0",
        "--snapshot-path",
        &snap,
        "--restore",
        &snap,
    ])
    .expect("second serve");
    assert_eq!(field(&second, "restored"), "yes", "{second}");
    // Restored books are cumulative: the second incarnation starts from
    // the first one's counters, drains the same trace again, and reports
    // exactly double — the conservation law across the restart.
    let first_packets: u64 = field(&first, "packets").parse().expect("count");
    let second_packets: u64 = field(&second, "packets").parse().expect("count");
    assert_eq!(second_packets, 2 * first_packets, "{second}");

    // A torn snapshot must refuse to start, loudly.
    let bytes = std::fs::read(&snap).expect("snapshot bytes");
    std::fs::write(&snap, &bytes[..bytes.len() / 2]).expect("truncate");
    let err = run_line(&[
        "serve",
        &trace,
        "--listen",
        "127.0.0.1:0",
        "--restore",
        &snap,
    ])
    .expect_err("torn snapshot accepted");
    assert!(err.contains("restore"), "{err}");

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn serve_rejects_bad_recovery_flags() {
    let err = run_line(&["serve", "x.trace", "--checkpoint-millis", "5"]).unwrap_err();
    assert!(err.contains("needs --snapshot-path"), "{err}");
    let err = run_line(&[
        "serve",
        "x.trace",
        "--snapshot-path",
        "s.dsnp",
        "--checkpoint-millis",
        "0",
    ])
    .unwrap_err();
    assert!(err.contains("at least 1"), "{err}");
    let err = run_line(&["serve", "x.trace", "--strict-decode", "true"]).unwrap_err();
    assert!(err.contains("--mode follow"), "{err}");
    let err = run_line(&[
        "serve",
        "x.trace",
        "--mode",
        "follow",
        "--strict-decode",
        "sideways",
    ])
    .unwrap_err();
    assert!(err.contains("true | false"), "{err}");
}

#[test]
fn a_shutdown_request_ends_an_endless_cycle_like_a_signal_would() {
    // The signal handler itself lives in the binary (one atomic store into
    // dart_tools::shutdown); this drives the exact path it triggers.
    let trace = tmp("dartmon_serve_signal.trace");
    run_line(&[
        "generate",
        &trace,
        "--connections",
        "40",
        "--duration-secs",
        "2",
    ])
    .expect("generate");

    let requester = std::thread::spawn(|| {
        // Keep requesting until the daemon's watcher consumes one; the
        // first few may land before the watcher thread is up.
        for _ in 0..400 {
            dart_tools::shutdown::request();
            std::thread::sleep(Duration::from_millis(25));
            if !dart_tools::shutdown::pending() {
                // Consumed — the watcher has it; stop hammering.
                return;
            }
        }
        panic!("no serve watcher ever consumed the shutdown request");
    });

    // Endless cycle: only a shutdown request can end this run.
    let report = run_line(&[
        "serve",
        &trace,
        "--listen",
        "127.0.0.1:0",
        "--mode",
        "cycle",
        "--rotate-millis",
        "50",
    ])
    .expect("serve cycle");
    requester.join().expect("requester thread");
    assert_eq!(field(&report, "ended by"), "shutdown request", "{report}");
    // Leave no request behind for other binaries.
    while dart_tools::shutdown::take() {}
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn serve_follow_survives_decode_garbage_and_counts_it() {
    // A native trace with trailing garbage: the reconnecting tail skips
    // the torn record (strict decode off) and the run still drains.
    let trace = tmp("dartmon_serve_follow.trace");
    run_line(&[
        "generate",
        &trace,
        "--connections",
        "30",
        "--duration-secs",
        "1",
    ])
    .expect("generate");

    // Shut the follow tail down shortly after it reaches end-of-data.
    let stopper = std::thread::spawn(|| {
        std::thread::sleep(Duration::from_millis(600));
        dart_tools::shutdown::request();
    });
    let report = run_line(&[
        "serve",
        &trace,
        "--listen",
        "127.0.0.1:0",
        "--mode",
        "follow",
        "--strict-decode",
        "false",
    ])
    .expect("serve follow");
    stopper.join().expect("stopper thread");
    assert_eq!(field(&report, "ended by"), "shutdown request", "{report}");
    let packets: u64 = field(&report, "packets").parse().expect("count");
    assert!(packets > 0, "follow ingested nothing:\n{report}");
    while dart_tools::shutdown::take() {}
    let _ = std::fs::remove_file(&trace);
}
