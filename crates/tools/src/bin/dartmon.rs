//! `dartmon` — continuous RTT monitoring over packet traces, from the
//! command line. See `dartmon help`.

/// SIGINT/SIGTERM routing. The library crate forbids `unsafe`, so the one
/// place that genuinely needs it — registering a signal handler without a
/// vendored signal crate — lives here in the binary. The handler body is a
/// single atomic store ([`dart_tools::shutdown::request`]), which is
/// async-signal-safe; a long-lived `serve` observes the flag and drains
/// through the same path as `POST /control/shutdown` (final checkpoint
/// included) instead of dying mid-write.
mod signals {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        dart_tools::shutdown::request();
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` is handed a valid `extern "C" fn(i32)` pointer,
        // and the handler performs only an atomic store.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

fn main() {
    signals::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dart_tools::parse(&args).and_then(|(cmd, opts)| dart_tools::run(cmd, &opts)) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("dartmon: {e}");
            std::process::exit(2);
        }
    }
}
