//! `dartmon` — continuous RTT monitoring over packet traces, from the
//! command line. See `dartmon help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dart_tools::parse(&args).and_then(|(cmd, opts)| dart_tools::run(cmd, &opts)) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("dartmon: {e}");
            std::process::exit(2);
        }
    }
}
