//! Trace file loading/saving with format auto-detection.

use dart_packet::parse::PrefixClassifier;
use dart_packet::{PacketError, PacketMeta};
use dart_sim::replay::{dump_pcap, load_native, load_pcap};
use std::net::Ipv4Addr;

/// Parse an `A.B.C.D/L` prefix string.
pub fn parse_prefix(s: &str) -> Result<(Ipv4Addr, u8), String> {
    let (addr, len) = s.split_once('/').unwrap_or((s, "8"));
    let addr: Ipv4Addr = addr.parse().map_err(|_| format!("bad address in {s:?}"))?;
    let len: u8 = len
        .parse()
        .map_err(|_| format!("bad prefix length in {s:?}"))?;
    if len > 32 {
        return Err(format!("prefix length {len} out of range"));
    }
    Ok((addr, len))
}

/// Load a trace from bytes, auto-detecting pcap (either endianness /
/// resolution) vs the native format by magic. Returns the packets and the
/// number of skipped (non-TCP) pcap records.
pub fn load_bytes(
    bytes: &[u8],
    internal: (Ipv4Addr, u8),
) -> Result<(Vec<PacketMeta>, u64), String> {
    if bytes.len() < 4 {
        return Err("file too short to identify".into());
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let is_pcap = matches!(magic, 0xa1b2_c3d4 | 0xa1b2_3c4d | 0xd4c3_b2a1 | 0x4d3c_b2a1);
    if is_pcap {
        let classifier = PrefixClassifier::new([internal]);
        load_pcap(bytes, &classifier).map_err(err)
    } else {
        load_native(bytes).map(|p| (p, 0)).map_err(err)
    }
}

/// Load a trace from a path.
pub fn load_file(path: &str, internal: (Ipv4Addr, u8)) -> Result<(Vec<PacketMeta>, u64), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    load_bytes(&bytes, internal)
}

/// Save packets to `path`, choosing the format by extension (`.pcap` gets
/// synthesized frames, anything else the native format).
pub fn save_file(path: &str, packets: &[PacketMeta]) -> Result<(), String> {
    let bytes = if path.ends_with(".pcap") {
        let mut buf = Vec::new();
        dump_pcap(packets, &mut buf).map_err(err)?;
        buf
    } else {
        dart_packet::trace::to_bytes(packets)
    };
    std::fs::write(path, bytes).map_err(|e| format!("write {path}: {e}"))
}

fn err(e: PacketError) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_sim::scenario::{campus, CampusConfig};

    fn tiny() -> Vec<PacketMeta> {
        campus(CampusConfig {
            connections: 20,
            duration: dart_packet::SECOND,
            ..CampusConfig::default()
        })
        .packets
    }

    #[test]
    fn prefix_parsing() {
        assert_eq!(
            parse_prefix("10.0.0.0/8").unwrap(),
            (Ipv4Addr::new(10, 0, 0, 0), 8)
        );
        assert_eq!(parse_prefix("10.0.0.0").unwrap().1, 8);
        assert!(parse_prefix("10.0.0.0/40").is_err());
        assert!(parse_prefix("not-an-ip/8").is_err());
    }

    #[test]
    fn auto_detects_both_formats() {
        let pkts = tiny();
        let internal = (Ipv4Addr::new(10, 0, 0, 0), 8);
        // Native bytes.
        let native = dart_packet::trace::to_bytes(&pkts);
        let (a, skipped) = load_bytes(&native, internal).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(a, pkts);
        // Pcap bytes.
        let mut pcap = Vec::new();
        dart_sim::replay::dump_pcap(&pkts, &mut pcap).unwrap();
        let (b, _) = load_bytes(&pcap, internal).unwrap();
        assert_eq!(b, pkts);
    }

    #[test]
    fn short_or_garbage_input_errors() {
        let internal = (Ipv4Addr::new(10, 0, 0, 0), 8);
        assert!(load_bytes(&[1, 2], internal).is_err());
        assert!(load_bytes(&[0u8; 64], internal).is_err());
    }

    #[test]
    fn save_and_load_round_trip_via_files() {
        let pkts = tiny();
        let dir = std::env::temp_dir();
        let internal = (Ipv4Addr::new(10, 0, 0, 0), 8);
        for name in ["dartmon_test.trace", "dartmon_test.pcap"] {
            let path = dir.join(name);
            let path = path.to_str().unwrap();
            save_file(path, &pkts).unwrap();
            let (back, _) = load_file(path, internal).unwrap();
            assert_eq!(back, pkts);
            let _ = std::fs::remove_file(path);
        }
    }
}
