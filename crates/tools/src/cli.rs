//! Argument parsing for `dartmon` — plain `std`, no dependencies.

use std::collections::HashMap;

/// A parsed subcommand.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Synthesize a campus trace to a file.
    Generate {
        /// Output path (`.pcap` or `.trace`).
        out: String,
    },
    /// Run Dart over a trace and report.
    Analyze {
        /// Input path.
        input: String,
    },
    /// Dart vs every baseline on one trace.
    Compare {
        /// Input path.
        input: String,
    },
    /// Windowed min-RTT change detection over a trace.
    Detect {
        /// Input path.
        input: String,
    },
    /// Differential check: every engine vs. the ground-truth oracle.
    Diff {
        /// Input path.
        input: String,
    },
    /// Run one engine and print the full telemetry snapshot.
    Stats {
        /// Input path.
        input: String,
    },
    /// Inject a seeded runtime fault into the supervised sharded engine
    /// and verify the degraded output against the oracle.
    Chaos {
        /// Input path.
        input: String,
    },
    /// Run the adversarial scenario matrix and write judged scorecards.
    Scenarios,
    /// Long-lived monitoring daemon: feed a live source through the
    /// supervised sharded engine with the observability server attached.
    Serve {
        /// Input path (trace to follow or cycle).
        input: String,
    },
    /// Print the data-plane resource report.
    Resources,
    /// Print usage.
    Help,
}

/// Option flags shared across subcommands.
#[derive(Clone, Debug, Default)]
pub struct Options {
    flags: HashMap<String, String>,
}

impl Options {
    /// Look up `--name value` as a string.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// Look up and parse a numeric flag.
    pub fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse {v:?}")),
        }
    }

    /// Insert (tests).
    pub fn set(&mut self, name: &str, value: &str) {
        self.flags.insert(name.into(), value.into());
    }
}

/// Usage text.
pub const USAGE: &str = "\
dartmon — continuous RTT monitoring over packet traces (Dart, SIGCOMM 2022)

USAGE:
    dartmon <command> [args] [--flag value]...

COMMANDS:
    generate <out.pcap|out.trace>   synthesize a campus-style trace
        --connections N   (default 500)     --duration-secs S (default 10)
        --seed X          (default 0xDA27)
    analyze <input>                 run one engine, print RTT report
                                    (alias: replay)
        --engine NAME     (any registered engine, default dart;
                           dart-sharded-N follows --shards and
                           dart@sketch/dart@precision follow --backend)
        --backend exact|sketch|precision (flow-state backend for the Dart
                           config, default exact)
        --leg external|internal|both (default external)
        --pt N (slots, default 131072)  --stages K (default 1)
        --rt N (slots, default 1048576) --max-recirc R (default 1)
        --shards N (flow-sharded parallel engines, default 1 = serial;
                           capped at available_parallelism with a warning)
        --csv <path>      dump per-sample CSV
        --metrics-out <path>        append one JSONL telemetry snapshot
                                    per interval during the replay
        --metrics-interval N        packets between snapshots
                                    (default 100000; needs --metrics-out)
        --metrics-prom <path>       write final Prometheus text exposition
        --events-out <path>         write the structured event log (JSONL)
    stats <input>                   run one engine, print every metric
                                    (same engine flags as analyze)
    compare <input>                 registered engines side by side
        --engine NAME[,NAME...]|all (default all)
    detect <input>                  min-RTT change detection (attack alarm)
        --window N (samples, default 8)  --ratio F (default 2.0)
    diff <input>                    engines vs. ground-truth oracle (testkit)
        --engine NAME[,NAME...]|all (extra engines beside the Dart rows,
                           default tcptrace,fridge)
        --shards N        (also run flow-sharded engine, default 4,
                           capped at available_parallelism)
        --fault-seed X    (inject seeded drop/dup/reorder faults first)
        --impossible-budget B (tolerated fabricated samples, default 0)
        plus the analyze engine flags (--backend/--leg/--pt/--rt/--stages/
        --max-recirc) and the telemetry sinks (--metrics-out/--metrics-prom/
        --events-out capture one final snapshot and the runner's event
        narration)

Engines are resolved from the shared registry: dart, dart@sketch,
dart@precision, dart-sharded-N, tcptrace, tcptrace-quirk, fridge, pping,
dapper, strawman, seglist, lean, spin, dart-hist.
    chaos <input>                   inject a seeded runtime fault into the
                                    supervised sharded engine (testkit)
        --fault panic|stall|slow    (default panic: a shard worker panics
                           mid-run; stall: a worker hangs past the
                           watchdog; slow: backpressure only, no failure)
        --failure-policy failfast|restart|shed|all (default all: run the
                           same fault under every degradation policy)
        --seed X          (default 0xC405; picks the poisoned packet)
        plus the analyze engine flags (--leg/--pt/--rt/--stages/--max-recirc)
    scenarios                       adversarial scenario matrix (testkit):
                                    generated mixed TCP+QUIC captures judged
                                    engine-by-engine (Dart by the SEQ/ACK
                                    oracle, spin by edge truth, dart-hist by
                                    +-1-bucket quantiles)
        --scenario NAME[,NAME...]|all (quic-mix | churn-storm | interception
                           | wireless-tail, default all)
        --scale F         (traffic multiplier, default 0.2 = CI size)
        --seed X          (generator seed, default 0xD1A7)
        --fault-seed X    (also run each scenario with the seeded stress
                           fault layer: drop/dup/reorder/truncate)
        --out DIR         (scorecard directory, default target/tmp/scenarios)
        --backend exact|sketch|precision (flow-state backend for the Dart
                           rows; non-exact runs tag their scorecards
                           `<kind>@<backend>.txt`)
    serve <input>                   long-lived monitoring daemon (telemetry):
                                    supervised sharded engine on a live
                                    source, observability plane over HTTP
                                    (GET /metrics /healthz /snapshot /events,
                                    POST /control/shutdown /control/reload)
        --listen ADDR     (bind address, default 127.0.0.1:9464)
        --mode once|follow|cycle    (once: read the trace to EOF and exit;
                           follow: tail the file/fifo until a shutdown is
                           POSTed; cycle: loop the trace, rebasing
                           timestamps each pass — default once)
        --passes N        (cycle mode: stop after N passes, default endless)
        --rotate-millis M (wall-clock epoch rotation period, default 900000)
        --retain-secs S   (rotation keeps flows touched in the last S
                           seconds of trace time, default 10)
        --block N         (packets per ingest block, default 1024)
        --snapshot-path P (write crash-consistent state snapshots to P:
                           at every rotation, on POST /control/checkpoint,
                           and once more at shutdown)
        --checkpoint-millis M (also checkpoint every M ms of wall clock;
                           needs --snapshot-path)
        --restore P       (restore engine state from snapshot P at startup;
                           a torn or mismatched snapshot fails loudly)
        --strict-decode true|false (follow mode: fail on the first
                           undecodable record instead of skipping and
                           counting it, default false)
        plus the analyze engine flags (--shards/--backend/--leg/--pt/--rt/
        --stages/--max-recirc)
        SIGINT/SIGTERM drain through the same path as /control/shutdown
        (final checkpoint included)
    resources                       Table-1 style resource report
    help                            this text

Input files may be classic pcap (auto-detected) or the native .trace format.
The internal side for pcap direction classification defaults to 10.0.0.0/8
(--internal-prefix A.B.C.D/L to override).
";

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<(Command, Options), String> {
    let mut pos: Vec<&String> = Vec::new();
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            opts.flags.insert(name.to_string(), value.to_string());
            i += 2;
        } else {
            pos.push(a);
            i += 1;
        }
    }
    let cmd = match pos.first().map(|s| s.as_str()) {
        None | Some("help") => Command::Help,
        Some("resources") => Command::Resources,
        Some("scenarios") => Command::Scenarios,
        Some(
            c @ ("generate" | "analyze" | "replay" | "compare" | "detect" | "diff" | "stats"
            | "chaos" | "serve"),
        ) => {
            let arg = pos
                .get(1)
                .ok_or_else(|| format!("{c} needs a file argument"))?
                .to_string();
            match c {
                "generate" => Command::Generate { out: arg },
                "analyze" | "replay" => Command::Analyze { input: arg },
                "compare" => Command::Compare { input: arg },
                "diff" => Command::Diff { input: arg },
                "stats" => Command::Stats { input: arg },
                "chaos" => Command::Chaos { input: arg },
                "serve" => Command::Serve { input: arg },
                _ => Command::Detect { input: arg },
            }
        }
        // A bare existing file is the legacy pre-subcommand shorthand for
        // `detect <file>`; anything else is a typo and must not silently
        // run change detection on it.
        Some(other) if std::path::Path::new(other).is_file() => Command::Detect {
            input: other.to_string(),
        },
        Some(other) => {
            let hint = closest_command(other)
                .map(|c| format!(" — did you mean `{c}`?"))
                .unwrap_or_default();
            return Err(format!(
                "unknown command {other:?}{hint} (try `dartmon help`)"
            ));
        }
    };
    Ok((cmd, opts))
}

/// Every accepted subcommand name, for the did-you-mean hint.
const COMMANDS: [&str; 12] = [
    "generate",
    "analyze",
    "replay",
    "compare",
    "detect",
    "diff",
    "stats",
    "chaos",
    "scenarios",
    "serve",
    "resources",
    "help",
];

/// The known command within Levenshtein distance 2 of `input`, if any
/// (ties go to the earlier entry in [`COMMANDS`]).
fn closest_command(input: &str) -> Option<&'static str> {
    COMMANDS
        .iter()
        .map(|&c| (levenshtein(input, c), c))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| c)
}

/// Classic two-row edit distance; command names are short, so no need
/// for anything cleverer.
fn levenshtein(a: &str, b: &str) -> usize {
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.chars().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommands_and_flags() {
        let (cmd, opts) = parse(&v(&["analyze", "x.pcap", "--pt", "4096"])).unwrap();
        assert_eq!(
            cmd,
            Command::Analyze {
                input: "x.pcap".into()
            }
        );
        assert_eq!(opts.get_num("pt", 0usize).unwrap(), 4096);
        assert_eq!(opts.get_num("stages", 7usize).unwrap(), 7);
    }

    #[test]
    fn replay_is_an_analyze_alias_and_stats_parses() {
        let (cmd, _) = parse(&v(&["replay", "x.trace"])).unwrap();
        assert_eq!(
            cmd,
            Command::Analyze {
                input: "x.trace".into()
            }
        );
        // Flags may come before the subcommand (the acceptance invocation
        // is `dartmon --metrics-out m.jsonl ... replay trace`).
        let (cmd, opts) = parse(&v(&["--metrics-out", "m.jsonl", "replay", "x.trace"])).unwrap();
        assert_eq!(
            cmd,
            Command::Analyze {
                input: "x.trace".into()
            }
        );
        assert_eq!(opts.get("metrics-out"), Some("m.jsonl"));
        let (cmd, _) = parse(&v(&["stats", "x.trace"])).unwrap();
        assert_eq!(
            cmd,
            Command::Stats {
                input: "x.trace".into()
            }
        );
    }

    #[test]
    fn missing_file_argument_errors() {
        assert!(parse(&v(&["analyze"])).is_err());
        assert!(parse(&v(&["generate", "--seed", "1"])).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(parse(&v(&["frobnicate"])).is_err());
    }

    #[test]
    fn unknown_command_suggests_the_closest_subcommand() {
        let err = parse(&v(&["anaylze", "x.trace"])).unwrap_err();
        assert!(err.contains("did you mean `analyze`"), "{err}");
        let err = parse(&v(&["sevre", "x.trace"])).unwrap_err();
        assert!(err.contains("did you mean `serve`"), "{err}");
        // Nothing within distance 2: no hint, still an error.
        let err = parse(&v(&["frobnicate"])).unwrap_err();
        assert!(!err.contains("did you mean"), "{err}");
        assert!(err.contains("dartmon help"), "{err}");
    }

    #[test]
    fn bare_existing_file_is_legacy_detect_shorthand() {
        let path = std::env::temp_dir().join("dartmon_cli_legacy.trace");
        std::fs::write(&path, b"x").unwrap();
        let arg = path.to_str().unwrap().to_string();
        let (cmd, _) = parse(std::slice::from_ref(&arg)).unwrap();
        assert_eq!(cmd, Command::Detect { input: arg });
        let _ = std::fs::remove_file(&path);
        // The same spelling without a file behind it is a typo, not detect.
        assert!(parse(&v(&["/nonexistent/no.trace"])).is_err());
    }

    #[test]
    fn serve_parses_with_flags() {
        let (cmd, opts) = parse(&v(&["serve", "x.trace", "--mode", "cycle"])).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                input: "x.trace".into()
            }
        );
        assert_eq!(opts.get("mode"), Some("cycle"));
        assert!(parse(&v(&["serve"])).is_err());
    }

    #[test]
    fn scenarios_takes_no_file_argument() {
        let (cmd, opts) = parse(&v(&[
            "scenarios",
            "--scale",
            "0.1",
            "--scenario",
            "quic-mix",
        ]))
        .unwrap();
        assert_eq!(cmd, Command::Scenarios);
        assert_eq!(opts.get("scenario"), Some("quic-mix"));
        assert_eq!(opts.get_num("scale", 1.0f64).unwrap(), 0.1);
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse(&[]).unwrap().0, Command::Help);
    }

    #[test]
    fn flag_without_value_errors() {
        assert!(parse(&v(&["analyze", "x", "--pt"])).is_err());
    }

    #[test]
    fn bad_numeric_flag_errors() {
        let (_, opts) = parse(&v(&["analyze", "x", "--pt", "abc"])).unwrap();
        assert!(opts.get_num("pt", 0usize).is_err());
    }
}
