//! # dart-tools
//!
//! Library backing the `dartmon` command-line tool: trace loading by file
//! type, report generation for each subcommand. Kept as a library so the
//! commands are unit-testable without spawning processes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod commands;
pub mod io;
pub mod shutdown;

pub use cli::{parse, Command, Options};
pub use commands::run;
