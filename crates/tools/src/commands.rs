//! The `dartmon` subcommand implementations. Each returns the report text
//! it would print, keeping the logic testable.

use crate::cli::{Command, Options, USAGE};
use crate::io::{load_file, parse_prefix, save_file};
use dart_analytics::{ChangeDetector, ChangeDetectorConfig, RttDistribution, Verdict};
use dart_baselines::EngineRegistry;
use dart_core::{run_monitor_slice, DartConfig, Leg};
use dart_packet::SECOND;
use dart_sim::scenario::{campus, CampusConfig};
use dart_switch::{dart_program, estimate, DartProgramParams, TargetProfile};
use dart_testkit::{run_diff, run_diff_faulted, DiffConfig, FaultConfig};
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// Execute a parsed command, returning the report text.
pub fn run(cmd: Command, opts: &Options) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Resources => resources(),
        Command::Generate { out } => generate(&out, opts),
        Command::Analyze { input } => analyze(&input, opts),
        Command::Compare { input } => compare(&input, opts),
        Command::Detect { input } => detect(&input, opts),
        Command::Diff { input } => diff(&input, opts),
    }
}

fn internal_prefix(opts: &Options) -> Result<(Ipv4Addr, u8), String> {
    parse_prefix(opts.get("internal-prefix").unwrap_or("10.0.0.0/8"))
}

fn generate(out: &str, opts: &Options) -> Result<String, String> {
    let connections = opts.get_num("connections", 500usize)?;
    let duration_secs = opts.get_num("duration-secs", 10u64)?;
    let seed = opts.get_num("seed", 0xDA27u64)?;
    let trace = campus(CampusConfig {
        connections,
        duration: duration_secs * SECOND,
        seed,
        ..CampusConfig::default()
    });
    save_file(out, &trace.packets)?;
    Ok(format!(
        "wrote {} packets from {} connections ({} complete) to {out}\n",
        trace.packets.len(),
        trace.conns.len(),
        trace.conns.iter().filter(|c| c.complete).count()
    ))
}

fn engine_config(opts: &Options) -> Result<DartConfig, String> {
    let leg = match opts.get("leg").unwrap_or("external") {
        "external" => Leg::External,
        "internal" => Leg::Internal,
        "both" => Leg::Both,
        other => return Err(format!("unknown --leg {other:?}")),
    };
    let pt = opts.get_num("pt", 1usize << 17)?;
    let stages = opts.get_num("stages", 1usize)?;
    let rt = opts.get_num("rt", 1usize << 20)?;
    let max_recirc = opts.get_num("max-recirc", 1u32)?;
    Ok(DartConfig::default()
        .with_leg(leg)
        .with_rt(rt)
        .with_pt(pt, stages)
        .with_max_recirc(max_recirc))
}

/// Expand an `--engine` flag into validated registry names: a single name,
/// a comma-separated list, or `all` (every statically registered engine).
fn engine_selection(
    opts: &Options,
    registry: &EngineRegistry,
    default: &str,
) -> Result<Vec<String>, String> {
    let spec = opts.get("engine").unwrap_or(default);
    let names: Vec<String> = if spec == "all" {
        registry.names().iter().map(|s| s.to_string()).collect()
    } else {
        spec.split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect()
    };
    if names.is_empty() {
        return Err("--engine: empty selection".to_string());
    }
    for name in &names {
        registry
            .judgement(name)
            .map_err(|e| format!("--engine: {e}"))?;
    }
    Ok(names)
}

fn analyze(input: &str, opts: &Options) -> Result<String, String> {
    let (packets, skipped) = load_file(input, internal_prefix(opts)?)?;
    let cfg = engine_config(opts)?;
    let shards = opts.get_num("shards", 1usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let default_engine = if shards <= 1 {
        "dart".to_string()
    } else {
        format!("dart-sharded-{shards}")
    };
    let registry = EngineRegistry::standard();
    let engine = opts.get("engine").unwrap_or(&default_engine).to_string();
    registry
        .judgement(&engine)
        .map_err(|e| format!("--engine: {e}"))?;
    let mut built = registry.build(&engine, &cfg)?;
    let (samples, stats) = run_monitor_slice(built.monitor.as_mut(), &packets);

    if let Some(csv) = opts.get("csv") {
        let mut text = String::from("ts_ns,src,sport,dst,dport,eack,rtt_ns\n");
        for s in &samples {
            writeln!(
                text,
                "{},{},{},{},{},{},{}",
                s.ts,
                s.flow.src_ip,
                s.flow.src_port,
                s.flow.dst_ip,
                s.flow.dst_port,
                s.eack.raw(),
                s.rtt
            )
            .expect("string write");
        }
        std::fs::write(csv, text).map_err(|e| format!("write {csv}: {e}"))?;
    }

    let mut dist = RttDistribution::from_samples(samples.iter().map(|s| s.rtt));
    let mut out = String::new();
    writeln!(
        out,
        "input             : {input} ({} packets, {skipped} skipped)",
        packets.len()
    )
    .unwrap();
    writeln!(out, "engine            : {}", built.monitor.describe()).unwrap();
    writeln!(
        out,
        "config            : {:?} leg, PT {:?}, RT {:?}, recirc<={}, shards={shards}",
        cfg.leg, cfg.pt, cfg.rt, cfg.max_recirc
    )
    .unwrap();
    writeln!(out, "samples           : {}", dist.len()).unwrap();
    for (label, p) in [("p50", 50.0), ("p90", 90.0), ("p95", 95.0), ("p99", 99.0)] {
        if let Some(v) = dist.percentile(p) {
            writeln!(out, "{label:<18}: {:.3} ms", v as f64 / 1e6).unwrap();
        }
    }
    writeln!(out, "tracked data pkts : {}", stats.seq_tracked).unwrap();
    writeln!(out, "retransmissions   : {}", stats.seq_retransmission).unwrap();
    writeln!(out, "range collapses   : {}", stats.range_collapses).unwrap();
    writeln!(out, "optimistic ACKs   : {}", stats.ack_optimistic).unwrap();
    writeln!(out, "recirc / packet   : {:.4}", stats.recirc_per_packet()).unwrap();
    Ok(out)
}

fn compare(input: &str, opts: &Options) -> Result<String, String> {
    let (packets, _) = load_file(input, internal_prefix(opts)?)?;
    let cfg = engine_config(opts)?;
    let registry = EngineRegistry::standard();
    let names = engine_selection(opts, &registry, "all")?;
    let mut out = String::new();
    writeln!(
        out,
        "{:<22} {:>9} {:>10} {:>10}",
        "tool", "samples", "p50 (ms)", "p99 (ms)"
    )
    .unwrap();
    for name in names {
        let mut built = registry.build(&name, &cfg)?;
        let (samples, _) = run_monitor_slice(built.monitor.as_mut(), &packets);
        let mut d = RttDistribution::from_samples(samples.iter().map(|s| s.rtt));
        writeln!(
            out,
            "{name:<22} {:>9} {:>10.2} {:>10.2}",
            d.len(),
            d.percentile(50.0).unwrap_or(0) as f64 / 1e6,
            d.percentile(99.0).unwrap_or(0) as f64 / 1e6
        )
        .expect("string write");
    }
    Ok(out)
}

fn diff(input: &str, opts: &Options) -> Result<String, String> {
    let (packets, _) = load_file(input, internal_prefix(opts)?)?;
    let shards = opts.get_num("shards", 4usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let registry = EngineRegistry::standard();
    let selection = engine_selection(opts, &registry, "tcptrace,fridge")?;
    let shard_list = if shards == 1 {
        vec![1]
    } else {
        vec![1, shards]
    };
    let shard_names: Vec<String> = shard_list
        .iter()
        .map(|&s| {
            if s <= 1 {
                "dart".to_string()
            } else {
                format!("dart-sharded-{s}")
            }
        })
        .collect();
    // The Dart rows come from --shards; --engine adds everything else.
    let baseline_engines: Vec<String> = selection
        .into_iter()
        .filter(|n| !shard_names.contains(n))
        .collect();
    let cfg = DiffConfig {
        engine: engine_config(opts)?,
        shards: shard_list,
        impossible_budget: opts.get_num("impossible-budget", 0u64)?,
        baselines: !baseline_engines.is_empty(),
        baseline_engines,
    };
    let report = match opts.get("fault-seed") {
        None => run_diff(&cfg, &packets),
        Some(_) => {
            let seed = opts.get_num("fault-seed", 0u64)?;
            run_diff_faulted(&cfg, FaultConfig::stress(seed), &packets)
        }
    };
    let mut out = report.to_string();
    out.push('\n');
    Ok(out)
}

fn detect(input: &str, opts: &Options) -> Result<String, String> {
    let (packets, _) = load_file(input, internal_prefix(opts)?)?;
    let window = opts.get_num("window", 8u32)?;
    let ratio = opts.get_num("ratio", 2.0f64)?;
    let (samples, _) = dart_core::run_trace(DartConfig::default(), &packets);
    let mut det = ChangeDetector::new(ChangeDetectorConfig {
        window,
        ratio,
        ..ChangeDetectorConfig::default()
    });
    let mut out = String::new();
    writeln!(out, "samples: {}", samples.len()).unwrap();
    for s in &samples {
        match det.offer(s.rtt, s.ts) {
            Verdict::Suspected { baseline, observed } => writeln!(
                out,
                "t={:9.3}s SUSPECTED min-RTT {:.1} -> {:.1} ms",
                s.ts as f64 / 1e9,
                baseline as f64 / 1e6,
                observed as f64 / 1e6
            )
            .expect("string write"),
            Verdict::Confirmed {
                baseline,
                observed,
                samples_to_confirm,
            } => writeln!(
                out,
                "t={:9.3}s CONFIRMED min-RTT {:.1} -> {:.1} ms ({samples_to_confirm} samples)",
                s.ts as f64 / 1e9,
                baseline as f64 / 1e6,
                observed as f64 / 1e6
            )
            .expect("string write"),
            Verdict::Normal => {}
        }
    }
    if !out.contains("SUSPECTED") {
        writeln!(out, "no abnormal min-RTT changes detected").unwrap();
    }
    Ok(out)
}

fn resources() -> Result<String, String> {
    let mut out = String::new();
    for (name, params, profile) in [
        (
            "Tofino 1 (ingress+egress)",
            DartProgramParams {
                spans_egress: true,
                ..DartProgramParams::default()
            },
            TargetProfile::tofino1(),
        ),
        (
            "Tofino 2 (ingress only)",
            DartProgramParams::default(),
            TargetProfile::tofino2(),
        ),
    ] {
        let report = estimate(&dart_program(params), &profile);
        writeln!(out, "== {name} ==").unwrap();
        writeln!(out, "{report}").unwrap();
        writeln!(out, "fits: {}\n", report.fits()).unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::parse;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(name)
            .to_str()
            .unwrap()
            .to_string()
    }

    fn run_line(line: &[&str]) -> Result<String, String> {
        let args: Vec<String> = line.iter().map(|s| s.to_string()).collect();
        let (cmd, opts) = parse(&args)?;
        run(cmd, &opts)
    }

    #[test]
    fn generate_then_analyze_then_compare_then_detect() {
        let path = tmp("dartmon_e2e.trace");
        let report = run_line(&[
            "generate",
            &path,
            "--connections",
            "80",
            "--duration-secs",
            "3",
        ])
        .unwrap();
        assert!(report.contains("wrote"));

        let report = run_line(&["analyze", &path]).unwrap();
        assert!(report.contains("samples"));
        assert!(report.contains("p50"));

        let report = run_line(&["compare", &path]).unwrap();
        for name in [
            "dart",
            "dart-sharded-4",
            "tcptrace",
            "pping",
            "seglist",
            "lean",
        ] {
            assert!(report.contains(name), "missing {name} in:\n{report}");
        }

        let report = run_line(&["detect", &path]).unwrap();
        assert!(report.contains("samples:"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn engine_flag_selects_registry_entries() {
        let path = tmp("dartmon_engine.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "40",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        let report = run_line(&["analyze", &path, "--engine", "pping"]).unwrap();
        assert!(report.contains("pping"), "{report}");
        let report = run_line(&["compare", &path, "--engine", "dart,tcptrace"]).unwrap();
        assert!(
            report.contains("tcptrace") && !report.contains("fridge"),
            "{report}"
        );
        let report = run_line(&["diff", &path, "--engine", "all"]).unwrap();
        for name in ["dart", "tcptrace-quirk", "strawman", "lean", "verdict"] {
            assert!(report.contains(name), "missing {name} in:\n{report}");
        }
        let err = run_line(&["analyze", &path, "--engine", "nonsense"]).unwrap_err();
        assert!(err.contains("unknown engine"), "{err}");
        let err = run_line(&["compare", &path, "--engine", ","]).unwrap_err();
        assert!(err.contains("empty selection"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analyze_sharded_runs_and_reports() {
        let path = tmp("dartmon_shards.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "60",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        let serial = run_line(&["analyze", &path]).unwrap();
        assert!(serial.contains("shards=1"));
        let sharded = run_line(&["analyze", &path, "--shards", "4"]).unwrap();
        assert!(sharded.contains("shards=4"));
        assert!(sharded.contains("p50"));
        let err = run_line(&["analyze", &path, "--shards", "0"]).unwrap_err();
        assert!(err.contains("at least 1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analyze_writes_csv() {
        let path = tmp("dartmon_csv.trace");
        let csv = tmp("dartmon_out.csv");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "40",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        run_line(&["analyze", &path, "--csv", &csv]).unwrap();
        let text = std::fs::read_to_string(&csv).unwrap();
        assert!(text.starts_with("ts_ns,src,sport,dst,dport,eack,rtt_ns"));
        assert!(text.lines().count() > 1);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&csv);
    }

    #[test]
    fn diff_reports_pass_on_clean_and_faulted_traces() {
        let path = tmp("dartmon_diff.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "50",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        let clean = run_line(&["diff", &path]).unwrap();
        assert!(clean.contains("oracle:"));
        assert!(clean.contains("dart-sharded-4"));
        assert!(clean.contains("tcptrace"));
        assert!(clean.contains("verdict: PASS"));
        let faulted = run_line(&["diff", &path, "--fault-seed", "9"]).unwrap();
        assert!(faulted.contains("faults:"));
        assert!(faulted.contains("verdict: PASS"));
        let err = run_line(&["diff", &path, "--shards", "0"]).unwrap_err();
        assert!(err.contains("at least 1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resources_report_includes_both_targets() {
        let r = run_line(&["resources"]).unwrap();
        assert!(r.contains("Tofino 1"));
        assert!(r.contains("Tofino 2"));
        assert!(r.contains("SRAM"));
    }

    #[test]
    fn help_is_usage() {
        let r = run_line(&["help"]).unwrap();
        assert!(r.contains("USAGE"));
    }

    #[test]
    fn bad_leg_flag_errors() {
        let path = tmp("dartmon_badleg.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "10",
            "--duration-secs",
            "1",
        ])
        .unwrap();
        let err = run_line(&["analyze", &path, "--leg", "sideways"]).unwrap_err();
        assert!(err.contains("unknown --leg"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_errors_cleanly() {
        let err = run_line(&["analyze", "/nonexistent/file.trace"]).unwrap_err();
        assert!(err.contains("read"));
    }
}
