//! The `dartmon` subcommand implementations. Each returns the report text
//! it would print, keeping the logic testable.

use crate::cli::{Command, Options, USAGE};
use crate::io::{load_file, parse_prefix, save_file};
use dart_analytics::{ChangeDetector, ChangeDetectorConfig, RttDistribution, Verdict};
use dart_baselines::EngineRegistry;
use dart_core::FailurePolicy;
use dart_core::{run_monitor_slice, Backend, DartConfig, Leg};
#[cfg(feature = "telemetry")]
use dart_core::{run_monitor_ticked, RttSample};
#[cfg(feature = "telemetry")]
use dart_packet::SliceSource;
use dart_packet::SECOND;
use dart_sim::adversarial::ScenarioKind;
use dart_sim::scenario::{campus, CampusConfig};
use dart_switch::{dart_program, estimate, DartProgramParams, TargetProfile};
#[cfg(feature = "telemetry")]
use dart_telemetry::{EventLog, MetricRegistry};
use dart_testkit::{
    run_chaos, run_scenario, scenario_artifact_dir, write_scorecards, ChaosConfig, DiffConfig,
    FaultConfig, ScenarioConfig,
};
#[cfg(not(feature = "telemetry"))]
use dart_testkit::{run_diff, run_diff_faulted};
#[cfg(feature = "telemetry")]
use dart_testkit::{run_diff_faulted_instrumented, run_diff_instrumented};
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// Execute a parsed command, returning the report text.
pub fn run(cmd: Command, opts: &Options) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Resources => resources(),
        Command::Generate { out } => generate(&out, opts),
        Command::Analyze { input } => analyze(&input, opts),
        Command::Compare { input } => compare(&input, opts),
        Command::Detect { input } => detect(&input, opts),
        Command::Diff { input } => diff(&input, opts),
        Command::Stats { input } => stats_report(&input, opts),
        Command::Chaos { input } => chaos(&input, opts),
        Command::Scenarios => scenarios(opts),
        Command::Serve { input } => serve(&input, opts),
    }
}

/// `dartmon serve`: the long-lived monitoring daemon (DESIGN.md §5i) —
/// the supervised sharded engine on a live source, with wall-clock epoch
/// rotation and the embedded observability plane (`GET /metrics`,
/// `/healthz`, `/snapshot`, `/events`; `POST /control/shutdown`,
/// `/control/reload`).
fn serve(input: &str, opts: &Options) -> Result<String, String> {
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (input, opts);
        Err("`dartmon serve` needs the `telemetry` feature; \
             this binary was built with --no-default-features"
            .to_string())
    }
    #[cfg(feature = "telemetry")]
    {
        use dart_core::sharded::ShardedConfig;
        use dart_packet::{CycleSource, Follow, PacketSource, PcapSource, Reconnecting};
        use dart_testkit::{Daemon, DaemonConfig};
        use std::sync::atomic::Ordering;
        use std::time::Duration;

        let mode = opts.get("mode").unwrap_or("once");
        if !matches!(mode, "once" | "follow" | "cycle") {
            return Err(format!(
                "unknown --mode {mode:?} (expected once | follow | cycle)"
            ));
        }
        let passes = match opts.get("passes") {
            None => None,
            Some(_) if mode != "cycle" => return Err("--passes needs --mode cycle".to_string()),
            Some(_) => Some(opts.get_num("passes", 0u64)?),
        };
        let shards = opts.get_num("shards", 2usize)?;
        if shards == 0 {
            return Err("--shards must be at least 1".to_string());
        }
        let shards = clamp_shards(shards);
        let rotate_millis = opts.get_num("rotate-millis", 900_000u64)?;
        if rotate_millis == 0 {
            return Err("--rotate-millis must be at least 1".to_string());
        }
        let snapshot_path = opts.get("snapshot-path").map(std::path::PathBuf::from);
        let checkpoint_every = match opts.get("checkpoint-millis") {
            None => None,
            Some(_) => {
                let ms = opts.get_num("checkpoint-millis", 0u64)?;
                if ms == 0 {
                    return Err("--checkpoint-millis must be at least 1".to_string());
                }
                Some(Duration::from_millis(ms))
            }
        };
        if checkpoint_every.is_some() && snapshot_path.is_none() {
            return Err("--checkpoint-millis needs --snapshot-path".to_string());
        }
        let restore_from = opts.get("restore").map(std::path::PathBuf::from);
        let strict_decode = match opts.get("strict-decode") {
            None => false,
            Some(_) if mode != "follow" => {
                return Err("--strict-decode needs --mode follow \
                     (decode tolerance only applies to live tails)"
                    .to_string())
            }
            Some("true") => true,
            Some("false") => false,
            Some(other) => {
                return Err(format!(
                    "--strict-decode expects true | false, got {other:?}"
                ))
            }
        };
        let cfg = DaemonConfig {
            sharded: ShardedConfig::new(engine_config(opts)?, shards),
            block_pkts: opts.get_num("block", 1024usize)?.max(1),
            rotate_every: Duration::from_millis(rotate_millis),
            retain: opts.get_num("retain-secs", 10u64)?.saturating_mul(SECOND),
            bind: opts.get("listen").unwrap_or("127.0.0.1:9464").to_string(),
            snapshot_path,
            checkpoint_every,
            restore_from,
            ..DaemonConfig::default()
        };
        let internal = internal_prefix(opts)?;
        let mut daemon = Daemon::start(cfg).map_err(|e| format!("serve startup: {e}"))?;
        let addr = daemon.addr();
        eprintln!(
            "dartmon serve: observability plane on http://{addr} \
             (POST /control/shutdown to stop)"
        );
        // SIGINT/SIGTERM land in the process-wide shutdown flag (the
        // binary installs the handlers); this watcher routes each request
        // into the daemon's control plane exactly as POST
        // /control/shutdown would, so the drain + final checkpoint path
        // is the same for a Ctrl-C as for an operator POST.
        let server_stop = daemon.server().shutdown_flag();
        let watcher_done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let watcher = {
            let done = watcher_done.clone();
            std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    if crate::shutdown::take() {
                        server_stop.store(true, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            })
        };
        let run = |daemon: Daemon, source: &mut dyn PacketSource| {
            daemon
                .run(source)
                .map_err(|e| format!("ingest {input}: {e}"))
        };
        type ModeOutcome = Result<(dart_testkit::DaemonReport, String), String>;
        let outcome: ModeOutcome = (|| match mode {
            "follow" => {
                // Build the tail *after* the server is up: the shared
                // shutdown flag is what wakes a source parked at
                // end-of-data, so a quiet fifo cannot outlive a POSTed
                // shutdown. The whole thing is wrapped in `Reconnecting`:
                // a producer restart or a torn record re-opens the tail
                // under bounded backoff instead of ending a week-long run.
                let stop = daemon.server().shutdown_flag();
                let path = input.to_string();
                let is_pcap = input.ends_with(".pcap");
                let open = move |_attempt: u32| -> Option<Box<dyn PacketSource + Send>> {
                    let file = std::fs::File::open(&path).ok()?;
                    let follow = Follow::new(file, stop.clone());
                    if is_pcap {
                        let classifier = dart_packet::parse::PrefixClassifier::new([internal]);
                        PcapSource::new(follow, classifier)
                            .ok()
                            .map(|s| Box::new(s) as Box<dyn PacketSource + Send>)
                    } else {
                        dart_packet::trace::TraceReader::new(follow)
                            .ok()
                            .map(|s| Box::new(s) as Box<dyn PacketSource + Send>)
                    }
                };
                // Open eagerly once so a missing file fails loudly at
                // startup instead of burning the retry budget.
                std::fs::File::open(input).map_err(|e| format!("open {input}: {e}"))?;
                let mut source =
                    Reconnecting::new(Box::new(open)).with_strict_decode(strict_decode);
                daemon.watch_source(source.counters());
                Ok((
                    run(daemon, &mut source)?,
                    "follow (tail until shutdown)".to_string(),
                ))
            }
            "cycle" => {
                let (packets, _) = load_file(input, internal)?;
                let mut source = CycleSource::new(packets);
                if let Some(n) = passes {
                    source = source.with_passes(n);
                }
                let report = run(daemon, &mut source)?;
                let note = format!("cycle ({} passes completed)", source.passes_completed());
                Ok((report, note))
            }
            _ => {
                let (packets, _) = load_file(input, internal)?;
                let mut source = SliceSource::new(&packets);
                Ok((
                    run(daemon, &mut source)?,
                    "once (drain and exit)".to_string(),
                ))
            }
        })();
        // Stop the signal watcher before propagating any error so a
        // failed run never leaks the polling thread.
        watcher_done.store(true, Ordering::Relaxed);
        let _ = watcher.join();
        let (report, mode_note) = outcome?;
        let mut out = String::new();
        writeln!(out, "listened          : http://{addr}").expect("string write");
        writeln!(out, "mode              : {mode_note}").expect("string write");
        writeln!(out, "packets           : {}", report.packets).expect("string write");
        writeln!(out, "samples           : {}", report.stats.samples).expect("string write");
        writeln!(out, "epoch rotations   : {}", report.rotations).expect("string write");
        writeln!(out, "reloads           : {}", report.reloads).expect("string write");
        writeln!(out, "checkpoints       : {}", report.checkpoints).expect("string write");
        writeln!(
            out,
            "restored          : {}",
            if report.restored { "yes" } else { "no" }
        )
        .expect("string write");
        writeln!(
            out,
            "ended by          : {}",
            if report.shutdown_requested {
                "shutdown request"
            } else {
                "source drained"
            }
        )
        .expect("string write");
        writeln!(
            out,
            "supervisor        : {}",
            if report.health.healthy() {
                "healthy"
            } else {
                "degraded"
            }
        )
        .expect("string write");
        Ok(out)
    }
}

/// `dartmon scenarios`: run the adversarial scenario matrix — generated
/// mixed TCP + QUIC captures judged engine-by-engine (the Dart engines by
/// the SEQ/ACK oracle, `spin` by edge truth, `dart-hist` by ±1-bucket
/// quantile tolerance) — and persist per-run scorecard artifacts.
fn scenarios(opts: &Options) -> Result<String, String> {
    let scale = opts.get_num("scale", 0.2f64)?;
    if !scale.is_finite() || scale <= 0.0 {
        return Err("--scale must be positive".to_string());
    }
    let seed = opts.get_num("seed", 0xD1A7u64)?;
    let fault_seed = match opts.get("fault-seed") {
        None => None,
        Some(_) => Some(opts.get_num("fault-seed", 0u64)?),
    };
    let kinds: Vec<ScenarioKind> = match opts.get("scenario").unwrap_or("all") {
        "all" => ScenarioKind::ALL.to_vec(),
        spec => spec
            .split(',')
            .map(|s| s.trim())
            .filter(|s| !s.is_empty())
            .map(|s| {
                ScenarioKind::parse(s).ok_or_else(|| {
                    format!(
                        "unknown --scenario {s:?} (expected quic-mix | churn-storm | \
                         interception | wireless-tail | all)"
                    )
                })
            })
            .collect::<Result<_, _>>()?,
    };
    if kinds.is_empty() {
        return Err("--scenario: empty selection".to_string());
    }
    let backend = backend_flag(opts)?;
    let mut outcomes = Vec::new();
    for kind in kinds {
        outcomes.push(run_scenario(
            &ScenarioConfig::clean(kind, scale, seed).with_backend(backend),
        ));
        if let Some(fs) = fault_seed {
            outcomes.push(run_scenario(
                &ScenarioConfig::stressed(kind, scale, seed, fs).with_backend(backend),
            ));
        }
    }
    let dir = match opts.get("out") {
        Some(d) => std::path::PathBuf::from(d),
        None => scenario_artifact_dir(),
    };
    let summary = write_scorecards(&dir, &outcomes)
        .map_err(|e| format!("write scorecards to {}: {e}", dir.display()))?;
    let mut out = String::new();
    for o in &outcomes {
        writeln!(out, "{o}").expect("string write");
    }
    writeln!(out, "scorecards: {}", summary.display()).expect("string write");
    let all_pass = outcomes.iter().all(|o| o.pass());
    writeln!(
        out,
        "scenario verdict: {} ({} runs)",
        if all_pass { "PASS" } else { "FAIL" },
        outcomes.len()
    )
    .expect("string write");
    Ok(out)
}

/// `dartmon chaos`: replay a trace through the supervised sharded engine
/// with a seeded runtime fault injected, under one or all failure
/// policies, and report whether the degraded output held the harness
/// invariants (conservation, soundness, bounded loss).
fn chaos(input: &str, opts: &Options) -> Result<String, String> {
    let (packets, _) = load_file(input, internal_prefix(opts)?)?;
    let engine = engine_config(opts)?;
    let seed = opts.get_num("seed", 0xC405u64)?;
    let fault = opts.get("fault").unwrap_or("panic");
    if !matches!(fault, "panic" | "stall" | "slow") {
        return Err(format!(
            "unknown --fault {fault:?} (expected panic | stall | slow)"
        ));
    }
    let policies: Vec<FailurePolicy> = match opts.get("failure-policy").unwrap_or("all") {
        "all" => vec![
            FailurePolicy::FailFast,
            FailurePolicy::RestartShard,
            FailurePolicy::ShedLoad,
        ],
        one => vec![one
            .parse()
            .map_err(|e: String| format!("--failure-policy: {e}"))?],
    };
    let mut out = String::new();
    let mut all_pass = true;
    for policy in policies {
        let mut cfg = match fault {
            "stall" => ChaosConfig::seeded_stall(seed, packets.len(), policy),
            "slow" => ChaosConfig::seeded_slow(seed, policy),
            _ => ChaosConfig::seeded_panic(seed, packets.len(), policy),
        };
        cfg.engine = engine;
        let report = run_chaos(&cfg, &packets);
        all_pass &= report.pass();
        writeln!(out, "{report}\n").expect("string write");
    }
    writeln!(
        out,
        "chaos verdict: {} (process survived every injected fault)",
        if all_pass { "PASS" } else { "FAIL" }
    )
    .expect("string write");
    Ok(out)
}

/// Where the telemetry run should land, parsed from the shared flags.
/// Validated even in feature-off builds so the flags fail loudly instead
/// of being silently ignored.
struct TelemetrySinks {
    jsonl: Option<String>,
    prom: Option<String>,
    events: Option<String>,
    interval: u64,
}

fn telemetry_sinks(opts: &Options) -> Result<TelemetrySinks, String> {
    let sinks = TelemetrySinks {
        jsonl: opts.get("metrics-out").map(String::from),
        prom: opts.get("metrics-prom").map(String::from),
        events: opts.get("events-out").map(String::from),
        interval: opts.get_num("metrics-interval", 100_000u64)?,
    };
    if sinks.jsonl.is_none() && opts.get("metrics-interval").is_some() {
        return Err("--metrics-interval needs --metrics-out".to_string());
    }
    if sinks.interval == 0 {
        return Err("--metrics-interval must be at least 1".to_string());
    }
    #[cfg(not(feature = "telemetry"))]
    if sinks.jsonl.is_some() || sinks.prom.is_some() || sinks.events.is_some() {
        return Err("this dartmon was built without the `telemetry` feature; \
             rebuild with default features to export metrics"
            .to_string());
    }
    Ok(sinks)
}

/// Cap a requested shard count at the host's parallelism: shards beyond
/// the core count measure oversubscription, not speedup (the throughput
/// benchmark applies the same cap). Warns on stderr when it bites.
fn clamp_shards(requested: usize) -> usize {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if requested > parallelism {
        eprintln!(
            "warning: --shards {requested} exceeds available_parallelism={parallelism}; \
             capping to {parallelism}"
        );
        parallelism
    } else {
        requested
    }
}

/// Resolve the `--engine`/`--shards` pair the way `analyze` documents it:
/// `--shards N` (capped at `available_parallelism`) picks `dart-sharded-N`
/// unless `--engine` overrides; `--backend` picks the matching serial Dart
/// entry.
fn resolve_engine(opts: &Options, registry: &EngineRegistry) -> Result<(String, usize), String> {
    let shards = opts.get_num("shards", 1usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let shards = clamp_shards(shards);
    let default_engine = if shards <= 1 {
        match backend_flag(opts)? {
            Backend::Exact => "dart".to_string(),
            Backend::Sketch => "dart@sketch".to_string(),
            Backend::Precision => "dart@precision".to_string(),
        }
    } else {
        format!("dart-sharded-{shards}")
    };
    let engine = opts.get("engine").unwrap_or(&default_engine).to_string();
    registry
        .judgement(&engine)
        .map_err(|e| format!("--engine: {e}"))?;
    Ok((engine, shards))
}

fn internal_prefix(opts: &Options) -> Result<(Ipv4Addr, u8), String> {
    parse_prefix(opts.get("internal-prefix").unwrap_or("10.0.0.0/8"))
}

fn generate(out: &str, opts: &Options) -> Result<String, String> {
    let connections = opts.get_num("connections", 500usize)?;
    let duration_secs = opts.get_num("duration-secs", 10u64)?;
    let seed = opts.get_num("seed", 0xDA27u64)?;
    let trace = campus(CampusConfig {
        connections,
        duration: duration_secs * SECOND,
        seed,
        ..CampusConfig::default()
    });
    save_file(out, &trace.packets)?;
    Ok(format!(
        "wrote {} packets from {} connections ({} complete) to {out}\n",
        trace.packets.len(),
        trace.conns.len(),
        trace.conns.iter().filter(|c| c.complete).count()
    ))
}

/// The `--backend` flag: which flow-state backend family the Dart config
/// uses (`exact` reference tables, `sketch`, or `precision` admission).
fn backend_flag(opts: &Options) -> Result<Backend, String> {
    match opts.get("backend") {
        None => Ok(Backend::Exact),
        Some(s) => s.parse().map_err(|e| format!("--backend: {e}")),
    }
}

fn engine_config(opts: &Options) -> Result<DartConfig, String> {
    let leg = match opts.get("leg").unwrap_or("external") {
        "external" => Leg::External,
        "internal" => Leg::Internal,
        "both" => Leg::Both,
        other => return Err(format!("unknown --leg {other:?}")),
    };
    let pt = opts.get_num("pt", 1usize << 17)?;
    let stages = opts.get_num("stages", 1usize)?;
    let rt = opts.get_num("rt", 1usize << 20)?;
    let max_recirc = opts.get_num("max-recirc", 1u32)?;
    Ok(DartConfig::default()
        .with_leg(leg)
        .with_rt(rt)
        .with_pt(pt, stages)
        .with_max_recirc(max_recirc)
        .with_backend(backend_flag(opts)?))
}

/// Expand an `--engine` flag into validated registry names: a single name,
/// a comma-separated list, or `all` (every statically registered engine).
fn engine_selection(
    opts: &Options,
    registry: &EngineRegistry,
    default: &str,
) -> Result<Vec<String>, String> {
    let spec = opts.get("engine").unwrap_or(default);
    let names: Vec<String> = if spec == "all" {
        registry.names().iter().map(|s| s.to_string()).collect()
    } else {
        spec.split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect()
    };
    if names.is_empty() {
        return Err("--engine: empty selection".to_string());
    }
    for name in &names {
        registry
            .judgement(name)
            .map_err(|e| format!("--engine: {e}"))?;
    }
    Ok(names)
}

fn analyze(input: &str, opts: &Options) -> Result<String, String> {
    let cfg = engine_config(opts)?;
    let registry = EngineRegistry::standard();
    let (engine, shards) = resolve_engine(opts, &registry)?;
    let sinks = telemetry_sinks(opts)?;
    let (packets, skipped) = load_file(input, internal_prefix(opts)?)?;

    #[cfg(feature = "telemetry")]
    let (built, samples, stats, telemetry_note) = {
        let metrics = MetricRegistry::new();
        let events = EventLog::new(256);
        let mut built = registry.build_instrumented(&engine, &cfg, &metrics)?;
        events.info(
            "replay",
            "run start",
            &[
                ("engine", &engine),
                ("input", input),
                ("packets", &packets.len().to_string()),
            ],
        );
        let mut samples: Vec<RttSample> = Vec::new();
        let mut jsonl = String::new();
        let mut snapshots = 0u64;
        let stats = run_monitor_ticked(
            built.monitor.as_mut(),
            SliceSource::new(&packets),
            &mut samples,
            sinks.interval,
            |processed, done| {
                if sinks.jsonl.is_none() {
                    return;
                }
                let snap = metrics.scrape();
                jsonl.push_str(&snap.jsonl_line(&[("packets", processed), ("final", done as u64)]));
                jsonl.push('\n');
                snapshots += 1;
                events.info(
                    "replay",
                    if done {
                        "final snapshot"
                    } else {
                        "periodic snapshot"
                    },
                    &[("packets", &processed.to_string())],
                );
            },
        )
        .expect("slice sources are infallible");
        events.info(
            "replay",
            "run finish",
            &[("samples", &samples.len().to_string())],
        );
        let mut note = String::new();
        if let Some(path) = &sinks.jsonl {
            std::fs::write(path, &jsonl).map_err(|e| format!("write {path}: {e}"))?;
            writeln!(
                note,
                "metrics           : {snapshots} snapshots (every {} pkts) -> {path}",
                sinks.interval
            )
            .expect("string write");
        }
        if let Some(path) = &sinks.prom {
            std::fs::write(path, metrics.scrape().prometheus())
                .map_err(|e| format!("write {path}: {e}"))?;
            writeln!(note, "prometheus        : {path}").expect("string write");
        }
        if let Some(path) = &sinks.events {
            std::fs::write(path, events.to_jsonl()).map_err(|e| format!("write {path}: {e}"))?;
            writeln!(
                note,
                "events            : {} entries -> {path}",
                events.len_logged()
            )
            .expect("string write");
        }
        (built, samples, stats, note)
    };
    #[cfg(not(feature = "telemetry"))]
    let (built, samples, stats, telemetry_note) = {
        let _ = &sinks;
        let mut built = registry.build(&engine, &cfg)?;
        let (samples, stats) = run_monitor_slice(built.monitor.as_mut(), &packets);
        (built, samples, stats, String::new())
    };

    if let Some(csv) = opts.get("csv") {
        let mut text = String::from("ts_ns,src,sport,dst,dport,eack,rtt_ns\n");
        for s in &samples {
            writeln!(
                text,
                "{},{},{},{},{},{},{}",
                s.ts,
                s.flow.src_ip,
                s.flow.src_port,
                s.flow.dst_ip,
                s.flow.dst_port,
                s.eack.raw(),
                s.rtt
            )
            .expect("string write");
        }
        std::fs::write(csv, text).map_err(|e| format!("write {csv}: {e}"))?;
    }

    let mut dist = RttDistribution::from_samples(samples.iter().map(|s| s.rtt));
    let mut out = String::new();
    writeln!(
        out,
        "input             : {input} ({} packets, {skipped} skipped)",
        packets.len()
    )
    .unwrap();
    writeln!(
        out,
        "engine            : {} — {}",
        built.monitor.name(),
        built.monitor.describe()
    )
    .unwrap();
    writeln!(
        out,
        "config            : {:?} leg, PT {:?}, RT {:?}, recirc<={}, shards={shards}",
        cfg.leg, cfg.pt, cfg.rt, cfg.max_recirc
    )
    .unwrap();
    writeln!(out, "samples           : {}", dist.len()).unwrap();
    for (label, p) in [("p50", 50.0), ("p90", 90.0), ("p95", 95.0), ("p99", 99.0)] {
        if let Some(v) = dist.percentile(p) {
            writeln!(out, "{label:<18}: {:.3} ms", v as f64 / 1e6).unwrap();
        }
    }
    writeln!(out, "tracked data pkts : {}", stats.seq_tracked).unwrap();
    writeln!(out, "retransmissions   : {}", stats.seq_retransmission).unwrap();
    writeln!(out, "range collapses   : {}", stats.range_collapses).unwrap();
    writeln!(out, "optimistic ACKs   : {}", stats.ack_optimistic).unwrap();
    writeln!(out, "recirc / packet   : {:.4}", stats.recirc_per_packet()).unwrap();
    out.push_str(&telemetry_note);
    Ok(out)
}

/// `dartmon stats`: run one engine and print the full metric snapshot
/// through the shared `dart-telemetry` renderer.
fn stats_report(input: &str, opts: &Options) -> Result<String, String> {
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (input, opts);
        Err("`dartmon stats` needs the `telemetry` feature; \
             this binary was built with --no-default-features"
            .to_string())
    }
    #[cfg(feature = "telemetry")]
    {
        let (packets, skipped) = load_file(input, internal_prefix(opts)?)?;
        let cfg = engine_config(opts)?;
        let registry = EngineRegistry::standard();
        let (engine, _) = resolve_engine(opts, &registry)?;
        let metrics = MetricRegistry::new();
        let mut built = registry.build_instrumented(&engine, &cfg, &metrics)?;
        let (samples, _) = run_monitor_slice(built.monitor.as_mut(), &packets);
        let mut out = String::new();
        writeln!(
            out,
            "input  : {input} ({} packets, {skipped} skipped)",
            packets.len()
        )
        .expect("string write");
        writeln!(out, "engine : {}", built.monitor.describe()).expect("string write");
        writeln!(out, "samples: {}", samples.len()).expect("string write");
        out.push('\n');
        out.push_str(&metrics.scrape().render_text());
        Ok(out)
    }
}

fn compare(input: &str, opts: &Options) -> Result<String, String> {
    let (packets, _) = load_file(input, internal_prefix(opts)?)?;
    let cfg = engine_config(opts)?;
    let registry = EngineRegistry::standard();
    let names = engine_selection(opts, &registry, "all")?;
    let mut out = String::new();
    writeln!(
        out,
        "{:<22} {:>9} {:>10} {:>10}",
        "tool", "samples", "p50 (ms)", "p99 (ms)"
    )
    .unwrap();
    for name in names {
        let mut built = registry.build(&name, &cfg)?;
        let (samples, _) = run_monitor_slice(built.monitor.as_mut(), &packets);
        let mut d = RttDistribution::from_samples(samples.iter().map(|s| s.rtt));
        writeln!(
            out,
            "{name:<22} {:>9} {:>10.2} {:>10.2}",
            d.len(),
            d.percentile(50.0).unwrap_or(0) as f64 / 1e6,
            d.percentile(99.0).unwrap_or(0) as f64 / 1e6
        )
        .expect("string write");
    }
    Ok(out)
}

fn diff(input: &str, opts: &Options) -> Result<String, String> {
    let (packets, _) = load_file(input, internal_prefix(opts)?)?;
    let shards = opts.get_num("shards", 4usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let shards = clamp_shards(shards);
    let registry = EngineRegistry::standard();
    let selection = engine_selection(opts, &registry, "tcptrace,fridge")?;
    let shard_list = if shards == 1 {
        vec![1]
    } else {
        vec![1, shards]
    };
    // The serial Dart row is labeled by its backend so a `--backend` run
    // reads as the registry engine it actually is.
    let serial_name = match backend_flag(opts)? {
        Backend::Exact => "dart",
        Backend::Sketch => "dart@sketch",
        Backend::Precision => "dart@precision",
    };
    let shard_names: Vec<String> = shard_list
        .iter()
        .map(|&s| {
            if s <= 1 {
                serial_name.to_string()
            } else {
                format!("dart-sharded-{s}")
            }
        })
        .collect();
    // The Dart rows come from --shards; --engine adds everything else.
    let baseline_engines: Vec<String> = selection
        .into_iter()
        .filter(|n| !shard_names.contains(n))
        .collect();
    let cfg = DiffConfig {
        engine: engine_config(opts)?,
        shards: shard_list,
        impossible_budget: opts.get_num("impossible-budget", 0u64)?,
        baselines: !baseline_engines.is_empty(),
        baseline_engines,
    };
    let sinks = telemetry_sinks(opts)?;
    #[cfg(feature = "telemetry")]
    let report = {
        let metrics = MetricRegistry::new();
        let events = EventLog::new(256);
        let report = match opts.get("fault-seed") {
            None => run_diff_instrumented(&cfg, &packets, &metrics, &events),
            Some(_) => {
                let seed = opts.get_num("fault-seed", 0u64)?;
                run_diff_faulted_instrumented(
                    &cfg,
                    FaultConfig::stress(seed),
                    &packets,
                    &metrics,
                    &events,
                )
            }
        };
        if let Some(path) = &sinks.jsonl {
            let mut line = metrics
                .scrape()
                .jsonl_line(&[("packets", packets.len() as u64), ("final", 1)]);
            line.push('\n');
            std::fs::write(path, line).map_err(|e| format!("write {path}: {e}"))?;
        }
        if let Some(path) = &sinks.prom {
            std::fs::write(path, metrics.scrape().prometheus())
                .map_err(|e| format!("write {path}: {e}"))?;
        }
        if let Some(path) = &sinks.events {
            std::fs::write(path, events.to_jsonl()).map_err(|e| format!("write {path}: {e}"))?;
        }
        report
    };
    #[cfg(not(feature = "telemetry"))]
    let report = {
        let _ = &sinks;
        match opts.get("fault-seed") {
            None => run_diff(&cfg, &packets),
            Some(_) => {
                let seed = opts.get_num("fault-seed", 0u64)?;
                run_diff_faulted(&cfg, FaultConfig::stress(seed), &packets)
            }
        }
    };
    let mut out = report.to_string();
    out.push('\n');
    // Engine counters through the shared dart-telemetry row formatter —
    // one rendering path with `dartmon stats` (not EngineStats debug).
    out.push_str(&report.counters_text());
    Ok(out)
}

fn detect(input: &str, opts: &Options) -> Result<String, String> {
    let (packets, _) = load_file(input, internal_prefix(opts)?)?;
    let window = opts.get_num("window", 8u32)?;
    let ratio = opts.get_num("ratio", 2.0f64)?;
    let (samples, _) = dart_core::run_trace(DartConfig::default(), &packets);
    let mut det = ChangeDetector::new(ChangeDetectorConfig {
        window,
        ratio,
        ..ChangeDetectorConfig::default()
    });
    let mut out = String::new();
    writeln!(out, "samples: {}", samples.len()).unwrap();
    for s in &samples {
        match det.offer(s.rtt, s.ts) {
            Verdict::Suspected { baseline, observed } => writeln!(
                out,
                "t={:9.3}s SUSPECTED min-RTT {:.1} -> {:.1} ms",
                s.ts as f64 / 1e9,
                baseline as f64 / 1e6,
                observed as f64 / 1e6
            )
            .expect("string write"),
            Verdict::Confirmed {
                baseline,
                observed,
                samples_to_confirm,
            } => writeln!(
                out,
                "t={:9.3}s CONFIRMED min-RTT {:.1} -> {:.1} ms ({samples_to_confirm} samples)",
                s.ts as f64 / 1e9,
                baseline as f64 / 1e6,
                observed as f64 / 1e6
            )
            .expect("string write"),
            Verdict::Normal => {}
        }
    }
    if !out.contains("SUSPECTED") {
        writeln!(out, "no abnormal min-RTT changes detected").unwrap();
    }
    Ok(out)
}

fn resources() -> Result<String, String> {
    let mut out = String::new();
    for (name, params, profile) in [
        (
            "Tofino 1 (ingress+egress)",
            DartProgramParams {
                spans_egress: true,
                ..DartProgramParams::default()
            },
            TargetProfile::tofino1(),
        ),
        (
            "Tofino 2 (ingress only)",
            DartProgramParams::default(),
            TargetProfile::tofino2(),
        ),
    ] {
        let report = estimate(&dart_program(params), &profile);
        writeln!(out, "== {name} ==").unwrap();
        writeln!(out, "{report}").unwrap();
        writeln!(out, "fits: {}\n", report.fits()).unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::parse;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(name)
            .to_str()
            .unwrap()
            .to_string()
    }

    fn run_line(line: &[&str]) -> Result<String, String> {
        let args: Vec<String> = line.iter().map(|s| s.to_string()).collect();
        let (cmd, opts) = parse(&args)?;
        run(cmd, &opts)
    }

    #[test]
    fn generate_then_analyze_then_compare_then_detect() {
        let path = tmp("dartmon_e2e.trace");
        let report = run_line(&[
            "generate",
            &path,
            "--connections",
            "80",
            "--duration-secs",
            "3",
        ])
        .unwrap();
        assert!(report.contains("wrote"));

        let report = run_line(&["analyze", &path]).unwrap();
        assert!(report.contains("samples"));
        assert!(report.contains("p50"));

        let report = run_line(&["compare", &path]).unwrap();
        for name in [
            "dart",
            "dart-sharded-4",
            "tcptrace",
            "pping",
            "seglist",
            "lean",
        ] {
            assert!(report.contains(name), "missing {name} in:\n{report}");
        }

        let report = run_line(&["detect", &path]).unwrap();
        assert!(report.contains("samples:"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn engine_flag_selects_registry_entries() {
        let path = tmp("dartmon_engine.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "40",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        let report = run_line(&["analyze", &path, "--engine", "pping"]).unwrap();
        assert!(report.contains("pping"), "{report}");
        let report = run_line(&["compare", &path, "--engine", "dart,tcptrace"]).unwrap();
        assert!(
            report.contains("tcptrace") && !report.contains("fridge"),
            "{report}"
        );
        let report = run_line(&["diff", &path, "--engine", "all"]).unwrap();
        for name in ["dart", "tcptrace-quirk", "strawman", "lean", "verdict"] {
            assert!(report.contains(name), "missing {name} in:\n{report}");
        }
        let err = run_line(&["analyze", &path, "--engine", "nonsense"]).unwrap_err();
        assert!(err.contains("unknown engine"), "{err}");
        let err = run_line(&["compare", &path, "--engine", ","]).unwrap_err();
        assert!(err.contains("empty selection"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analyze_sharded_runs_and_reports() {
        let path = tmp("dartmon_shards.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "60",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        let serial = run_line(&["analyze", &path]).unwrap();
        assert!(serial.contains("shards=1"));
        // Shard counts are capped at the host's parallelism, so the
        // reported count adapts to the machine running the test.
        let par = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let sharded = run_line(&["analyze", &path, "--shards", "4"]).unwrap();
        assert!(
            sharded.contains(&format!("shards={}", 4.min(par))),
            "{sharded}"
        );
        assert!(sharded.contains("p50"));
        let capped = run_line(&["analyze", &path, "--shards", "4096"]).unwrap();
        assert!(capped.contains(&format!("shards={par}")), "{capped}");
        let err = run_line(&["analyze", &path, "--shards", "0"]).unwrap_err();
        assert!(err.contains("at least 1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analyze_selects_backends_by_flag() {
        let path = tmp("dartmon_backend.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "60",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        let sketch = run_line(&["analyze", &path, "--backend", "sketch"]).unwrap();
        assert!(sketch.contains("dart@sketch"), "{sketch}");
        let precision = run_line(&["analyze", &path, "--backend", "precision"]).unwrap();
        assert!(precision.contains("dart@precision"), "{precision}");
        let exact = run_line(&["analyze", &path, "--backend", "exact"]).unwrap();
        assert!(!exact.contains("dart@"), "{exact}");
        let err = run_line(&["analyze", &path, "--backend", "nonsense"]).unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analyze_writes_csv() {
        let path = tmp("dartmon_csv.trace");
        let csv = tmp("dartmon_out.csv");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "40",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        run_line(&["analyze", &path, "--csv", &csv]).unwrap();
        let text = std::fs::read_to_string(&csv).unwrap();
        assert!(text.starts_with("ts_ns,src,sport,dst,dport,eack,rtt_ns"));
        assert!(text.lines().count() > 1);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&csv);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn replay_emits_periodic_snapshots_and_prometheus_validates() {
        let path = tmp("dartmon_metrics.trace");
        let jsonl = tmp("dartmon_metrics.jsonl");
        let prom = tmp("dartmon_metrics.prom");
        let events = tmp("dartmon_events.jsonl");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "120",
            "--duration-secs",
            "3",
        ])
        .unwrap();
        let report = run_line(&[
            "--metrics-out",
            &jsonl,
            "--metrics-interval",
            "2000",
            "--metrics-prom",
            &prom,
            "--events-out",
            &events,
            "replay",
            &path,
        ])
        .unwrap();
        assert!(report.contains("metrics"), "{report}");

        let series = std::fs::read_to_string(&jsonl).unwrap();
        assert!(
            series.lines().count() >= 2,
            "expected >= 2 snapshots:\n{series}"
        );
        for needle in [
            "dart_shard_packets_total",
            "dart_rtt_ns",
            "dart_recirc_queue_depth",
            "\"buckets\":[",
        ] {
            assert!(series.contains(needle), "missing {needle} in snapshots");
        }
        let check = dart_telemetry::check_jsonl_series(&series);
        assert!(check.ok(), "jsonl schema errors: {:?}", check.errors);

        let text = std::fs::read_to_string(&prom).unwrap();
        let check = dart_telemetry::check_prometheus(&text);
        assert!(check.ok(), "prometheus schema errors: {:?}", check.errors);

        let log = std::fs::read_to_string(&events).unwrap();
        assert!(log.contains("\"message\":\"run start\""), "{log}");
        assert!(log.contains("periodic snapshot"), "{log}");
        for f in [&path, &jsonl, &prom, &events] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn stats_prints_the_metric_table() {
        let path = tmp("dartmon_stats.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "40",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        let report = run_line(&["stats", &path]).unwrap();
        for needle in ["dart_shard_packets_total", "dart_rtt_ns", "p99"] {
            assert!(report.contains(needle), "missing {needle} in:\n{report}");
        }
        let par = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let sharded = run_line(&["stats", &path, "--shards", "2"]).unwrap();
        // With ≥2 cores the second shard's series appears; on a 1-core
        // host the count is capped and only shard 0 reports.
        let expect = if par >= 2 {
            "shard=\"1\""
        } else {
            "shard=\"0\""
        };
        assert!(sharded.contains(expect), "{sharded}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn metrics_interval_without_out_errors() {
        let err = run_line(&["replay", "x.trace", "--metrics-interval", "5"]).unwrap_err();
        assert!(err.contains("--metrics-out"), "{err}");
    }

    #[test]
    fn diff_renders_counters_through_shared_formatter() {
        let path = tmp("dartmon_diff_counters.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "50",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        let report = run_line(&["diff", &path]).unwrap();
        assert!(report.contains("counters[dart]"), "{report}");
        assert!(report.contains("verdict: PASS"), "{report}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn diff_reports_pass_on_clean_and_faulted_traces() {
        let path = tmp("dartmon_diff.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "50",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        let clean = run_line(&["diff", &path]).unwrap();
        assert!(clean.contains("oracle:"));
        // The default 4-shard row is capped at the host's parallelism.
        let par = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if par >= 4 {
            assert!(clean.contains("dart-sharded-4"));
        }
        assert!(clean.contains("tcptrace"));
        assert!(clean.contains("verdict: PASS"));
        let faulted = run_line(&["diff", &path, "--fault-seed", "9"]).unwrap();
        assert!(faulted.contains("faults:"));
        assert!(faulted.contains("verdict: PASS"));
        let err = run_line(&["diff", &path, "--shards", "0"]).unwrap_err();
        assert!(err.contains("at least 1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn chaos_sweep_survives_and_passes() {
        let path = tmp("dartmon_chaos.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "40",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        let report = run_line(&["chaos", &path]).unwrap();
        for needle in [
            "chaos[failfast]",
            "chaos[restart]",
            "chaos[shed]",
            "chaos verdict: PASS",
        ] {
            assert!(report.contains(needle), "missing {needle} in:\n{report}");
        }
        let one = run_line(&["chaos", &path, "--failure-policy", "restart"]).unwrap();
        assert!(one.contains("chaos[restart]"), "{one}");
        assert!(!one.contains("chaos[failfast]"), "{one}");
        let err = run_line(&["chaos", &path, "--failure-policy", "abort"]).unwrap_err();
        assert!(err.contains("unknown failure policy"), "{err}");
        let err = run_line(&["chaos", &path, "--fault", "meteor"]).unwrap_err();
        assert!(err.contains("unknown --fault"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scenarios_matrix_runs_and_writes_scorecards() {
        let dir = tmp("dartmon_scenarios_out");
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_line(&[
            "scenarios",
            "--scale",
            "0.1",
            "--scenario",
            "quic-mix",
            "--fault-seed",
            "7",
            "--out",
            &dir,
        ])
        .unwrap();
        assert!(report.contains("scenario[quic-mix]"), "{report}");
        assert!(report.contains("spin"), "{report}");
        assert!(report.contains("dart-hist"), "{report}");
        assert!(
            report.contains("scenario verdict: PASS (2 runs)"),
            "{report}"
        );
        let base = std::path::Path::new(&dir);
        for name in ["scorecard.txt", "quic-mix.txt", "quic-mix-stressed.txt"] {
            assert!(base.join(name).exists(), "missing artifact {name}");
        }
        let summary = std::fs::read_to_string(base.join("scorecard.txt")).unwrap();
        assert!(!summary.contains("FAIL"), "{summary}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenarios_backend_flag_tags_the_scorecards() {
        let dir = tmp("dartmon_scenarios_backend_out");
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_line(&[
            "scenarios",
            "--scale",
            "0.1",
            "--scenario",
            "quic-mix",
            "--backend",
            "sketch",
            "--out",
            &dir,
        ])
        .unwrap();
        assert!(report.contains("backend sketch"), "{report}");
        assert!(
            std::path::Path::new(&dir)
                .join("quic-mix@sketch.txt")
                .exists(),
            "backend-suffixed scorecard missing"
        );
        let err = run_line(&["scenarios", "--backend", "nonsense"]).unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn serve_once_drains_and_reports() {
        let path = tmp("dartmon_serve_once.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "60",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        let report = run_line(&["serve", &path, "--listen", "127.0.0.1:0"]).unwrap();
        assert!(report.contains("mode              : once"), "{report}");
        assert!(
            report.contains("ended by          : source drained"),
            "{report}"
        );
        assert!(report.contains("supervisor        : healthy"), "{report}");
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn serve_cycle_rotates_epochs_over_a_looped_trace() {
        let path = tmp("dartmon_serve_cycle.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "60",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        let report = run_line(&[
            "serve",
            &path,
            "--listen",
            "127.0.0.1:0",
            "--mode",
            "cycle",
            "--passes",
            "3",
            "--rotate-millis",
            "1",
            "--retain-secs",
            "1",
        ])
        .unwrap();
        assert!(report.contains("cycle (3 passes completed)"), "{report}");
        let rotations: u64 = report
            .lines()
            .find(|l| l.starts_with("epoch rotations"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().parse().ok())
            .expect("rotation count line");
        assert!(rotations >= 1, "{report}");
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn serve_rejects_bad_flags() {
        let err = run_line(&["serve", "x.trace", "--mode", "sideways"]).unwrap_err();
        assert!(err.contains("unknown --mode"), "{err}");
        let err = run_line(&["serve", "x.trace", "--passes", "2"]).unwrap_err();
        assert!(err.contains("--passes needs --mode cycle"), "{err}");
        let err = run_line(&["serve", "x.trace", "--shards", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn serve_without_telemetry_points_at_the_feature() {
        let err = run_line(&["serve", "x.trace"]).unwrap_err();
        assert!(err.contains("telemetry"), "{err}");
    }

    #[test]
    fn scenarios_rejects_bad_flags() {
        let err = run_line(&["scenarios", "--scenario", "meteor"]).unwrap_err();
        assert!(err.contains("unknown --scenario"), "{err}");
        let err = run_line(&["scenarios", "--scale", "0"]).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err = run_line(&["scenarios", "--scenario", ","]).unwrap_err();
        assert!(err.contains("empty selection"), "{err}");
    }

    #[test]
    fn resources_report_includes_both_targets() {
        let r = run_line(&["resources"]).unwrap();
        assert!(r.contains("Tofino 1"));
        assert!(r.contains("Tofino 2"));
        assert!(r.contains("SRAM"));
    }

    #[test]
    fn help_is_usage() {
        let r = run_line(&["help"]).unwrap();
        assert!(r.contains("USAGE"));
    }

    #[test]
    fn bad_leg_flag_errors() {
        let path = tmp("dartmon_badleg.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "10",
            "--duration-secs",
            "1",
        ])
        .unwrap();
        let err = run_line(&["analyze", &path, "--leg", "sideways"]).unwrap_err();
        assert!(err.contains("unknown --leg"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_errors_cleanly() {
        let err = run_line(&["analyze", "/nonexistent/file.trace"]).unwrap_err();
        assert!(err.contains("read"));
    }
}
