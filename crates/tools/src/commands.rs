//! The `dartmon` subcommand implementations. Each returns the report text
//! it would print, keeping the logic testable.

use crate::cli::{Command, Options, USAGE};
use crate::io::{load_file, parse_prefix, save_file};
use dart_analytics::{ChangeDetector, ChangeDetectorConfig, RttDistribution, Verdict};
use dart_baselines::{
    run_tcptrace, Dapper, DapperConfig, Pping, PpingConfig, Strawman, StrawmanConfig,
    TcpTraceConfig,
};
use dart_core::{run_trace_sharded, DartConfig, Leg, RttSample};
use dart_packet::SECOND;
use dart_sim::scenario::{campus, CampusConfig};
use dart_switch::{dart_program, estimate, DartProgramParams, TargetProfile};
use dart_testkit::{run_diff, run_diff_faulted, DiffConfig, FaultConfig};
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// Execute a parsed command, returning the report text.
pub fn run(cmd: Command, opts: &Options) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Resources => resources(),
        Command::Generate { out } => generate(&out, opts),
        Command::Analyze { input } => analyze(&input, opts),
        Command::Compare { input } => compare(&input, opts),
        Command::Detect { input } => detect(&input, opts),
        Command::Diff { input } => diff(&input, opts),
    }
}

fn internal_prefix(opts: &Options) -> Result<(Ipv4Addr, u8), String> {
    parse_prefix(opts.get("internal-prefix").unwrap_or("10.0.0.0/8"))
}

fn generate(out: &str, opts: &Options) -> Result<String, String> {
    let connections = opts.get_num("connections", 500usize)?;
    let duration_secs = opts.get_num("duration-secs", 10u64)?;
    let seed = opts.get_num("seed", 0xDA27u64)?;
    let trace = campus(CampusConfig {
        connections,
        duration: duration_secs * SECOND,
        seed,
        ..CampusConfig::default()
    });
    save_file(out, &trace.packets)?;
    Ok(format!(
        "wrote {} packets from {} connections ({} complete) to {out}\n",
        trace.packets.len(),
        trace.conns.len(),
        trace.conns.iter().filter(|c| c.complete).count()
    ))
}

fn engine_config(opts: &Options) -> Result<DartConfig, String> {
    let leg = match opts.get("leg").unwrap_or("external") {
        "external" => Leg::External,
        "internal" => Leg::Internal,
        "both" => Leg::Both,
        other => return Err(format!("unknown --leg {other:?}")),
    };
    let pt = opts.get_num("pt", 1usize << 17)?;
    let stages = opts.get_num("stages", 1usize)?;
    let rt = opts.get_num("rt", 1usize << 20)?;
    let max_recirc = opts.get_num("max-recirc", 1u32)?;
    Ok(DartConfig::default()
        .with_leg(leg)
        .with_rt(rt)
        .with_pt(pt, stages)
        .with_max_recirc(max_recirc))
}

fn analyze(input: &str, opts: &Options) -> Result<String, String> {
    let (packets, skipped) = load_file(input, internal_prefix(opts)?)?;
    let cfg = engine_config(opts)?;
    let shards = opts.get_num("shards", 1usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let (samples, stats) = run_trace_sharded(cfg, shards, &packets);

    if let Some(csv) = opts.get("csv") {
        let mut text = String::from("ts_ns,src,sport,dst,dport,eack,rtt_ns\n");
        for s in &samples {
            writeln!(
                text,
                "{},{},{},{},{},{},{}",
                s.ts,
                s.flow.src_ip,
                s.flow.src_port,
                s.flow.dst_ip,
                s.flow.dst_port,
                s.eack.raw(),
                s.rtt
            )
            .expect("string write");
        }
        std::fs::write(csv, text).map_err(|e| format!("write {csv}: {e}"))?;
    }

    let mut dist = RttDistribution::from_samples(samples.iter().map(|s| s.rtt));
    let mut out = String::new();
    writeln!(
        out,
        "input             : {input} ({} packets, {skipped} skipped)",
        packets.len()
    )
    .unwrap();
    writeln!(
        out,
        "config            : {:?} leg, PT {:?}, RT {:?}, recirc<={}, shards={shards}",
        cfg.leg, cfg.pt, cfg.rt, cfg.max_recirc
    )
    .unwrap();
    writeln!(out, "samples           : {}", dist.len()).unwrap();
    for (label, p) in [("p50", 50.0), ("p90", 90.0), ("p95", 95.0), ("p99", 99.0)] {
        if let Some(v) = dist.percentile(p) {
            writeln!(out, "{label:<18}: {:.3} ms", v as f64 / 1e6).unwrap();
        }
    }
    writeln!(out, "tracked data pkts : {}", stats.seq_tracked).unwrap();
    writeln!(out, "retransmissions   : {}", stats.seq_retransmission).unwrap();
    writeln!(out, "range collapses   : {}", stats.range_collapses).unwrap();
    writeln!(out, "optimistic ACKs   : {}", stats.ack_optimistic).unwrap();
    writeln!(out, "recirc / packet   : {:.4}", stats.recirc_per_packet()).unwrap();
    Ok(out)
}

fn compare(input: &str, opts: &Options) -> Result<String, String> {
    let (packets, _) = load_file(input, internal_prefix(opts)?)?;
    let mut out = String::new();
    writeln!(
        out,
        "{:<22} {:>9} {:>10} {:>10}",
        "tool", "samples", "p50 (ms)", "p99 (ms)"
    )
    .unwrap();

    let mut row = |name: &str, samples: Vec<RttSample>| {
        let mut d = RttDistribution::from_samples(samples.iter().map(|s| s.rtt));
        writeln!(
            out,
            "{name:<22} {:>9} {:>10.2} {:>10.2}",
            d.len(),
            d.percentile(50.0).unwrap_or(0) as f64 / 1e6,
            d.percentile(99.0).unwrap_or(0) as f64 / 1e6
        )
        .expect("string write");
    };

    let (dart, _) = dart_core::run_trace(DartConfig::unlimited(), &packets);
    row("dart (unlimited)", dart);
    let cfg = DartConfig::default().with_rt(1 << 16).with_pt(1 << 14, 1);
    let (dart_hw, _) = dart_core::run_trace(cfg, &packets);
    row("dart (constrained)", dart_hw);
    let (tt, _) = run_tcptrace(TcpTraceConfig::default(), &packets);
    row("tcptrace", tt);
    let mut sm = Strawman::new(StrawmanConfig {
        slots: 1 << 14,
        ..StrawmanConfig::default()
    });
    let mut v: Vec<RttSample> = Vec::new();
    sm.process_trace(packets.iter(), &mut v);
    row("strawman", v);
    let mut dp = Dapper::new(DapperConfig::default());
    let mut v: Vec<RttSample> = Vec::new();
    dp.process_trace(packets.iter(), &mut v);
    row("dapper", v);
    let mut pp = Pping::new(PpingConfig::default());
    let mut v: Vec<RttSample> = Vec::new();
    pp.process_trace(packets.iter(), &mut v);
    row("pping", v);
    Ok(out)
}

fn diff(input: &str, opts: &Options) -> Result<String, String> {
    let (packets, _) = load_file(input, internal_prefix(opts)?)?;
    let shards = opts.get_num("shards", 4usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let cfg = DiffConfig {
        engine: engine_config(opts)?,
        shards: if shards == 1 {
            vec![1]
        } else {
            vec![1, shards]
        },
        impossible_budget: opts.get_num("impossible-budget", 0u64)?,
        baselines: true,
    };
    let report = match opts.get("fault-seed") {
        None => run_diff(&cfg, &packets),
        Some(_) => {
            let seed = opts.get_num("fault-seed", 0u64)?;
            run_diff_faulted(&cfg, FaultConfig::stress(seed), &packets)
        }
    };
    let mut out = report.to_string();
    out.push('\n');
    Ok(out)
}

fn detect(input: &str, opts: &Options) -> Result<String, String> {
    let (packets, _) = load_file(input, internal_prefix(opts)?)?;
    let window = opts.get_num("window", 8u32)?;
    let ratio = opts.get_num("ratio", 2.0f64)?;
    let (samples, _) = dart_core::run_trace(DartConfig::default(), &packets);
    let mut det = ChangeDetector::new(ChangeDetectorConfig {
        window,
        ratio,
        ..ChangeDetectorConfig::default()
    });
    let mut out = String::new();
    writeln!(out, "samples: {}", samples.len()).unwrap();
    for s in &samples {
        match det.offer(s.rtt, s.ts) {
            Verdict::Suspected { baseline, observed } => writeln!(
                out,
                "t={:9.3}s SUSPECTED min-RTT {:.1} -> {:.1} ms",
                s.ts as f64 / 1e9,
                baseline as f64 / 1e6,
                observed as f64 / 1e6
            )
            .expect("string write"),
            Verdict::Confirmed {
                baseline,
                observed,
                samples_to_confirm,
            } => writeln!(
                out,
                "t={:9.3}s CONFIRMED min-RTT {:.1} -> {:.1} ms ({samples_to_confirm} samples)",
                s.ts as f64 / 1e9,
                baseline as f64 / 1e6,
                observed as f64 / 1e6
            )
            .expect("string write"),
            Verdict::Normal => {}
        }
    }
    if !out.contains("SUSPECTED") {
        writeln!(out, "no abnormal min-RTT changes detected").unwrap();
    }
    Ok(out)
}

fn resources() -> Result<String, String> {
    let mut out = String::new();
    for (name, params, profile) in [
        (
            "Tofino 1 (ingress+egress)",
            DartProgramParams {
                spans_egress: true,
                ..DartProgramParams::default()
            },
            TargetProfile::tofino1(),
        ),
        (
            "Tofino 2 (ingress only)",
            DartProgramParams::default(),
            TargetProfile::tofino2(),
        ),
    ] {
        let report = estimate(&dart_program(params), &profile);
        writeln!(out, "== {name} ==").unwrap();
        writeln!(out, "{report}").unwrap();
        writeln!(out, "fits: {}\n", report.fits()).unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::parse;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(name)
            .to_str()
            .unwrap()
            .to_string()
    }

    fn run_line(line: &[&str]) -> Result<String, String> {
        let args: Vec<String> = line.iter().map(|s| s.to_string()).collect();
        let (cmd, opts) = parse(&args)?;
        run(cmd, &opts)
    }

    #[test]
    fn generate_then_analyze_then_compare_then_detect() {
        let path = tmp("dartmon_e2e.trace");
        let report = run_line(&[
            "generate",
            &path,
            "--connections",
            "80",
            "--duration-secs",
            "3",
        ])
        .unwrap();
        assert!(report.contains("wrote"));

        let report = run_line(&["analyze", &path]).unwrap();
        assert!(report.contains("samples"));
        assert!(report.contains("p50"));

        let report = run_line(&["compare", &path]).unwrap();
        assert!(report.contains("dart (unlimited)"));
        assert!(report.contains("tcptrace"));
        assert!(report.contains("pping"));

        let report = run_line(&["detect", &path]).unwrap();
        assert!(report.contains("samples:"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analyze_sharded_runs_and_reports() {
        let path = tmp("dartmon_shards.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "60",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        let serial = run_line(&["analyze", &path]).unwrap();
        assert!(serial.contains("shards=1"));
        let sharded = run_line(&["analyze", &path, "--shards", "4"]).unwrap();
        assert!(sharded.contains("shards=4"));
        assert!(sharded.contains("p50"));
        let err = run_line(&["analyze", &path, "--shards", "0"]).unwrap_err();
        assert!(err.contains("at least 1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analyze_writes_csv() {
        let path = tmp("dartmon_csv.trace");
        let csv = tmp("dartmon_out.csv");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "40",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        run_line(&["analyze", &path, "--csv", &csv]).unwrap();
        let text = std::fs::read_to_string(&csv).unwrap();
        assert!(text.starts_with("ts_ns,src,sport,dst,dport,eack,rtt_ns"));
        assert!(text.lines().count() > 1);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&csv);
    }

    #[test]
    fn diff_reports_pass_on_clean_and_faulted_traces() {
        let path = tmp("dartmon_diff.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "50",
            "--duration-secs",
            "2",
        ])
        .unwrap();
        let clean = run_line(&["diff", &path]).unwrap();
        assert!(clean.contains("oracle:"));
        assert!(clean.contains("dart-sharded-4"));
        assert!(clean.contains("tcptrace"));
        assert!(clean.contains("verdict: PASS"));
        let faulted = run_line(&["diff", &path, "--fault-seed", "9"]).unwrap();
        assert!(faulted.contains("faults:"));
        assert!(faulted.contains("verdict: PASS"));
        let err = run_line(&["diff", &path, "--shards", "0"]).unwrap_err();
        assert!(err.contains("at least 1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resources_report_includes_both_targets() {
        let r = run_line(&["resources"]).unwrap();
        assert!(r.contains("Tofino 1"));
        assert!(r.contains("Tofino 2"));
        assert!(r.contains("SRAM"));
    }

    #[test]
    fn help_is_usage() {
        let r = run_line(&["help"]).unwrap();
        assert!(r.contains("USAGE"));
    }

    #[test]
    fn bad_leg_flag_errors() {
        let path = tmp("dartmon_badleg.trace");
        run_line(&[
            "generate",
            &path,
            "--connections",
            "10",
            "--duration-secs",
            "1",
        ])
        .unwrap();
        let err = run_line(&["analyze", &path, "--leg", "sideways"]).unwrap_err();
        assert!(err.contains("unknown --leg"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_errors_cleanly() {
        let err = run_line(&["analyze", "/nonexistent/file.trace"]).unwrap_err();
        assert!(err.contains("read"));
    }
}
