//! Process-wide shutdown requests: the bridge from SIGINT/SIGTERM to the
//! daemon's control plane.
//!
//! This library forbids `unsafe`, so the actual signal-handler
//! registration lives in the `dartmon` binary (see `src/bin/dartmon.rs`);
//! the handler body calls [`request`], which is a single atomic store —
//! async-signal-safe by construction. A long-lived `serve` polls [`take`]
//! from a watcher thread and routes each request into its observability
//! server exactly as `POST /control/shutdown` would, so a Ctrl-C or a
//! `systemctl stop` drains the feed loop, writes the shutdown checkpoint,
//! and exits cleanly instead of dying mid-write.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

/// Record a shutdown request. One atomic store, no allocation, no locks:
/// safe to call from a signal handler.
pub fn request() {
    REQUESTED.store(true, Ordering::Release);
}

/// Consume a pending request, if any. Exactly one caller observes each
/// request, so concurrently running daemons (as in the test suite) never
/// double-consume a single signal.
pub fn take() -> bool {
    REQUESTED.swap(false, Ordering::AcqRel)
}

/// Whether a request is pending, without consuming it.
pub fn pending() -> bool {
    REQUESTED.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_consumes_exactly_one_request() {
        // Serialized against nothing: this is the only lib test touching
        // the flag, and the serve-level test lives in its own binary.
        while take() {}
        assert!(!pending());
        request();
        request();
        assert!(pending());
        assert!(take());
        assert!(!take(), "a second take must see the flag already consumed");
        assert!(!pending());
    }
}
