//! Ingest-failure recovery: a [`PacketSource`] combinator that survives
//! decode errors and transport outages instead of aborting the run.
//!
//! A long-lived monitoring daemon reads from things that fail: a fifo whose
//! producer restarts, an NFS-mounted capture that stalls, a trace with a
//! few torn records at a rotation boundary. [`Reconnecting`] wraps any
//! inner source with two independent recovery policies:
//!
//! * **Decode tolerance** — decode-class errors ([`PacketError::Truncated`],
//!   [`PacketError::Malformed`], [`PacketError::Unsupported`],
//!   [`PacketError::BadTrace`]) are *skipped and counted* rather than
//!   surfaced, on the theory that one bad record should not end a run that
//!   has been healthy for a week. `--strict-decode` semantics
//!   ([`Reconnecting::with_strict_decode`]) restore fail-on-first-error for
//!   operators who prefer loud ingestion. A cap on *consecutive* skips
//!   ([`Reconnecting::with_decode_skip_cap`]) keeps a permanently
//!   desynchronized stream from spinning forever: past the cap the stream
//!   is declared broken and handed to the reconnect policy.
//! * **Reconnection** — I/O-class errors drop the inner source and rebuild
//!   it through a caller-supplied factory, under bounded exponential
//!   backoff with deterministic jitter and a finite retry budget. The
//!   factory receives the attempt number and may itself decline (`None`) —
//!   that consumes an attempt and backs off like a failed open.
//!
//! Every outcome is counted in a shared [`SourceCounters`] handle that the
//! telemetry plane can keep after the source moves into the feed loop
//! (`dart_source_reconnects_total`, `dart_source_decode_errors_total`).
//!
//! Backoff is deterministic: the jitter derives from a seed and the attempt
//! number, never from wall-clock entropy, so recovery schedules replay
//! identically in tests. Sleeping is injectable for the same reason.

use crate::error::PacketError;
use crate::meta::PacketMeta;
use crate::source::PacketSource;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared, cloneable recovery counters: clone a handle before the source
/// moves into the feed loop and the telemetry plane can publish them live.
#[derive(Clone, Debug, Default)]
pub struct SourceCounters {
    reconnects: Arc<AtomicU64>,
    decode_errors: Arc<AtomicU64>,
    io_errors: Arc<AtomicU64>,
}

impl SourceCounters {
    /// Successful reconnections (`dart_source_reconnects_total`).
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Records skipped as undecodable
    /// (`dart_source_decode_errors_total`).
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.load(Ordering::Relaxed)
    }

    /// I/O-class stream failures that triggered the reconnect policy.
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }
}

/// Builds (and rebuilds) the inner source. Receives the attempt number:
/// `0` for the initial connection, `1..` for reconnections after a
/// failure. Returning `None` means "cannot connect right now" and consumes
/// one attempt from the retry budget.
pub type SourceFactory<S> = Box<dyn FnMut(u32) -> Option<S> + Send>;

/// A [`PacketSource`] wrapper that skips undecodable records and rebuilds
/// a failed transport under bounded, deterministic backoff — see the
/// module docs for the full policy.
pub struct Reconnecting<S> {
    source: Option<S>,
    factory: SourceFactory<S>,
    counters: SourceCounters,
    strict_decode: bool,
    /// Consecutive decode errors tolerated before the stream is declared
    /// desynchronized and rebuilt.
    decode_skip_cap: u32,
    consecutive_skips: u32,
    /// Failed connection attempts in the current outage.
    attempts: u32,
    /// Attempts allowed per outage (the initial open of each outage is
    /// attempt 1).
    retry_budget: u32,
    base_backoff: Duration,
    max_backoff: Duration,
    jitter_seed: u64,
    sleeper: Box<dyn FnMut(Duration) + Send>,
    /// Set once the retry budget is exhausted; every later call returns
    /// the same terminal error.
    failed: bool,
}

/// True for errors that condemn one record, not the stream.
fn is_decode_error(e: &PacketError) -> bool {
    matches!(
        e,
        PacketError::Truncated { .. }
            | PacketError::Malformed { .. }
            | PacketError::Unsupported { .. }
            | PacketError::BadTrace(_)
    )
}

/// SplitMix64 finalizer: a cheap, deterministic bit mixer for jitter.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

impl<S: PacketSource> Reconnecting<S> {
    /// Wrap `factory`'s sources. The first connection happens lazily on
    /// the first [`PacketSource::next_packet`] call (attempt `0`, no
    /// backoff before it).
    pub fn new(factory: SourceFactory<S>) -> Reconnecting<S> {
        Reconnecting {
            source: None,
            factory,
            counters: SourceCounters::default(),
            strict_decode: false,
            decode_skip_cap: 4096,
            consecutive_skips: 0,
            attempts: 0,
            retry_budget: 8,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(5),
            jitter_seed: 0xDA27_0001,
            sleeper: Box::new(std::thread::sleep),
            failed: false,
        }
    }

    /// Wrap an already-open source; `factory` is only consulted after a
    /// failure.
    pub fn with_initial(source: S, factory: SourceFactory<S>) -> Reconnecting<S> {
        let mut r = Reconnecting::new(factory);
        r.source = Some(source);
        r
    }

    /// Fail on the first undecodable record instead of skipping it
    /// (`--strict-decode`).
    pub fn with_strict_decode(mut self, strict: bool) -> Reconnecting<S> {
        self.strict_decode = strict;
        self
    }

    /// Consecutive decode errors tolerated before the stream is treated
    /// as broken (and the reconnect policy takes over).
    pub fn with_decode_skip_cap(mut self, cap: u32) -> Reconnecting<S> {
        self.decode_skip_cap = cap.max(1);
        self
    }

    /// Connection attempts allowed per outage before giving up for good.
    pub fn with_retry_budget(mut self, budget: u32) -> Reconnecting<S> {
        self.retry_budget = budget.max(1);
        self
    }

    /// Exponential backoff bounds: the n-th failed attempt in an outage
    /// sleeps `base × 2ⁿ⁻¹` capped at `max`, plus up to 50% deterministic
    /// jitter.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Reconnecting<S> {
        self.base_backoff = base;
        self.max_backoff = max.max(base);
        self
    }

    /// Seed for the deterministic backoff jitter.
    pub fn with_jitter_seed(mut self, seed: u64) -> Reconnecting<S> {
        self.jitter_seed = seed;
        self
    }

    /// Replace the sleep implementation (virtual time in tests).
    pub fn with_sleeper(mut self, sleeper: Box<dyn FnMut(Duration) + Send>) -> Reconnecting<S> {
        self.sleeper = sleeper;
        self
    }

    /// A counters handle to keep (or register with telemetry) after the
    /// source moves into the feed loop.
    pub fn counters(&self) -> SourceCounters {
        self.counters.clone()
    }

    /// The backoff before attempt `n` (1-based within an outage):
    /// exponential from the base, capped, plus up to 50% jitter derived
    /// from the seed and `n` — fully deterministic.
    fn backoff(&self, attempt: u32) -> Duration {
        let base = self.base_backoff.as_nanos() as u64;
        let max = self.max_backoff.as_nanos() as u64;
        let shift = attempt.saturating_sub(1).min(20);
        let exp = base.saturating_mul(1u64 << shift).min(max);
        let jitter = mix64(self.jitter_seed ^ u64::from(attempt)) % (exp / 2 + 1);
        Duration::from_nanos(exp.saturating_add(jitter))
    }

    /// Drop the broken source and rebuild it under backoff. `Ok` leaves
    /// `self.source` connected; `Err` means the budget ran out.
    fn reconnect(&mut self, cause: &str) -> Result<(), PacketError> {
        self.source = None;
        loop {
            self.attempts += 1;
            if self.attempts > self.retry_budget {
                self.failed = true;
                return Err(PacketError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "source lost ({cause}); retry budget of {} attempts exhausted",
                        self.retry_budget
                    ),
                )));
            }
            // First attempt of an outage reconnects immediately; later
            // ones back off exponentially.
            if self.attempts > 1 {
                let pause = self.backoff(self.attempts - 1);
                (self.sleeper)(pause);
            }
            if let Some(src) = (self.factory)(self.attempts) {
                self.source = Some(src);
                self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                self.attempts = 0;
                return Ok(());
            }
        }
    }
}

impl<S: PacketSource> PacketSource for Reconnecting<S> {
    fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError> {
        if self.failed {
            return Err(PacketError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "source previously declared dead (retry budget exhausted)",
            )));
        }
        loop {
            if self.source.is_none() {
                self.reconnect("not yet connected")?;
            }
            let Some(src) = self.source.as_mut() else {
                unreachable!("reconnect() leaves a source or errors");
            };
            match src.next_packet() {
                Ok(p) => {
                    // A genuine end of stream stays an end of stream: the
                    // inner source (e.g. a Follow-tailed fifo) decides
                    // when the data is really over.
                    self.consecutive_skips = 0;
                    return Ok(p);
                }
                Err(e) if is_decode_error(&e) => {
                    if self.strict_decode {
                        return Err(e);
                    }
                    self.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                    self.consecutive_skips += 1;
                    if self.consecutive_skips >= self.decode_skip_cap {
                        // The stream never recovers alignment: stop
                        // skipping and rebuild it.
                        self.consecutive_skips = 0;
                        self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                        self.reconnect("decode-skip cap reached")?;
                    }
                    // Skip the bad record and try the next one.
                }
                // The guard above catches every decode-class variant, so
                // this is the I/O-class (transport) path.
                Err(e) => {
                    self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                    self.reconnect(&e.to_string())?;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;
    use crate::meta::PacketBuilder;
    use std::sync::Mutex;

    fn pkt(ts: u64) -> PacketMeta {
        let flow = FlowKey::from_raw(0x0a00_0001, 443, 0xc0a8_0001, 55_000);
        PacketBuilder::new(flow, ts)
            .seq(ts as u32)
            .payload(100)
            .build()
    }

    /// A scripted source: each step yields a packet, an error, or ends.
    enum Step {
        Pkt(u64),
        Decode,
        Io,
        End,
    }

    struct Scripted {
        steps: std::vec::IntoIter<Step>,
    }

    impl Scripted {
        fn new(steps: Vec<Step>) -> Scripted {
            Scripted {
                steps: steps.into_iter(),
            }
        }
    }

    impl PacketSource for Scripted {
        fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError> {
            match self.steps.next() {
                None | Some(Step::End) => Ok(None),
                Some(Step::Pkt(ts)) => Ok(Some(pkt(ts))),
                Some(Step::Decode) => Err(PacketError::BadTrace("torn record".into())),
                Some(Step::Io) => Err(PacketError::Io(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "producer died",
                ))),
            }
        }
    }

    /// Collect every packet the source yields (panics on error).
    fn drain<S: PacketSource>(src: &mut S) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(p) = src.next_packet().expect("source must recover") {
            out.push(p.ts);
        }
        out
    }

    fn no_sleep() -> Box<dyn FnMut(Duration) + Send> {
        Box::new(|_| {})
    }

    #[test]
    fn decode_errors_are_skipped_and_counted() {
        let mut src = Reconnecting::with_initial(
            Scripted::new(vec![
                Step::Pkt(1),
                Step::Decode,
                Step::Pkt(2),
                Step::Decode,
                Step::Decode,
                Step::Pkt(3),
                Step::End,
            ]),
            Box::new(|_| None),
        )
        .with_sleeper(no_sleep());
        let counters = src.counters();
        assert_eq!(drain(&mut src), vec![1, 2, 3]);
        assert_eq!(counters.decode_errors(), 3);
        assert_eq!(counters.reconnects(), 0);
    }

    #[test]
    fn strict_decode_surfaces_the_first_bad_record() {
        let mut src = Reconnecting::with_initial(
            Scripted::new(vec![Step::Pkt(1), Step::Decode, Step::Pkt(2)]),
            Box::new(|_| None),
        )
        .with_strict_decode(true)
        .with_sleeper(no_sleep());
        assert_eq!(src.next_packet().unwrap().unwrap().ts, 1);
        assert!(matches!(src.next_packet(), Err(PacketError::BadTrace(_))));
    }

    #[test]
    fn io_failure_reconnects_and_resumes() {
        // The replacement source picks up where the broken one left off.
        let mut src = Reconnecting::with_initial(
            Scripted::new(vec![Step::Pkt(1), Step::Io]),
            Box::new(|attempt| {
                assert!(attempt >= 1);
                Some(Scripted::new(vec![Step::Pkt(2), Step::End]))
            }),
        )
        .with_sleeper(no_sleep());
        let counters = src.counters();
        assert_eq!(drain(&mut src), vec![1, 2]);
        assert_eq!(counters.reconnects(), 1);
        assert_eq!(counters.io_errors(), 1);
    }

    #[test]
    fn retry_budget_bounds_the_outage_and_is_sticky() {
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = Arc::clone(&calls);
        let mut src: Reconnecting<Scripted> = Reconnecting::new(Box::new(move |_| {
            calls2.fetch_add(1, Ordering::Relaxed);
            None
        }))
        .with_retry_budget(3)
        .with_sleeper(no_sleep());
        assert!(matches!(src.next_packet(), Err(PacketError::Io(_))));
        assert_eq!(calls.load(Ordering::Relaxed), 3, "budget caps attempts");
        // Dead is dead: no further factory calls.
        assert!(matches!(src.next_packet(), Err(PacketError::Io(_))));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn backoff_is_exponential_bounded_and_deterministic() {
        let sleeps = Arc::new(Mutex::new(Vec::new()));
        let record = |log: &Arc<Mutex<Vec<Duration>>>| {
            let log = Arc::clone(log);
            Box::new(move |d: Duration| log.lock().unwrap().push(d))
                as Box<dyn FnMut(Duration) + Send>
        };
        let run = |log: Arc<Mutex<Vec<Duration>>>| {
            let mut src: Reconnecting<Scripted> = Reconnecting::new(Box::new(|_| None))
                .with_retry_budget(6)
                .with_backoff(Duration::from_millis(10), Duration::from_millis(100))
                .with_sleeper(record(&log));
            let _ = src.next_packet();
        };
        run(Arc::clone(&sleeps));
        let first: Vec<Duration> = sleeps.lock().unwrap().clone();
        // Attempt 1 is immediate; 5 backoffs follow for attempts 2..=6.
        assert_eq!(first.len(), 5);
        // Monotone non-decreasing up to the cap, and every pause is within
        // [exp, 1.5×exp] of the ideal exponential (jitter ≤ 50%).
        let ideal = [10u64, 20, 40, 80, 100];
        for (d, &ms) in first.iter().zip(&ideal) {
            let lo = Duration::from_millis(ms);
            let hi = lo + lo / 2;
            assert!(*d >= lo && *d <= hi, "pause {d:?} outside [{lo:?}, {hi:?}]");
        }
        // Deterministic: a second run produces the identical schedule.
        let sleeps2 = Arc::new(Mutex::new(Vec::new()));
        run(Arc::clone(&sleeps2));
        assert_eq!(first, *sleeps2.lock().unwrap());
    }

    #[test]
    fn decode_skip_cap_escalates_to_reconnect() {
        let mut src = Reconnecting::with_initial(
            Scripted::new(vec![Step::Decode, Step::Decode, Step::Decode, Step::Decode]),
            Box::new(|_| Some(Scripted::new(vec![Step::Pkt(9), Step::End]))),
        )
        .with_decode_skip_cap(3)
        .with_sleeper(no_sleep());
        let counters = src.counters();
        assert_eq!(drain(&mut src), vec![9]);
        assert_eq!(counters.decode_errors(), 3, "capped skips counted");
        assert_eq!(counters.reconnects(), 1, "then the stream was rebuilt");
    }

    #[test]
    fn end_of_stream_is_not_an_outage() {
        let mut src = Reconnecting::with_initial(
            Scripted::new(vec![Step::Pkt(1), Step::End]),
            Box::new(|_| panic!("EOF must not trigger reconnection")),
        )
        .with_sleeper(no_sleep());
        assert_eq!(drain(&mut src), vec![1]);
        assert_eq!(src.next_packet().unwrap(), None, "end stays sticky");
    }
}
