//! Payload-size computation, including the lookup-table optimization from
//! the hardware prototype (paper §4, "Computing the payload size").
//!
//! On the Tofino, subtracting IP and TCP header lengths from the total IP
//! length costs multiple pipeline stages, so the prototype pre-computes the
//! TCP payload size for the common cases — IHL of 5 words, total length
//! 40–1480 bytes, TCP data offset 5–15 words — and stores them in a lookup
//! table, falling back to arithmetic otherwise. We reproduce both paths and
//! prove them equivalent by test; the switch resource model charges the LUT
//! accordingly.

/// Payload size by direct arithmetic — the "expensive" data-plane path.
#[inline]
pub fn payload_len_arithmetic(total_len: u16, ihl: u8, data_offset: u8) -> u16 {
    total_len.saturating_sub((ihl as u16 + data_offset as u16) * 4)
}

/// A pre-computed payload-size lookup table over the common header shapes.
///
/// Covers IHL = 5 and total length in `40..=1480` crossed with TCP data
/// offset in `5..=15`. Queries outside that envelope answer `None`,
/// signalling the caller to take the arithmetic fallback.
pub struct PayloadSizeLut {
    /// `table[(total_len - MIN_TOTAL) * N_OFFSETS + (data_offset - 5)]`
    table: Vec<u16>,
}

const MIN_TOTAL: u16 = 40;
const MAX_TOTAL: u16 = 1480;
const MIN_OFF: u8 = 5;
const MAX_OFF: u8 = 15;
const N_OFFSETS: usize = (MAX_OFF - MIN_OFF + 1) as usize;

impl PayloadSizeLut {
    /// Build the table (done once at "compile time" of the pipeline).
    pub fn build() -> PayloadSizeLut {
        let rows = (MAX_TOTAL - MIN_TOTAL + 1) as usize;
        let mut table = vec![0u16; rows * N_OFFSETS];
        for total in MIN_TOTAL..=MAX_TOTAL {
            for off in MIN_OFF..=MAX_OFF {
                let idx = (total - MIN_TOTAL) as usize * N_OFFSETS + (off - MIN_OFF) as usize;
                table[idx] = payload_len_arithmetic(total, 5, off);
            }
        }
        PayloadSizeLut { table }
    }

    /// Number of entries in the table (drives the SRAM estimate in the
    /// switch resource model).
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Look up the payload size; `None` when the headers fall outside the
    /// pre-computed envelope (uncommon IHL, jumbo or tiny totals).
    #[inline]
    pub fn lookup(&self, total_len: u16, ihl: u8, data_offset: u8) -> Option<u16> {
        if ihl != 5
            || !(MIN_TOTAL..=MAX_TOTAL).contains(&total_len)
            || !(MIN_OFF..=MAX_OFF).contains(&data_offset)
        {
            return None;
        }
        let idx = (total_len - MIN_TOTAL) as usize * N_OFFSETS + (data_offset - MIN_OFF) as usize;
        Some(self.table[idx])
    }

    /// Payload size via the fast path with arithmetic fallback — the
    /// behaviour of the deployed prototype.
    #[inline]
    pub fn payload_len(&self, total_len: u16, ihl: u8, data_offset: u8) -> u16 {
        self.lookup(total_len, ihl, data_offset)
            .unwrap_or_else(|| payload_len_arithmetic(total_len, ihl, data_offset))
    }
}

impl Default for PayloadSizeLut {
    fn default() -> Self {
        Self::build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_matches_arithmetic_over_entire_envelope() {
        let lut = PayloadSizeLut::build();
        for total in MIN_TOTAL..=MAX_TOTAL {
            for off in MIN_OFF..=MAX_OFF {
                assert_eq!(
                    lut.lookup(total, 5, off),
                    Some(payload_len_arithmetic(total, 5, off)),
                    "total={total} off={off}"
                );
            }
        }
    }

    #[test]
    fn out_of_envelope_falls_back() {
        let lut = PayloadSizeLut::build();
        assert_eq!(lut.lookup(1500, 5, 5), None); // jumbo-ish total
        assert_eq!(lut.lookup(100, 6, 5), None); // IP options
        assert_eq!(lut.payload_len(1500, 5, 5), 1500 - 40);
        assert_eq!(lut.payload_len(100, 6, 5), 100 - 44);
    }

    #[test]
    fn saturates_instead_of_underflowing() {
        assert_eq!(payload_len_arithmetic(30, 5, 5), 0);
    }

    #[test]
    fn typical_mss_segment() {
        let lut = PayloadSizeLut::build();
        // 1460-byte MSS segment: 20 IP + 20 TCP + 1440... check a full 1480.
        assert_eq!(lut.payload_len(1480, 5, 5), 1440);
        // With timestamps (data offset 8): 1480 - 20 - 32 = 1428.
        assert_eq!(lut.payload_len(1480, 5, 8), 1428);
    }

    #[test]
    fn table_size_is_stable() {
        // (1480-40+1) totals x 11 offsets — the SRAM budget Table 1 charges.
        assert_eq!(PayloadSizeLut::build().entries(), 1441 * 11);
    }
}
