//! [`PacketMeta`]: the per-packet record every component of this repository
//! exchanges — the monitor's view of one TCP packet.
//!
//! A monitoring device does not need payload bytes; it needs the flow key,
//! sequence/ack numbers, payload length, flags, and a timestamp. This struct
//! is what the parser produces from wire bytes, what the simulator's vantage
//! point captures, what trace files store, and what the Dart engine and the
//! baselines consume.

use crate::flow::FlowKey;
use crate::seq::SeqNum;
use crate::tcp::TcpFlags;
use std::fmt;

/// Nanosecond timestamps, as provided by the Tofino (paper §8 notes Dart
/// reports RTTs at nanosecond granularity).
pub type Nanos = u64;

/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;
/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;
/// One microsecond in [`Nanos`].
pub const MICROSECOND: Nanos = 1_000;

/// Which leg of the path a packet's *data direction* belongs to, relative to
/// the monitoring device (paper §2.1, Fig. 1).
///
/// For a monitor near a campus gateway: data flowing from an internal host
/// toward the Internet is `Outbound`; matching it with the returning ACK
/// measures the **external** leg. Data flowing in toward a campus host is
/// `Inbound`; matching it with the host's ACK measures the **internal** leg.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Direction {
    /// Traveling from the internal network toward the Internet.
    Outbound,
    /// Traveling from the Internet toward the internal network.
    Inbound,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Outbound => Direction::Inbound,
            Direction::Inbound => Direction::Outbound,
        }
    }
}

/// The monitor's view of one TCP packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PacketMeta {
    /// Capture timestamp at the monitoring device, in nanoseconds.
    pub ts: Nanos,
    /// Flow 4-tuple in the packet's own direction of travel.
    pub flow: FlowKey,
    /// TCP sequence number.
    pub seq: SeqNum,
    /// TCP acknowledgment number (meaningful when `flags.is_ack()`).
    pub ack: SeqNum,
    /// TCP payload bytes carried.
    pub payload_len: u32,
    /// TCP control flags.
    pub flags: TcpFlags,
    /// Direction of travel relative to the monitor.
    pub dir: Direction,
    /// RFC 7323 timestamp option `(TSval, TSecr)`, when present. Dart does
    /// not use it (paper §8: often coarse or absent); the `pping` baseline
    /// does.
    pub tsopt: Option<(u32, u32)>,
}

impl PacketMeta {
    /// The expected ACK number for this packet's data: `seq + payload_len`,
    /// plus one for SYN/FIN which occupy sequence space.
    #[inline]
    pub fn eack(&self) -> SeqNum {
        let mut len = self.payload_len;
        if self.flags.is_syn() {
            len += 1;
        }
        if self.flags.is_fin() {
            len += 1;
        }
        self.seq.add(len)
    }

    /// True when this packet advances the sender's sequence space and can
    /// therefore await an acknowledgment: it carries payload or a SYN/FIN.
    /// QUIC packets never do — their sequence space is encrypted.
    #[inline]
    pub fn is_seq(&self) -> bool {
        !self.is_quic() && (self.payload_len > 0 || self.flags.is_syn() || self.flags.is_fin())
    }

    /// True when this packet carries an acknowledgment usable for matching.
    /// QUIC packets never do — their ACK frames are encrypted.
    #[inline]
    pub fn is_ack(&self) -> bool {
        !self.is_quic() && self.flags.is_ack()
    }

    /// True when this record describes a QUIC short-header packet
    /// ([`TcpFlags::QUIC`] marker). SEQ/ACK fields are meaningless; the
    /// only measurement signal is the spin bit ([`PacketMeta::spin`]).
    #[inline]
    pub fn is_quic(&self) -> bool {
        self.flags.contains(TcpFlags::QUIC)
    }

    /// The QUIC spin-bit value, or `None` for TCP packets. Guaranteed
    /// `Some` exactly when [`PacketMeta::is_quic`] — so TCP-only code can
    /// route on `is_seq`/`is_ack` and spin-bit code on this, with no
    /// packet claiming both roles.
    #[inline]
    pub fn spin(&self) -> Option<bool> {
        self.is_quic().then(|| self.flags.contains(TcpFlags::SPIN))
    }

    /// True when the SYN flag is set (SYN or SYN-ACK) — the packets Dart's
    /// `-SYN` policy skips entirely.
    #[inline]
    pub fn is_syn(&self) -> bool {
        self.flags.is_syn()
    }

    /// A pure ACK: acknowledgment with no sequence-space consumption.
    #[inline]
    pub fn is_pure_ack(&self) -> bool {
        self.is_ack() && !self.is_seq()
    }
}

impl fmt::Display for PacketMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(spin) = self.spin() {
            write!(
                f,
                "[{:>12}ns] {} {} spin={}",
                self.ts,
                self.flow,
                self.flags,
                u8::from(spin)
            )
        } else {
            write!(
                f,
                "[{:>12}ns] {} {} seq={} ack={} len={}",
                self.ts, self.flow, self.flags, self.seq, self.ack, self.payload_len
            )
        }
    }
}

/// Builder for [`PacketMeta`], used pervasively in tests and the simulator.
#[derive(Clone, Debug)]
pub struct PacketBuilder {
    meta: PacketMeta,
}

impl PacketBuilder {
    /// Start a packet on `flow` at time `ts`.
    pub fn new(flow: FlowKey, ts: Nanos) -> Self {
        PacketBuilder {
            meta: PacketMeta {
                ts,
                flow,
                seq: SeqNum::ZERO,
                ack: SeqNum::ZERO,
                payload_len: 0,
                flags: TcpFlags::EMPTY,
                dir: Direction::Outbound,
                tsopt: None,
            },
        }
    }

    /// Set the sequence number.
    pub fn seq(mut self, seq: impl Into<SeqNum>) -> Self {
        self.meta.seq = seq.into();
        self
    }

    /// Set the acknowledgment number and the ACK flag.
    pub fn ack(mut self, ack: impl Into<SeqNum>) -> Self {
        self.meta.ack = ack.into();
        self.meta.flags = self.meta.flags | TcpFlags::ACK;
        self
    }

    /// Set the payload length.
    pub fn payload(mut self, len: u32) -> Self {
        self.meta.payload_len = len;
        self
    }

    /// Union in extra flags.
    pub fn flags(mut self, flags: TcpFlags) -> Self {
        self.meta.flags = self.meta.flags | flags;
        self
    }

    /// Set the SYN flag.
    pub fn syn(self) -> Self {
        self.flags(TcpFlags::SYN)
    }

    /// Set the FIN flag.
    pub fn fin(self) -> Self {
        self.flags(TcpFlags::FIN)
    }

    /// Set the direction of travel.
    pub fn dir(mut self, dir: Direction) -> Self {
        self.meta.dir = dir;
        self
    }

    /// Attach an RFC 7323 timestamp option.
    pub fn tsopt(mut self, tsval: u32, tsecr: u32) -> Self {
        self.meta.tsopt = Some((tsval, tsecr));
        self
    }

    /// Mark the packet as a QUIC short-header packet carrying `spin` as its
    /// spin-bit value. SEQ/ACK/payload stay zero — QUIC exposes none of
    /// them to a passive monitor.
    pub fn quic_spin(mut self, spin: bool) -> Self {
        self.meta.flags = self.meta.flags | TcpFlags::QUIC;
        if spin {
            self.meta.flags = self.meta.flags | TcpFlags::SPIN;
        }
        self
    }

    /// Finish building.
    pub fn build(self) -> PacketMeta {
        self.meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;

    fn flow() -> FlowKey {
        FlowKey::from_raw(0x0a000001, 443, 0x0a000002, 50000)
    }

    #[test]
    fn eack_counts_payload() {
        let p = PacketBuilder::new(flow(), 0)
            .seq(1000u32)
            .payload(500)
            .build();
        assert_eq!(p.eack(), SeqNum(1500));
        assert!(p.is_seq());
        assert!(!p.is_ack());
    }

    #[test]
    fn eack_counts_syn_and_fin() {
        let syn = PacketBuilder::new(flow(), 0).seq(99u32).syn().build();
        assert_eq!(syn.eack(), SeqNum(100));
        assert!(syn.is_seq());
        let fin = PacketBuilder::new(flow(), 0)
            .seq(200u32)
            .payload(10)
            .fin()
            .build();
        assert_eq!(fin.eack(), SeqNum(211));
    }

    #[test]
    fn pure_ack_classification() {
        let a = PacketBuilder::new(flow(), 5).ack(4242u32).build();
        assert!(a.is_pure_ack());
        assert!(a.is_ack());
        assert!(!a.is_seq());
        let piggy = PacketBuilder::new(flow(), 5).ack(1u32).payload(7).build();
        assert!(!piggy.is_pure_ack());
        assert!(piggy.is_seq());
        assert!(piggy.is_ack());
    }

    #[test]
    fn eack_wraps() {
        let p = PacketBuilder::new(flow(), 0)
            .seq(u32::MAX - 99)
            .payload(200)
            .build();
        assert_eq!(p.eack(), SeqNum(100));
    }

    #[test]
    fn tsopt_builder_attaches_option() {
        let p = PacketBuilder::new(flow(), 0).tsopt(1234, 5678).build();
        assert_eq!(p.tsopt, Some((1234, 5678)));
        let q = PacketBuilder::new(flow(), 0).build();
        assert_eq!(q.tsopt, None);
    }

    #[test]
    fn quic_packets_have_no_tcp_role() {
        let p = PacketBuilder::new(flow(), 7).quic_spin(true).build();
        assert!(p.is_quic());
        assert_eq!(p.spin(), Some(true));
        assert!(!p.is_seq());
        assert!(!p.is_ack());
        assert!(!p.is_pure_ack());
        let q = PacketBuilder::new(flow(), 7).quic_spin(false).build();
        assert_eq!(q.spin(), Some(false));
        let tcp = PacketBuilder::new(flow(), 7).ack(1u32).build();
        assert_eq!(tcp.spin(), None);
        assert!(tcp.is_ack());
    }

    #[test]
    fn quic_display_shows_spin_not_seq() {
        let p = PacketBuilder::new(flow(), 7).quic_spin(true).build();
        let s = p.to_string();
        assert!(s.contains("spin=1"), "{s}");
        assert!(!s.contains("seq="), "{s}");
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Inbound.flip(), Direction::Outbound);
        assert_eq!(Direction::Outbound.flip(), Direction::Inbound);
    }
}
