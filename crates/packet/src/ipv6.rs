//! IPv6 header codec — the §7 extension path ("Dart can also be extended to
//! work with IPv6 by adjusting how the payload size is computed").
//!
//! The fixed 40-byte header makes payload-size computation *simpler* than
//! IPv4 (no IHL): `payload_length` is carried explicitly. The cost the
//! paper notes is elsewhere — the 36-byte 4-tuple must still compress into
//! the same fixed-width signature, so hash collisions become more likely
//! relative to the keyspace. The engine itself remains IPv4-keyed; this
//! codec supports tooling and future extension.

use crate::error::PacketError;
use bytes::{Buf, BufMut};
use std::net::Ipv6Addr;

/// A decoded IPv6 fixed header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ipv6Header {
    /// Traffic class.
    pub traffic_class: u8,
    /// Flow label (20 bits).
    pub flow_label: u32,
    /// Payload length in bytes (everything after the fixed header).
    pub payload_len: u16,
    /// Next header (protocol) — TCP is 6, as in IPv4.
    pub next_header: u8,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
}

impl Ipv6Header {
    /// Fixed header length in bytes.
    pub const LEN: usize = 40;

    /// Decode from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<Ipv6Header, PacketError> {
        if buf.len() < Self::LEN {
            return Err(PacketError::Truncated {
                layer: "ipv6",
                needed: Self::LEN,
                got: buf.len(),
            });
        }
        let mut b = buf;
        let vtcfl = b.get_u32();
        if vtcfl >> 28 != 6 {
            return Err(PacketError::Malformed {
                layer: "ipv6",
                reason: "version is not 6",
            });
        }
        let traffic_class = ((vtcfl >> 20) & 0xFF) as u8;
        let flow_label = vtcfl & 0xF_FFFF;
        let payload_len = b.get_u16();
        let next_header = b.get_u8();
        let hop_limit = b.get_u8();
        let mut src = [0u8; 16];
        let mut dst = [0u8; 16];
        src.copy_from_slice(&buf[8..24]);
        dst.copy_from_slice(&buf[24..40]);
        Ok(Ipv6Header {
            traffic_class,
            flow_label,
            payload_len,
            next_header,
            hop_limit,
            src: Ipv6Addr::from(src),
            dst: Ipv6Addr::from(dst),
        })
    }

    /// Encode onto `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let vtcfl =
            (6u32 << 28) | ((self.traffic_class as u32) << 20) | (self.flow_label & 0xF_FFFF);
        out.put_u32(vtcfl);
        out.put_u16(self.payload_len);
        out.put_u8(self.next_header);
        out.put_u8(self.hop_limit);
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
    }

    /// TCP payload size given a TCP header of `tcp_header_len` bytes —
    /// the §7 "adjusted payload size computation": one subtraction, no
    /// lookup table needed.
    pub fn tcp_payload_len(&self, tcp_header_len: usize) -> u16 {
        self.payload_len.saturating_sub(tcp_header_len as u16)
    }

    /// The 36-byte signature input (src + dst + ports supplied separately),
    /// mirroring what an IPv6 Dart would feed its hash units.
    pub fn signature_input(&self, src_port: u16, dst_port: u16) -> [u8; 36] {
        let mut b = [0u8; 36];
        b[0..16].copy_from_slice(&self.src.octets());
        b[16..32].copy_from_slice(&self.dst.octets());
        b[32..34].copy_from_slice(&src_port.to_be_bytes());
        b[34..36].copy_from_slice(&dst_port.to_be_bytes());
        b
    }
}

impl Default for Ipv6Header {
    fn default() -> Self {
        Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            payload_len: 0,
            next_header: crate::ipv4::protocol::TCP,
            hop_limit: 64,
            src: Ipv6Addr::UNSPECIFIED,
            dst: Ipv6Addr::UNSPECIFIED,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::fnv1a_64;

    #[test]
    fn round_trip() {
        let hdr = Ipv6Header {
            traffic_class: 0x2E,
            flow_label: 0xABCDE,
            payload_len: 1440,
            hop_limit: 57,
            src: "2001:db8::1".parse().unwrap(),
            dst: "2607:f8b0:4004:800::200e".parse().unwrap(),
            ..Ipv6Header::default()
        };
        let mut wire = Vec::new();
        hdr.encode(&mut wire);
        assert_eq!(wire.len(), Ipv6Header::LEN);
        assert_eq!(Ipv6Header::decode(&wire).unwrap(), hdr);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut wire = Vec::new();
        Ipv6Header::default().encode(&mut wire);
        wire[0] = 0x45; // IPv4 version nibble
        assert!(matches!(
            Ipv6Header::decode(&wire).unwrap_err(),
            PacketError::Malformed { layer: "ipv6", .. }
        ));
    }

    #[test]
    fn rejects_truncated() {
        assert!(Ipv6Header::decode(&[0u8; 39]).is_err());
    }

    #[test]
    fn payload_size_is_one_subtraction() {
        let hdr = Ipv6Header {
            payload_len: 1460,
            ..Ipv6Header::default()
        };
        assert_eq!(hdr.tcp_payload_len(20), 1440);
        assert_eq!(hdr.tcp_payload_len(2000), 0); // saturates
    }

    #[test]
    fn flow_label_masked_to_20_bits() {
        let hdr = Ipv6Header {
            flow_label: 0xFFF_FFFF, // over-wide
            ..Ipv6Header::default()
        };
        let mut wire = Vec::new();
        hdr.encode(&mut wire);
        let back = Ipv6Header::decode(&wire).unwrap();
        assert_eq!(back.flow_label, 0xF_FFFF);
    }

    #[test]
    fn signature_input_spans_full_tuple() {
        let hdr = Ipv6Header {
            src: "2001:db8::1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
            ..Ipv6Header::default()
        };
        let a = hdr.signature_input(443, 50000);
        let b = hdr.signature_input(443, 50001);
        assert_ne!(fnv1a_64(&a), fnv1a_64(&b), "ports must affect the hash");
        assert_eq!(a.len(), 36);
    }
}
