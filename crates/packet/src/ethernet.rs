//! Ethernet II framing, for pcap interop.

use crate::error::PacketError;
use bytes::BufMut;
use std::fmt;

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// EtherType values.
pub mod ethertype {
    /// IPv4.
    pub const IPV4: u16 = 0x0800;
    /// IPv6.
    pub const IPV6: u16 = 0x86DD;
    /// ARP.
    pub const ARP: u16 = 0x0806;
}

/// An Ethernet II header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType of the payload.
    pub ethertype: u16,
}

impl EthernetHeader {
    /// Header length in bytes.
    pub const LEN: usize = 14;

    /// An IPv4 frame header with synthetic MACs (used when synthesizing pcap
    /// files from simulated traffic).
    pub fn synthetic_ipv4() -> EthernetHeader {
        EthernetHeader {
            dst: MacAddr([0x02, 0, 0, 0, 0, 0x01]),
            src: MacAddr([0x02, 0, 0, 0, 0, 0x02]),
            ethertype: ethertype::IPV4,
        }
    }

    /// Decode from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<EthernetHeader, PacketError> {
        if buf.len() < Self::LEN {
            return Err(PacketError::Truncated {
                layer: "ethernet",
                needed: Self::LEN,
                got: buf.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = u16::from_be_bytes([buf[12], buf[13]]);
        Ok(EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
        })
    }

    /// Encode onto `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.put_u16(self.ethertype);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let hdr = EthernetHeader::synthetic_ipv4();
        let mut wire = Vec::new();
        hdr.encode(&mut wire);
        assert_eq!(wire.len(), EthernetHeader::LEN);
        assert_eq!(EthernetHeader::decode(&wire).unwrap(), hdr);
    }

    #[test]
    fn truncated_rejected() {
        assert!(EthernetHeader::decode(&[0u8; 13]).is_err());
    }

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr::BROADCAST.to_string(), "ff:ff:ff:ff:ff:ff");
    }
}
