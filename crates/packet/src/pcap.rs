//! Classic libpcap file format reader and writer.
//!
//! Implements the original `pcap` capture format (magic `0xa1b2c3d4`, and the
//! nanosecond-resolution variant `0xa1b23c4d`), both endiannesses on read.
//! This is how the repository interoperates with `tcpdump`/`tcpreplay`-style
//! workflows: simulated traces can be exported for inspection in Wireshark,
//! and real captures can be replayed through Dart (paper §5).

use crate::error::PacketError;
use std::io::{Read, Write};

/// Link types we emit/understand.
pub mod linktype {
    /// LINKTYPE_ETHERNET.
    pub const ETHERNET: u32 = 1;
    /// LINKTYPE_RAW (raw IP).
    pub const RAW: u32 = 101;
}

const MAGIC_US: u32 = 0xa1b2_c3d4;
const MAGIC_NS: u32 = 0xa1b2_3c4d;

/// A captured record: timestamp in nanoseconds plus the captured bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp, nanoseconds since the epoch of the trace.
    pub ts: u64,
    /// Captured frame bytes (possibly truncated to the snap length).
    pub data: Vec<u8>,
    /// Original (untruncated) length on the wire.
    pub orig_len: u32,
}

/// Writes a pcap file with nanosecond timestamps.
pub struct PcapWriter<W: Write> {
    out: W,
    records: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header.
    pub fn new(mut out: W, link: u32) -> Result<Self, PacketError> {
        out.write_all(&MAGIC_NS.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65535u32.to_le_bytes())?; // snaplen
        out.write_all(&link.to_le_bytes())?;
        Ok(PcapWriter { out, records: 0 })
    }

    /// Append one record.
    pub fn write_record(&mut self, ts_nanos: u64, data: &[u8]) -> Result<(), PacketError> {
        let secs = (ts_nanos / 1_000_000_000) as u32;
        let nanos = (ts_nanos % 1_000_000_000) as u32;
        self.out.write_all(&secs.to_le_bytes())?;
        self.out.write_all(&nanos.to_le_bytes())?;
        self.out.write_all(&(data.len() as u32).to_le_bytes())?;
        self.out.write_all(&(data.len() as u32).to_le_bytes())?;
        self.out.write_all(data)?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> Result<W, PacketError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Reads a pcap file, normalizing timestamps to nanoseconds.
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    input: R,
    swapped: bool,
    nanos: bool,
    /// Link type from the global header.
    pub link: u32,
}

impl<R: Read> PcapReader<R> {
    /// Open a reader, consuming and validating the global header.
    pub fn new(mut input: R) -> Result<Self, PacketError> {
        let mut hdr = [0u8; 24];
        input.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes(crate::arr(&hdr[0..4]));
        let (swapped, nanos) = match magic {
            MAGIC_US => (false, false),
            MAGIC_NS => (false, true),
            m if m.swap_bytes() == MAGIC_US => (true, false),
            m if m.swap_bytes() == MAGIC_NS => (true, true),
            _ => return Err(PacketError::BadTrace("unknown pcap magic".into())),
        };
        let read_u32 = |b: &[u8]| {
            let v = u32::from_le_bytes(crate::arr(b));
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let link = read_u32(&hdr[20..24]);
        Ok(PcapReader {
            input,
            swapped,
            nanos,
            link,
        })
    }

    fn u32_at(&self, b: &[u8]) -> u32 {
        let v = u32::from_le_bytes(crate::arr(b));
        if self.swapped {
            v.swap_bytes()
        } else {
            v
        }
    }

    /// Read the next record; `Ok(None)` at clean end-of-file.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>, PacketError> {
        let mut hdr = [0u8; 16];
        match self.input.read_exact(&mut hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let secs = self.u32_at(&hdr[0..4]) as u64;
        let frac = self.u32_at(&hdr[4..8]) as u64;
        let incl = self.u32_at(&hdr[8..12]);
        let orig = self.u32_at(&hdr[12..16]);
        if incl > 256 * 1024 * 1024 {
            return Err(PacketError::BadTrace(
                "record length implausibly large".into(),
            ));
        }
        let mut data = vec![0u8; incl as usize];
        self.input.read_exact(&mut data)?;
        let ts = secs * 1_000_000_000 + if self.nanos { frac } else { frac * 1_000 };
        Ok(Some(PcapRecord {
            ts,
            data,
            orig_len: orig,
        }))
    }

    /// Iterate over all remaining records.
    pub fn records(self) -> PcapRecords<R> {
        PcapRecords { reader: self }
    }
}

/// Iterator adapter over a [`PcapReader`].
pub struct PcapRecords<R: Read> {
    reader: PcapReader<R>,
}

impl<R: Read> Iterator for PcapRecords<R> {
    type Item = Result<PcapRecord, PacketError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn write_then_read_round_trips() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, linktype::ETHERNET).unwrap();
            w.write_record(1_500_000_123, &[1, 2, 3, 4]).unwrap();
            w.write_record(2_000_000_456, &[5, 6]).unwrap();
            assert_eq!(w.records_written(), 2);
            w.finish().unwrap();
        }
        let r = PcapReader::new(Cursor::new(&buf)).unwrap();
        assert_eq!(r.link, linktype::ETHERNET);
        let recs: Vec<_> = r.records().collect::<Result<_, _>>().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ts, 1_500_000_123);
        assert_eq!(recs[0].data, vec![1, 2, 3, 4]);
        assert_eq!(recs[1].ts, 2_000_000_456);
        assert_eq!(recs[1].orig_len, 2);
    }

    #[test]
    fn microsecond_magic_scales_timestamps() {
        // Hand-build a classic microsecond pcap with one record.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_US.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&0i32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&65535u32.to_le_bytes());
        buf.extend_from_slice(&linktype::RAW.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes()); // secs
        buf.extend_from_slice(&500u32.to_le_bytes()); // usecs
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(0xAB);
        let r = PcapReader::new(Cursor::new(&buf)).unwrap();
        let recs: Vec<_> = r.records().collect::<Result<_, _>>().unwrap();
        assert_eq!(recs[0].ts, 3_000_500_000);
    }

    #[test]
    fn big_endian_file_is_readable() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_NS.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0i32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&65535u32.to_be_bytes());
        buf.extend_from_slice(&linktype::ETHERNET.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&7u32.to_be_bytes());
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[9, 9]);
        let r = PcapReader::new(Cursor::new(&buf)).unwrap();
        assert_eq!(r.link, linktype::ETHERNET);
        let recs: Vec<_> = r.records().collect::<Result<_, _>>().unwrap();
        assert_eq!(recs[0].ts, 1_000_000_007);
        assert_eq!(recs[0].data, vec![9, 9]);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = vec![0u8; 24];
        assert!(matches!(
            PcapReader::new(Cursor::new(&buf)).unwrap_err(),
            PacketError::BadTrace(_)
        ));
    }

    #[test]
    fn truncated_record_errors() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, linktype::ETHERNET).unwrap();
            w.write_record(0, &[1, 2, 3, 4]).unwrap();
            w.finish().unwrap();
        }
        buf.truncate(buf.len() - 2); // chop the record body
        let r = PcapReader::new(Cursor::new(&buf)).unwrap();
        let results: Vec<_> = r.records().collect();
        assert!(results[0].is_err());
    }
}
