//! Wire-format parsing: Ethernet/IPv4/TCP frames → [`PacketMeta`], and the
//! reverse synthesis used to write pcap files from simulated traffic.

use crate::error::PacketError;
use crate::ethernet::{ethertype, EthernetHeader};
use crate::flow::FlowKey;
use crate::ipv4::{protocol, Ipv4Header};
use crate::meta::{Direction, Nanos, PacketMeta};
use crate::tcp::TcpHeader;

/// A classifier deciding each packet's [`Direction`] relative to the monitor,
/// typically from the source address (e.g. "10.0.0.0/8 is internal").
pub trait DirectionClassifier {
    /// Classify a packet by its flow key.
    fn classify(&self, flow: &FlowKey) -> Direction;
}

/// Classifies by internal IPv4 prefixes: a packet *from* an internal address
/// is outbound, everything else inbound.
#[derive(Clone, Debug, Default)]
pub struct PrefixClassifier {
    prefixes: Vec<(u32, u32)>, // (network, mask)
}

impl PrefixClassifier {
    /// Build from `(address, prefix_len)` pairs describing the internal side.
    pub fn new(prefixes: impl IntoIterator<Item = (std::net::Ipv4Addr, u8)>) -> Self {
        let prefixes = prefixes
            .into_iter()
            .map(|(addr, len)| {
                let mask = if len == 0 {
                    0
                } else {
                    u32::MAX << (32 - len as u32)
                };
                (u32::from(addr) & mask, mask)
            })
            .collect();
        PrefixClassifier { prefixes }
    }

    /// True when `addr` is inside any internal prefix.
    pub fn is_internal(&self, addr: std::net::Ipv4Addr) -> bool {
        let a = u32::from(addr);
        self.prefixes.iter().any(|&(net, mask)| a & mask == net)
    }
}

impl DirectionClassifier for PrefixClassifier {
    fn classify(&self, flow: &FlowKey) -> Direction {
        if self.is_internal(flow.src_ip) {
            Direction::Outbound
        } else {
            Direction::Inbound
        }
    }
}

/// Parse a full Ethernet frame into a [`PacketMeta`].
///
/// Returns [`PacketError::Unsupported`] for non-IPv4 ethertypes, non-TCP
/// protocols, and IP fragments other than the first — the same traffic a
/// Dart deployment would pass through unmonitored.
pub fn parse_ethernet_frame(
    ts: Nanos,
    frame: &[u8],
    classifier: &dyn DirectionClassifier,
) -> Result<PacketMeta, PacketError> {
    let eth = EthernetHeader::decode(frame)?;
    if eth.ethertype != ethertype::IPV4 {
        return Err(PacketError::Unsupported {
            what: "non-ipv4 ethertype",
        });
    }
    parse_ipv4_packet(ts, &frame[EthernetHeader::LEN..], classifier)
}

/// Parse an IPv4 packet (starting at the IP header) into a [`PacketMeta`].
pub fn parse_ipv4_packet(
    ts: Nanos,
    packet: &[u8],
    classifier: &dyn DirectionClassifier,
) -> Result<PacketMeta, PacketError> {
    let ip = Ipv4Header::decode(packet)?;
    if ip.proto != protocol::TCP {
        return Err(PacketError::Unsupported {
            what: "non-tcp protocol",
        });
    }
    if ip.flags_frag & 0x1FFF != 0 {
        return Err(PacketError::Unsupported {
            what: "ip fragment",
        });
    }
    let tcp_bytes = &packet[ip.header_len()..];
    let tcp = TcpHeader::decode(tcp_bytes)?;
    let payload_len = ip.payload_len().saturating_sub(tcp.header_len()) as u32;
    let flow = FlowKey::new(ip.src, tcp.src_port, ip.dst, tcp.dst_port);
    let dir = classifier.classify(&flow);
    Ok(PacketMeta {
        ts,
        flow,
        seq: tcp.seq,
        ack: tcp.ack,
        payload_len,
        flags: tcp.flags,
        dir,
        tsopt: tcp.timestamps(),
    })
}

/// Synthesize an Ethernet/IPv4/TCP frame from a [`PacketMeta`], with a dummy
/// payload of the recorded length. Used when exporting simulated traffic to
/// pcap for inspection with standard tools.
pub fn synthesize_frame(meta: &PacketMeta) -> Vec<u8> {
    let options = match meta.tsopt {
        Some((tsval, tsecr)) => TcpHeader::timestamp_option(tsval, tsecr),
        None => Vec::new(),
    };
    let opt_padded = options.len().div_ceil(4) * 4;
    let tcp = TcpHeader {
        src_port: meta.flow.src_port,
        dst_port: meta.flow.dst_port,
        seq: meta.seq,
        ack: meta.ack,
        data_offset: ((TcpHeader::MIN_LEN + opt_padded) / 4) as u8,
        flags: meta.flags,
        options,
        ..TcpHeader::default()
    };
    let total_len = (Ipv4Header::MIN_LEN + tcp.header_len()) as u16 + meta.payload_len as u16;
    let ip = Ipv4Header {
        total_len,
        src: meta.flow.src_ip,
        dst: meta.flow.dst_ip,
        proto: protocol::TCP,
        ..Ipv4Header::default()
    };
    let mut frame = Vec::with_capacity(EthernetHeader::LEN + total_len as usize);
    EthernetHeader::synthetic_ipv4().encode(&mut frame);
    ip.encode(&mut frame);
    tcp.encode(&mut frame);
    frame.resize(frame.len() + meta.payload_len as usize, 0);
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::PacketBuilder;
    use crate::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn classifier() -> PrefixClassifier {
        PrefixClassifier::new([(Ipv4Addr::new(10, 0, 0, 0), 8)])
    }

    #[test]
    fn prefix_classifier_directions() {
        let c = classifier();
        assert!(c.is_internal(Ipv4Addr::new(10, 1, 2, 3)));
        assert!(!c.is_internal(Ipv4Addr::new(8, 8, 8, 8)));
        let outbound = FlowKey::new(Ipv4Addr::new(10, 0, 0, 5), 1, Ipv4Addr::new(1, 1, 1, 1), 2);
        assert_eq!(c.classify(&outbound), Direction::Outbound);
        assert_eq!(c.classify(&outbound.reverse()), Direction::Inbound);
    }

    #[test]
    fn synthesize_then_parse_round_trips() {
        let meta = PacketBuilder::new(
            FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 9),
                50000,
                Ipv4Addr::new(93, 184, 216, 34),
                443,
            ),
            123_456_789,
        )
        .seq(1000u32)
        .ack(2000u32)
        .payload(137)
        .flags(TcpFlags::PSH)
        .build();
        let frame = synthesize_frame(&meta);
        let parsed = parse_ethernet_frame(meta.ts, &frame, &classifier()).unwrap();
        assert_eq!(parsed, meta);
    }

    #[test]
    fn timestamp_option_survives_synthesis() {
        let meta = PacketBuilder::new(
            FlowKey::new(Ipv4Addr::new(10, 0, 0, 9), 1, Ipv4Addr::new(1, 1, 1, 1), 2),
            42,
        )
        .seq(7u32)
        .payload(99)
        .tsopt(0xDEAD, 0xBEEF)
        .build();
        let frame = synthesize_frame(&meta);
        let parsed = parse_ethernet_frame(42, &frame, &classifier()).unwrap();
        assert_eq!(parsed, meta);
        assert_eq!(parsed.tsopt, Some((0xDEAD, 0xBEEF)));
    }

    #[test]
    fn non_tcp_is_unsupported() {
        let meta = PacketBuilder::new(
            FlowKey::new(Ipv4Addr::new(10, 0, 0, 9), 1, Ipv4Addr::new(1, 1, 1, 1), 2),
            0,
        )
        .build();
        let mut frame = synthesize_frame(&meta);
        frame[EthernetHeader::LEN + 9] = protocol::UDP; // rewrite protocol field
                                                        // Checksum now wrong, but decode doesn't verify; protocol check fires first.
        assert!(matches!(
            parse_ethernet_frame(0, &frame, &classifier()).unwrap_err(),
            PacketError::Unsupported {
                what: "non-tcp protocol"
            }
        ));
    }

    #[test]
    fn fragments_are_unsupported() {
        let meta = PacketBuilder::new(
            FlowKey::new(Ipv4Addr::new(10, 0, 0, 9), 1, Ipv4Addr::new(1, 1, 1, 1), 2),
            0,
        )
        .build();
        let mut frame = synthesize_frame(&meta);
        // Set a nonzero fragment offset.
        frame[EthernetHeader::LEN + 6] = 0x00;
        frame[EthernetHeader::LEN + 7] = 0x10;
        assert!(matches!(
            parse_ethernet_frame(0, &frame, &classifier()).unwrap_err(),
            PacketError::Unsupported {
                what: "ip fragment"
            }
        ));
    }

    #[test]
    fn payload_len_recovered_from_lengths() {
        // A pure ACK has payload 0 even though the frame has no padding info.
        let meta = PacketBuilder::new(
            FlowKey::new(Ipv4Addr::new(10, 0, 0, 9), 1, Ipv4Addr::new(1, 1, 1, 1), 2),
            7,
        )
        .ack(999u32)
        .build();
        let frame = synthesize_frame(&meta);
        let parsed = parse_ethernet_frame(7, &frame, &classifier()).unwrap();
        assert_eq!(parsed.payload_len, 0);
        assert!(parsed.is_pure_ack());
    }
}
