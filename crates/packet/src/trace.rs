//! Native binary trace format: a compact stream of [`PacketMeta`] records.
//!
//! Replaying multi-million-packet workloads through parameter sweeps is the
//! dominant cost of the evaluation (paper §6 replays a 135M-packet trace per
//! configuration). Storing fully-parsed [`PacketMeta`] records — 43 bytes
//! each, no per-replay re-parse — keeps sweeps fast. `pcap` import/export is
//! available via [`crate::pcap`] for interop.
//!
//! Format: 16-byte header (`MAGIC`, version, record count), then fixed-width
//! little-endian records.

use crate::error::PacketError;
use crate::flow::FlowKey;
use crate::meta::{Direction, Nanos, PacketMeta};
use crate::seq::SeqNum;
use crate::tcp::TcpFlags;
use std::io::{Read, Write};

const MAGIC: [u8; 4] = *b"DART";
const VERSION: u32 = 2;
const RECORD_LEN: usize = 43;

/// Writes a native trace stream.
pub struct TraceWriter<W: Write> {
    out: W,
    count: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Start a trace; the header's record count is finalized by
    /// [`TraceWriter::finish`] only when the writer supports seeking — for
    /// plain streams the count field stores `u64::MAX` ("unknown") and
    /// readers simply read to EOF.
    pub fn new(mut out: W) -> Result<Self, PacketError> {
        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&u64::MAX.to_le_bytes())?;
        Ok(TraceWriter { out, count: 0 })
    }

    /// Append one record.
    pub fn write(&mut self, m: &PacketMeta) -> Result<(), PacketError> {
        let mut rec = [0u8; RECORD_LEN];
        rec[0..8].copy_from_slice(&m.ts.to_le_bytes());
        rec[8..12].copy_from_slice(&m.flow.src_ip.octets());
        rec[12..16].copy_from_slice(&m.flow.dst_ip.octets());
        rec[16..18].copy_from_slice(&m.flow.src_port.to_le_bytes());
        rec[18..20].copy_from_slice(&m.flow.dst_port.to_le_bytes());
        rec[20..24].copy_from_slice(&m.seq.raw().to_le_bytes());
        rec[24..28].copy_from_slice(&m.ack.raw().to_le_bytes());
        rec[28..32].copy_from_slice(&m.payload_len.to_le_bytes());
        rec[32] = m.flags.0;
        rec[33] = match m.dir {
            Direction::Outbound => 0,
            Direction::Inbound => 1,
        };
        if let Some((tsval, tsecr)) = m.tsopt {
            rec[34] = 1;
            rec[35..39].copy_from_slice(&tsval.to_le_bytes());
            rec[39..43].copy_from_slice(&tsecr.to_le_bytes());
        }
        self.out.write_all(&rec)?;
        self.count += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> Result<W, PacketError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Reads a native trace stream.
pub struct TraceReader<R: Read> {
    input: R,
}

impl<R: Read> TraceReader<R> {
    /// Open a trace, validating the header.
    pub fn new(mut input: R) -> Result<Self, PacketError> {
        let mut hdr = [0u8; 16];
        input.read_exact(&mut hdr)?;
        if hdr[0..4] != MAGIC {
            return Err(PacketError::BadTrace("bad trace magic".into()));
        }
        let version = u32::from_le_bytes(crate::arr(&hdr[4..8]));
        if version != VERSION {
            return Err(PacketError::BadTrace(format!(
                "unsupported trace version {version}"
            )));
        }
        Ok(TraceReader { input })
    }

    /// Read the next record; `Ok(None)` at clean EOF.
    pub fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError> {
        let mut rec = [0u8; RECORD_LEN];
        // Distinguish clean EOF (zero bytes available) from a truncated
        // record (partial read), which is a corrupt trace.
        let mut filled = 0;
        while filled < RECORD_LEN {
            match self.input.read(&mut rec[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => {
                    return Err(PacketError::BadTrace(format!(
                        "truncated record: {filled} of {RECORD_LEN} bytes"
                    )))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        let ts = Nanos::from_le_bytes(crate::arr(&rec[0..8]));
        let src_ip = u32::from_be_bytes(crate::arr(&rec[8..12]));
        let dst_ip = u32::from_be_bytes(crate::arr(&rec[12..16]));
        let src_port = u16::from_le_bytes(crate::arr(&rec[16..18]));
        let dst_port = u16::from_le_bytes(crate::arr(&rec[18..20]));
        let seq = SeqNum(u32::from_le_bytes(crate::arr(&rec[20..24])));
        let ack = SeqNum(u32::from_le_bytes(crate::arr(&rec[24..28])));
        let payload_len = u32::from_le_bytes(crate::arr(&rec[28..32]));
        let flags = TcpFlags(rec[32]);
        let dir = match rec[33] {
            0 => Direction::Outbound,
            1 => Direction::Inbound,
            _ => return Err(PacketError::BadTrace("bad direction byte".into())),
        };
        let tsopt = match rec[34] {
            0 => None,
            1 => Some((
                u32::from_le_bytes(crate::arr(&rec[35..39])),
                u32::from_le_bytes(crate::arr(&rec[39..43])),
            )),
            _ => return Err(PacketError::BadTrace("bad tsopt flag byte".into())),
        };
        Ok(Some(PacketMeta {
            ts,
            flow: FlowKey::from_raw(src_ip, src_port, dst_ip, dst_port),
            seq,
            ack,
            payload_len,
            flags,
            dir,
            tsopt,
        }))
    }

    /// Iterate over remaining records.
    pub fn packets(self) -> TracePackets<R> {
        TracePackets { reader: self }
    }
}

/// Iterator adapter over a [`TraceReader`].
pub struct TracePackets<R: Read> {
    reader: TraceReader<R>,
}

impl<R: Read> Iterator for TracePackets<R> {
    type Item = Result<PacketMeta, PacketError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.next_packet().transpose()
    }
}

/// Serialize a whole trace to a byte vector.
#[allow(clippy::expect_used)] // Vec<u8> writes are infallible
pub fn to_bytes(packets: &[PacketMeta]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + packets.len() * RECORD_LEN);
    let mut w = TraceWriter::new(&mut buf).expect("vec write cannot fail");
    for p in packets {
        w.write(p).expect("vec write cannot fail");
    }
    w.finish().expect("vec write cannot fail");
    buf
}

/// Deserialize a whole trace from bytes.
pub fn from_bytes(bytes: &[u8]) -> Result<Vec<PacketMeta>, PacketError> {
    TraceReader::new(bytes)?.packets().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::PacketBuilder;

    fn sample_packets() -> Vec<PacketMeta> {
        let f = FlowKey::from_raw(0x0a00_0001, 443, 0xc0a8_0005, 51111);
        vec![
            PacketBuilder::new(f, 100)
                .seq(1u32)
                .payload(1000)
                .dir(Direction::Inbound)
                .build(),
            PacketBuilder::new(f.reverse(), 250)
                .ack(1001u32)
                .dir(Direction::Outbound)
                .build(),
            PacketBuilder::new(f, 300).seq(1001u32).syn().build(),
            PacketBuilder::new(f, 400)
                .seq(1002u32)
                .payload(10)
                .tsopt(77, 88)
                .build(),
        ]
    }

    #[test]
    fn round_trip() {
        let pkts = sample_packets();
        let bytes = to_bytes(&pkts);
        assert_eq!(bytes.len(), 16 + pkts.len() * RECORD_LEN);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, pkts);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&sample_packets());
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = to_bytes(&sample_packets());
        bytes[4] = 99;
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_record_errors() {
        let mut bytes = to_bytes(&sample_packets());
        bytes.truncate(bytes.len() - 1);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = to_bytes(&[]);
        assert_eq!(from_bytes(&bytes).unwrap(), Vec::<PacketMeta>::new());
    }
}
