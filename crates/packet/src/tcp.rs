//! TCP header representation, flags, and wire encoding/decoding.

use crate::error::PacketError;
use crate::seq::SeqNum;
use bytes::{Buf, BufMut};

/// TCP control flags (the low 8 bits of the flags field).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN: no more data from sender.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: acknowledgment field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG: urgent pointer is significant.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Marker: this record describes a QUIC short-header packet, not a TCP
    /// segment. Bits 0x40/0x80 are unused by the TCP flag set this crate
    /// models, so QUIC spin observations reuse the same 43-byte trace
    /// record with `seq`/`ack`/`payload_len` zeroed and carry the spin bit
    /// in [`TcpFlags::SPIN`]. SEQ/ACK-based classification
    /// (`PacketMeta::is_seq`/`is_ack`) treats marked packets as having no
    /// role, so TCP engines and the TCP oracle are uniformly blind to them.
    pub const QUIC: TcpFlags = TcpFlags(0x40);
    /// The QUIC spin-bit value (RFC 9000 §17.4), meaningful only when
    /// [`TcpFlags::QUIC`] is set.
    pub const SPIN: TcpFlags = TcpFlags(0x80);

    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);

    /// Union of two flag sets.
    #[inline]
    pub const fn or(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// True if every flag in `mask` is set.
    #[inline]
    pub const fn contains(self, mask: TcpFlags) -> bool {
        self.0 & mask.0 == mask.0
    }

    /// True if any flag in `mask` is set.
    #[inline]
    pub const fn intersects(self, mask: TcpFlags) -> bool {
        self.0 & mask.0 != 0
    }

    /// SYN is set (covers both SYN and SYN-ACK — the packets Dart's `-SYN`
    /// policy ignores entirely, paper §3.1).
    #[inline]
    pub const fn is_syn(self) -> bool {
        self.0 & Self::SYN.0 != 0
    }

    /// ACK is set.
    #[inline]
    pub const fn is_ack(self) -> bool {
        self.0 & Self::ACK.0 != 0
    }

    /// FIN is set.
    #[inline]
    pub const fn is_fin(self) -> bool {
        self.0 & Self::FIN.0 != 0
    }

    /// RST is set.
    #[inline]
    pub const fn is_rst(self) -> bool {
        self.0 & Self::RST.0 != 0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        self.or(rhs)
    }
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names = [
            (Self::FIN, 'F'),
            (Self::SYN, 'S'),
            (Self::RST, 'R'),
            (Self::PSH, 'P'),
            (Self::ACK, 'A'),
            (Self::URG, 'U'),
            (Self::QUIC, 'Q'),
            (Self::SPIN, 'B'),
        ];
        let mut any = false;
        for (flag, c) in names {
            if self.contains(flag) {
                write!(f, "{c}")?;
                any = true;
            }
        }
        if !any {
            write!(f, ".")?;
        }
        Ok(())
    }
}

/// A decoded TCP header. Options are preserved as raw bytes; Dart itself
/// never inspects options (it works from sequence/ack numbers alone).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: SeqNum,
    /// Acknowledgment number (meaningful when the ACK flag is set).
    pub ack: SeqNum,
    /// Header length in 32-bit words (5..=15).
    pub data_offset: u8,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Checksum as on the wire (not validated by the monitor).
    pub checksum: u16,
    /// Urgent pointer.
    pub urgent: u16,
    /// Raw option bytes (may be empty).
    pub options: Vec<u8>,
}

impl TcpHeader {
    /// Minimum header length in bytes.
    pub const MIN_LEN: usize = 20;

    /// Header length in bytes as implied by `data_offset`.
    #[inline]
    pub fn header_len(&self) -> usize {
        self.data_offset as usize * 4
    }

    /// Decode a TCP header from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<TcpHeader, PacketError> {
        if buf.len() < Self::MIN_LEN {
            return Err(PacketError::Truncated {
                layer: "tcp",
                needed: Self::MIN_LEN,
                got: buf.len(),
            });
        }
        let mut b = buf;
        let src_port = b.get_u16();
        let dst_port = b.get_u16();
        let seq = SeqNum(b.get_u32());
        let ack = SeqNum(b.get_u32());
        let off_flags = b.get_u16();
        let data_offset = (off_flags >> 12) as u8;
        let flags = TcpFlags((off_flags & 0xFF) as u8);
        let window = b.get_u16();
        let checksum = b.get_u16();
        let urgent = b.get_u16();
        if data_offset < 5 {
            return Err(PacketError::Malformed {
                layer: "tcp",
                reason: "data offset below 5",
            });
        }
        let hlen = data_offset as usize * 4;
        if buf.len() < hlen {
            return Err(PacketError::Truncated {
                layer: "tcp",
                needed: hlen,
                got: buf.len(),
            });
        }
        let options = buf[Self::MIN_LEN..hlen].to_vec();
        Ok(TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            data_offset,
            flags,
            window,
            checksum,
            urgent,
            options,
        })
    }

    /// Encode onto `out`. `data_offset` must agree with the padded option
    /// length; encoding pads options with NOPs to a 4-byte boundary.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let padded = self.options.len().div_ceil(4) * 4;
        let data_offset = ((Self::MIN_LEN + padded) / 4) as u16;
        out.put_u16(self.src_port);
        out.put_u16(self.dst_port);
        out.put_u32(self.seq.raw());
        out.put_u32(self.ack.raw());
        out.put_u16((data_offset << 12) | self.flags.0 as u16);
        out.put_u16(self.window);
        out.put_u16(self.checksum);
        out.put_u16(self.urgent);
        out.extend_from_slice(&self.options);
        for _ in self.options.len()..padded {
            out.push(0x01); // NOP
        }
    }
}

/// TCP option kinds this crate understands.
pub mod option {
    /// End of option list.
    pub const EOL: u8 = 0;
    /// No-operation padding.
    pub const NOP: u8 = 1;
    /// RFC 7323 timestamps (kind 8, length 10).
    pub const TIMESTAMPS: u8 = 8;
}

impl TcpHeader {
    /// Extract the RFC 7323 timestamp option `(TSval, TSecr)`, if present
    /// and well-formed.
    pub fn timestamps(&self) -> Option<(u32, u32)> {
        let mut opts = &self.options[..];
        while let [kind, rest @ ..] = opts {
            match *kind {
                option::EOL => return None,
                option::NOP => opts = rest,
                option::TIMESTAMPS => {
                    // kind(1) + len(1) + tsval(4) + tsecr(4)
                    if rest.len() >= 9 && rest[0] == 10 {
                        let tsval = u32::from_be_bytes(crate::arr(&rest[1..5]));
                        let tsecr = u32::from_be_bytes(crate::arr(&rest[5..9]));
                        return Some((tsval, tsecr));
                    }
                    return None;
                }
                _ => {
                    // Any other option: skip by its length byte.
                    let [len, tail @ ..] = rest else { return None };
                    let skip = (*len as usize).checked_sub(2)?;
                    if tail.len() < skip {
                        return None;
                    }
                    opts = &tail[skip..];
                }
            }
        }
        None
    }

    /// Encode a timestamp option (with two leading NOPs for alignment, as
    /// real stacks emit it) into an options byte vector.
    pub fn timestamp_option(tsval: u32, tsecr: u32) -> Vec<u8> {
        let mut v = Vec::with_capacity(12);
        v.push(option::NOP);
        v.push(option::NOP);
        v.push(option::TIMESTAMPS);
        v.push(10);
        v.extend_from_slice(&tsval.to_be_bytes());
        v.extend_from_slice(&tsecr.to_be_bytes());
        v
    }
}

impl Default for TcpHeader {
    fn default() -> Self {
        TcpHeader {
            src_port: 0,
            dst_port: 0,
            seq: SeqNum::ZERO,
            ack: SeqNum::ZERO,
            data_offset: 5,
            flags: TcpFlags::EMPTY,
            window: 65535,
            checksum: 0,
            urgent: 0,
            options: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_display_and_predicates() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.is_syn());
        assert!(f.is_ack());
        assert!(!f.is_fin());
        assert_eq!(f.to_string(), "SA");
        assert_eq!(TcpFlags::EMPTY.to_string(), ".");
    }

    #[test]
    fn quic_marker_bits_render_and_stay_disjoint() {
        assert_eq!(TcpFlags::QUIC.0 & 0x3F, 0, "QUIC must not alias a TCP flag");
        assert_eq!(TcpFlags::SPIN.0 & 0x3F, 0, "SPIN must not alias a TCP flag");
        assert_eq!((TcpFlags::QUIC | TcpFlags::SPIN).to_string(), "QB");
        assert!(!(TcpFlags::QUIC | TcpFlags::SPIN).is_ack());
    }

    #[test]
    fn header_round_trip_no_options() {
        let hdr = TcpHeader {
            src_port: 443,
            dst_port: 51000,
            seq: SeqNum(123456),
            ack: SeqNum(654321),
            data_offset: 5,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 29200,
            checksum: 0xBEEF,
            urgent: 0,
            options: vec![],
        };
        let mut wire = Vec::new();
        hdr.encode(&mut wire);
        assert_eq!(wire.len(), 20);
        let back = TcpHeader::decode(&wire).unwrap();
        assert_eq!(back, hdr);
    }

    #[test]
    fn header_round_trip_with_options() {
        let hdr = TcpHeader {
            options: vec![2, 4, 5, 0xb4, 1, 1], // MSS + 2 NOP, padded to 8
            ..TcpHeader::default()
        };
        let mut wire = Vec::new();
        hdr.encode(&mut wire);
        assert_eq!(wire.len(), 28);
        let back = TcpHeader::decode(&wire).unwrap();
        assert_eq!(back.header_len(), 28);
        assert_eq!(&back.options[..6], &hdr.options[..]);
    }

    #[test]
    fn timestamp_option_round_trips() {
        let hdr = TcpHeader {
            options: TcpHeader::timestamp_option(0xAABBCCDD, 0x11223344),
            ..TcpHeader::default()
        };
        let mut wire = Vec::new();
        hdr.encode(&mut wire);
        let back = TcpHeader::decode(&wire).unwrap();
        assert_eq!(back.timestamps(), Some((0xAABBCCDD, 0x11223344)));
    }

    #[test]
    fn timestamps_absent_when_no_option() {
        assert_eq!(TcpHeader::default().timestamps(), None);
        // An MSS option alone is skipped correctly.
        let hdr = TcpHeader {
            options: vec![2, 4, 5, 0xb4],
            ..TcpHeader::default()
        };
        assert_eq!(hdr.timestamps(), None);
    }

    #[test]
    fn malformed_option_list_is_safe() {
        let hdr = TcpHeader {
            options: vec![8, 10, 1], // truncated timestamp option
            ..TcpHeader::default()
        };
        assert_eq!(hdr.timestamps(), None);
        let hdr2 = TcpHeader {
            options: vec![99], // unknown kind with no length byte
            ..TcpHeader::default()
        };
        assert_eq!(hdr2.timestamps(), None);
    }

    #[test]
    fn decode_rejects_truncated() {
        let err = TcpHeader::decode(&[0u8; 10]).unwrap_err();
        assert!(matches!(err, PacketError::Truncated { layer: "tcp", .. }));
    }

    #[test]
    fn decode_rejects_bad_offset() {
        let mut wire = Vec::new();
        TcpHeader::default().encode(&mut wire);
        wire[12] = 0x20; // data offset 2 (< 5)
        assert!(matches!(
            TcpHeader::decode(&wire).unwrap_err(),
            PacketError::Malformed { layer: "tcp", .. }
        ));
    }
}
