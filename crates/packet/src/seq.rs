//! Wrapping 32-bit TCP sequence-number arithmetic.
//!
//! TCP sequence numbers live in a 32-bit circular space. Comparisons must be
//! performed modulo 2^32 with a signed-distance convention (RFC 793 / RFC
//! 7323): `a` is *before* `b` when the signed difference `a - b` is negative.
//! Dart's Range Tracker depends on these comparisons to classify every data
//! and acknowledgment packet, and on explicit wraparound detection to reset
//! the measurement range (paper §4, "TCP sequence number wraparound").

use std::fmt;

/// A TCP sequence number in the 32-bit circular space.
///
/// All ordering operations are modular: [`SeqNum::lt`], [`SeqNum::leq`], etc.
/// compare positions on the circle, not raw integers. `Ord` is deliberately
/// **not** implemented — linear ordering of circular quantities is the exact
/// bug class this type exists to prevent.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// The zero sequence number.
    pub const ZERO: SeqNum = SeqNum(0);

    /// Construct from a raw wire value.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        SeqNum(raw)
    }

    /// The raw 32-bit wire value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Advance by `n` bytes, wrapping modulo 2^32.
    #[inline]
    pub const fn add(self, n: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(n))
    }

    /// Step back by `n` bytes, wrapping modulo 2^32.
    #[inline]
    pub const fn sub(self, n: u32) -> SeqNum {
        SeqNum(self.0.wrapping_sub(n))
    }

    /// Signed circular distance from `other` to `self`.
    ///
    /// Positive when `self` is ahead of `other` (within half the space),
    /// negative when behind. The magnitude is meaningful only for distances
    /// below 2^31.
    #[inline]
    pub const fn distance(self, other: SeqNum) -> i32 {
        self.0.wrapping_sub(other.0) as i32
    }

    /// `self < other` in circular order.
    #[inline]
    pub const fn lt(self, other: SeqNum) -> bool {
        self.distance(other) < 0
    }

    /// `self <= other` in circular order.
    #[inline]
    pub const fn leq(self, other: SeqNum) -> bool {
        self.distance(other) <= 0
    }

    /// `self > other` in circular order.
    #[inline]
    pub const fn gt(self, other: SeqNum) -> bool {
        self.distance(other) > 0
    }

    /// `self >= other` in circular order.
    #[inline]
    pub const fn geq(self, other: SeqNum) -> bool {
        self.distance(other) >= 0
    }

    /// The circular maximum of two sequence numbers.
    #[inline]
    pub fn max(self, other: SeqNum) -> SeqNum {
        if self.geq(other) {
            self
        } else {
            other
        }
    }

    /// The circular minimum of two sequence numbers.
    #[inline]
    pub fn min(self, other: SeqNum) -> SeqNum {
        if self.leq(other) {
            self
        } else {
            other
        }
    }

    /// True when `self` lies in the half-open circular interval
    /// `(lo, hi]` — the test Dart's Range Tracker applies to decide whether
    /// an ACK falls inside the current measurement range.
    #[inline]
    pub fn in_range(self, lo: SeqNum, hi: SeqNum) -> bool {
        self.gt(lo) && self.leq(hi)
    }

    /// Detect a wraparound step: moving from `self` to `next` crosses zero
    /// going forward (i.e., `next`'s raw value is numerically smaller while
    /// being circularly ahead).
    #[inline]
    pub fn wraps_to(self, next: SeqNum) -> bool {
        next.raw() < self.raw() && self.lt(next)
    }
}

impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SeqNum({})", self.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for SeqNum {
    #[inline]
    fn from(v: u32) -> Self {
        SeqNum(v)
    }
}

impl From<SeqNum> for u32 {
    #[inline]
    fn from(v: SeqNum) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_without_wrap() {
        let a = SeqNum(100);
        let b = SeqNum(200);
        assert!(a.lt(b));
        assert!(a.leq(b));
        assert!(b.gt(a));
        assert!(b.geq(a));
        assert!(!a.gt(b));
        assert!(a.leq(a));
        assert!(a.geq(a));
        assert!(!a.lt(a));
    }

    #[test]
    fn ordering_across_wrap() {
        let near_top = SeqNum(u32::MAX - 10);
        let past_zero = SeqNum(5);
        assert!(near_top.lt(past_zero));
        assert!(past_zero.gt(near_top));
        assert_eq!(past_zero.distance(near_top), 16);
    }

    #[test]
    fn add_and_sub_wrap() {
        let s = SeqNum(u32::MAX - 1);
        assert_eq!(s.add(3), SeqNum(1));
        assert_eq!(SeqNum(1).sub(3), SeqNum(u32::MAX - 1));
    }

    #[test]
    fn distance_signs() {
        assert_eq!(SeqNum(10).distance(SeqNum(4)), 6);
        assert_eq!(SeqNum(4).distance(SeqNum(10)), -6);
        assert_eq!(SeqNum(0).distance(SeqNum(0)), 0);
    }

    #[test]
    fn circular_max_min() {
        let near_top = SeqNum(u32::MAX - 2);
        let past_zero = SeqNum(7);
        assert_eq!(near_top.max(past_zero), past_zero);
        assert_eq!(near_top.min(past_zero), near_top);
        assert_eq!(SeqNum(5).max(SeqNum(9)), SeqNum(9));
    }

    #[test]
    fn in_range_half_open() {
        let lo = SeqNum(100);
        let hi = SeqNum(200);
        assert!(!SeqNum(100).in_range(lo, hi)); // left edge excluded
        assert!(SeqNum(101).in_range(lo, hi));
        assert!(SeqNum(200).in_range(lo, hi)); // right edge included
        assert!(!SeqNum(201).in_range(lo, hi));
        assert!(!SeqNum(50).in_range(lo, hi));
    }

    #[test]
    fn in_range_across_wrap() {
        let lo = SeqNum(u32::MAX - 5);
        let hi = SeqNum(10);
        assert!(SeqNum(0).in_range(lo, hi));
        assert!(SeqNum(10).in_range(lo, hi));
        assert!(!SeqNum(11).in_range(lo, hi));
        assert!(!SeqNum(u32::MAX - 5).in_range(lo, hi));
        assert!(SeqNum(u32::MAX - 4).in_range(lo, hi));
    }

    #[test]
    fn wraparound_detection() {
        assert!(SeqNum(u32::MAX - 100).wraps_to(SeqNum(50)));
        assert!(!SeqNum(100).wraps_to(SeqNum(200)));
        // Going backwards across zero is not a forward wrap.
        assert!(!SeqNum(50).wraps_to(SeqNum(u32::MAX - 100)));
    }
}
