//! # dart-packet
//!
//! Packet substrate for the Dart reproduction: protocol header types,
//! wrapping TCP sequence arithmetic, flow identification and data-plane
//! signatures, wire-format parsing, and trace I/O (native format + libpcap).
//!
//! Everything downstream — the Dart engine, the baselines, the simulator,
//! and the benchmark harness — speaks [`PacketMeta`], the monitor's compact
//! view of one TCP packet.
//!
//! ```
//! use dart_packet::{FlowKey, PacketBuilder, SeqNum};
//!
//! let flow = FlowKey::from_raw(0x0a000001, 443, 0xc0a80001, 55000);
//! let data = PacketBuilder::new(flow, 1_000_000).seq(100u32).payload(1460).build();
//! assert_eq!(data.eack(), SeqNum(1560));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod ethernet;
pub mod flow;
pub mod ipv4;
pub mod ipv6;
pub mod meta;
pub mod parse;
pub mod payload;
pub mod pcap;
pub mod reconnect;
pub mod seq;
pub mod source;
pub mod tcp;
pub mod trace;

pub use error::PacketError;
pub use flow::{FlowKey, FlowSignature, PacketId, SignatureWidth};
pub use meta::{Direction, Nanos, PacketBuilder, PacketMeta, MICROSECOND, MILLISECOND, SECOND};
pub use reconnect::{Reconnecting, SourceCounters, SourceFactory};
pub use seq::SeqNum;
pub use source::{CycleSource, Follow, IterSource, PacketSource, PcapSource, SliceSource};
pub use tcp::TcpFlags;

/// Copy the first `N` bytes of `b` into a fixed array. Callers pass
/// compile-time in-bounds slices of fixed-size buffers (a shorter slice
/// panics like the indexing it replaces), so field decoding avoids
/// `try_into().unwrap()` under the crate's unwrap-denying lint.
pub(crate) fn arr<const N: usize>(b: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(&b[..N]);
    out
}
