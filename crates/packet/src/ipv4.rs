//! IPv4 header representation and wire encoding/decoding.

use crate::error::PacketError;
use bytes::{Buf, BufMut};
use std::net::Ipv4Addr;

/// IP protocol numbers Dart cares about.
pub mod protocol {
    /// TCP (the only protocol Dart tracks).
    pub const TCP: u8 = 6;
    /// UDP (passed through unmonitored).
    pub const UDP: u8 = 17;
    /// ICMP.
    pub const ICMP: u8 = 1;
}

/// A decoded IPv4 header. Options are preserved raw.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ipv4Header {
    /// Internet header length in 32-bit words (5..=15).
    pub ihl: u8,
    /// DSCP + ECN byte.
    pub tos: u8,
    /// Total datagram length in bytes (header + payload).
    pub total_len: u16,
    /// Identification field.
    pub ident: u16,
    /// Flags (3 bits) + fragment offset (13 bits).
    pub flags_frag: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol (see [`protocol`]).
    pub proto: u8,
    /// Header checksum as on the wire.
    pub checksum: u16,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Raw option bytes.
    pub options: Vec<u8>,
}

impl Ipv4Header {
    /// Minimum header length in bytes.
    pub const MIN_LEN: usize = 20;

    /// Header length in bytes implied by `ihl`.
    #[inline]
    pub fn header_len(&self) -> usize {
        self.ihl as usize * 4
    }

    /// Length of the IP payload (e.g. the TCP segment) in bytes.
    #[inline]
    pub fn payload_len(&self) -> usize {
        (self.total_len as usize).saturating_sub(self.header_len())
    }

    /// Compute the RFC 1071 header checksum over the encoded header with the
    /// checksum field zeroed.
    pub fn compute_checksum(&self) -> u16 {
        let mut tmp = self.clone();
        tmp.checksum = 0;
        let mut wire = Vec::with_capacity(tmp.header_len());
        tmp.encode_raw(&mut wire);
        internet_checksum(&wire)
    }

    /// Decode an IPv4 header from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<Ipv4Header, PacketError> {
        if buf.len() < Self::MIN_LEN {
            return Err(PacketError::Truncated {
                layer: "ipv4",
                needed: Self::MIN_LEN,
                got: buf.len(),
            });
        }
        let mut b = buf;
        let ver_ihl = b.get_u8();
        if ver_ihl >> 4 != 4 {
            return Err(PacketError::Malformed {
                layer: "ipv4",
                reason: "version is not 4",
            });
        }
        let ihl = ver_ihl & 0x0F;
        if ihl < 5 {
            return Err(PacketError::Malformed {
                layer: "ipv4",
                reason: "ihl below 5",
            });
        }
        let tos = b.get_u8();
        let total_len = b.get_u16();
        let ident = b.get_u16();
        let flags_frag = b.get_u16();
        let ttl = b.get_u8();
        let proto = b.get_u8();
        let checksum = b.get_u16();
        let src = Ipv4Addr::from(b.get_u32());
        let dst = Ipv4Addr::from(b.get_u32());
        let hlen = ihl as usize * 4;
        if buf.len() < hlen {
            return Err(PacketError::Truncated {
                layer: "ipv4",
                needed: hlen,
                got: buf.len(),
            });
        }
        let options = buf[Self::MIN_LEN..hlen].to_vec();
        Ok(Ipv4Header {
            ihl,
            tos,
            total_len,
            ident,
            flags_frag,
            ttl,
            proto,
            checksum,
            src,
            dst,
            options,
        })
    }

    fn encode_raw(&self, out: &mut Vec<u8>) {
        let padded = self.options.len().div_ceil(4) * 4;
        let ihl = ((Self::MIN_LEN + padded) / 4) as u8;
        out.put_u8((4 << 4) | ihl);
        out.put_u8(self.tos);
        out.put_u16(self.total_len);
        out.put_u16(self.ident);
        out.put_u16(self.flags_frag);
        out.put_u8(self.ttl);
        out.put_u8(self.proto);
        out.put_u16(self.checksum);
        out.put_u32(u32::from(self.src));
        out.put_u32(u32::from(self.dst));
        out.extend_from_slice(&self.options);
        for _ in self.options.len()..padded {
            out.push(0);
        }
    }

    /// Encode onto `out` with a freshly computed checksum.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut tmp = self.clone();
        tmp.checksum = self.compute_checksum();
        tmp.encode_raw(out);
    }
}

impl Default for Ipv4Header {
    fn default() -> Self {
        Ipv4Header {
            ihl: 5,
            tos: 0,
            total_len: 20,
            ident: 0,
            flags_frag: 0x4000, // don't fragment
            ttl: 64,
            proto: protocol::TCP,
            checksum: 0,
            src: Ipv4Addr::UNSPECIFIED,
            dst: Ipv4Addr::UNSPECIFIED,
            options: Vec::new(),
        }
    }
}

/// RFC 1071 internet checksum.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let hdr = Ipv4Header {
            total_len: 1500,
            ident: 0x1234,
            ttl: 57,
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(192, 168, 1, 2),
            ..Ipv4Header::default()
        };
        let mut wire = Vec::new();
        hdr.encode(&mut wire);
        assert_eq!(wire.len(), 20);
        let back = Ipv4Header::decode(&wire).unwrap();
        assert_eq!(back.src, hdr.src);
        assert_eq!(back.dst, hdr.dst);
        assert_eq!(back.total_len, 1500);
        // The decoded checksum must verify: checksum over the full header is 0.
        assert_eq!(internet_checksum(&wire), 0);
    }

    #[test]
    fn payload_len_subtracts_header() {
        let hdr = Ipv4Header {
            total_len: 60,
            ..Ipv4Header::default()
        };
        assert_eq!(hdr.payload_len(), 40);
    }

    #[test]
    fn rejects_non_v4() {
        let mut wire = Vec::new();
        Ipv4Header::default().encode(&mut wire);
        wire[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::decode(&wire).unwrap_err(),
            PacketError::Malformed { layer: "ipv4", .. }
        ));
    }

    #[test]
    fn rejects_truncated() {
        assert!(Ipv4Header::decode(&[0u8; 8]).is_err());
    }

    #[test]
    fn checksum_reference_vector() {
        // Example from RFC 1071 discussions: header with known checksum.
        let wire: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(internet_checksum(&wire), 0xb861);
    }
}
