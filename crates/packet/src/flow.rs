//! Flow identification: the TCP connection 4-tuple and its compressed
//! data-plane signatures.
//!
//! Dart keys its Range Tracker by the connection 4-tuple and its Packet
//! Tracker by the 4-tuple plus the expected ACK number. Since a hardware
//! register key cannot hold the full 12-byte tuple, the prototype compresses
//! it to a fixed 4-byte hash (paper §4, "Constrained signature wordsize");
//! [`FlowSignature`] reproduces that compression, including the possibility
//! of collisions.

use crate::seq::SeqNum;
use std::fmt;
use std::net::Ipv4Addr;

/// A TCP connection 4-tuple as observed in one direction.
///
/// `src`/`dst` are the IP addresses and ports of the packet carrying this
/// key. The two directions of one connection yield keys that are each
/// other's [`reverse`](FlowKey::reverse); [`canonical`](FlowKey::canonical)
/// maps both onto a single representative for per-connection bookkeeping.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source TCP port.
    pub src_port: u16,
    /// Destination TCP port.
    pub dst_port: u16,
}

impl FlowKey {
    /// Build a flow key from addresses and ports.
    pub fn new(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FlowKey {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
        }
    }

    /// Convenience constructor from raw u32 addresses (host byte order).
    pub fn from_raw(src_ip: u32, src_port: u16, dst_ip: u32, dst_port: u16) -> Self {
        FlowKey::new(
            Ipv4Addr::from(src_ip),
            src_port,
            Ipv4Addr::from(dst_ip),
            dst_port,
        )
    }

    /// The same connection seen from the opposite direction: an ACK for a
    /// data packet with key `k` arrives with key `k.reverse()`.
    #[inline]
    pub fn reverse(&self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// A direction-independent representative of the connection: the
    /// lexicographically smaller of the key and its reverse.
    #[inline]
    pub fn canonical(&self) -> FlowKey {
        let rev = self.reverse();
        if *self <= rev {
            *self
        } else {
            rev
        }
    }

    /// True when this key and `other` name the same connection (possibly in
    /// opposite directions).
    #[inline]
    pub fn same_connection(&self, other: &FlowKey) -> bool {
        *self == *other || *self == other.reverse()
    }

    /// Direction-independent 64-bit hash of the connection: both directions
    /// of one flow map to the same value, so data packets and their ACKs
    /// land on the same engine shard. Allocation-free (hashes the canonical
    /// key's stack-resident wire bytes).
    ///
    /// The FNV-1a base hash diffuses poorly into its low bits (correlated
    /// tuples can collide modulo small shard counts), so the result is
    /// passed through a SplitMix64-style avalanche finalizer — every input
    /// bit affects every output bit, making `hash % shards` well balanced.
    #[inline]
    pub fn symmetric_hash(&self) -> u64 {
        let h = fnv1a_64(&self.canonical().to_bytes());
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The 12-byte wire representation (src ip, dst ip, src port, dst port,
    /// all big-endian) used as hash input — mirrors what the P4 prototype
    /// feeds its hash units.
    #[inline]
    pub fn to_bytes(&self) -> [u8; 12] {
        let mut b = [0u8; 12];
        b[0..4].copy_from_slice(&self.src_ip.octets());
        b[4..8].copy_from_slice(&self.dst_ip.octets());
        b[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        b
    }

    /// Compress to a fixed-width data-plane signature.
    #[inline]
    pub fn signature(&self, width: SignatureWidth) -> FlowSignature {
        FlowSignature::of(self, width)
    }
}

impl fmt::Debug for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{}",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The number of bits retained when compressing a [`FlowKey`] into a
/// register-resident signature. The Tofino prototype uses 32 bits; narrower
/// and wider variants exist for the signature-width ablation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum SignatureWidth {
    /// 16-bit signature: high collision rate, minimal SRAM.
    W16,
    /// 32-bit signature: the prototype's choice (paper §4).
    #[default]
    W32,
    /// 64-bit signature: near-zero collision rate, double the SRAM.
    W64,
}

impl SignatureWidth {
    /// Number of bits retained.
    pub fn bits(self) -> u32 {
        match self {
            SignatureWidth::W16 => 16,
            SignatureWidth::W32 => 32,
            SignatureWidth::W64 => 64,
        }
    }

    /// Mask applied to the 64-bit base hash.
    fn mask(self) -> u64 {
        match self {
            SignatureWidth::W16 => 0xFFFF,
            SignatureWidth::W32 => 0xFFFF_FFFF,
            SignatureWidth::W64 => u64::MAX,
        }
    }
}

/// A compressed flow identifier as stored in data-plane registers.
///
/// Two distinct connections may share a signature (a hash collision); Dart
/// tolerates this at the cost of rare mismatched samples, exactly as the
/// hardware prototype does.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowSignature(pub u64);

impl FlowSignature {
    /// Compress `key` with an FNV-1a based mix truncated to `width` bits.
    #[inline]
    pub fn of(key: &FlowKey, width: SignatureWidth) -> FlowSignature {
        let h = fnv1a_64(&key.to_bytes());
        // Fold the top half in so narrow widths still see all input bits.
        let folded = h ^ (h >> 32) ^ (h >> 17);
        FlowSignature(match width {
            SignatureWidth::W64 => h,
            _ => folded & width.mask(),
        })
    }

    /// Raw signature value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// The Packet Tracker key: flow signature plus the expected ACK number of a
/// tracked data packet (paper Fig. 2: "Flow, eACK").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PacketId {
    /// Compressed flow identity.
    pub sig: FlowSignature,
    /// The ACK number that will acknowledge this data packet.
    pub eack: SeqNum,
}

impl PacketId {
    /// Build a packet identifier.
    pub fn new(sig: FlowSignature, eack: SeqNum) -> Self {
        PacketId { sig, eack }
    }
}

/// 64-bit FNV-1a hash, the base mix for flow signatures and table indexing.
#[inline]
pub fn fnv1a_64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey::from_raw(0x0a00_0001, 443, 0xc0a8_0102, 51234)
    }

    #[test]
    fn reverse_round_trips() {
        let k = key();
        assert_eq!(k.reverse().reverse(), k);
        assert_ne!(k.reverse(), k);
    }

    #[test]
    fn canonical_is_direction_independent() {
        let k = key();
        assert_eq!(k.canonical(), k.reverse().canonical());
    }

    #[test]
    fn same_connection_detects_both_directions() {
        let k = key();
        assert!(k.same_connection(&k));
        assert!(k.same_connection(&k.reverse()));
        let other = FlowKey::from_raw(1, 2, 3, 4);
        assert!(!k.same_connection(&other));
    }

    #[test]
    fn signature_depends_on_direction() {
        // The RT is looked up with the SEQ-direction key for data packets and
        // the reversed key for ACKs; signatures must differ per direction.
        let k = key();
        assert_ne!(
            k.signature(SignatureWidth::W32),
            k.reverse().signature(SignatureWidth::W32)
        );
    }

    #[test]
    fn signature_widths_mask_correctly() {
        let k = key();
        assert!(k.signature(SignatureWidth::W16).raw() <= 0xFFFF);
        assert!(k.signature(SignatureWidth::W32).raw() <= u32::MAX as u64);
    }

    #[test]
    fn signature_is_deterministic() {
        let k = key();
        assert_eq!(
            k.signature(SignatureWidth::W32),
            k.signature(SignatureWidth::W32)
        );
    }

    #[test]
    fn symmetric_hash_is_direction_independent() {
        let k = key();
        assert_eq!(k.symmetric_hash(), k.reverse().symmetric_hash());
        let other = FlowKey::from_raw(1, 2, 3, 4);
        assert_ne!(k.symmetric_hash(), other.symmetric_hash());
    }

    #[test]
    fn symmetric_hash_low_bits_are_balanced() {
        // Correlated tuples (sequential ip + port, the shape a scenario
        // generator produces) must still spread across `hash % n` — the raw
        // FNV-1a value does not guarantee this, the finalizer does.
        let mut buckets = [0u32; 4];
        for n in 0..256u32 {
            let k = FlowKey::from_raw(0x0a00_0000 + n, 40000 + n as u16, 0x5db8_d822, 443);
            buckets[(k.symmetric_hash() % 4) as usize] += 1;
        }
        for (i, b) in buckets.iter().enumerate() {
            assert!((32..=96).contains(b), "bucket {i} holds {b} of 256");
        }
    }

    #[test]
    fn wire_bytes_are_big_endian() {
        let k = FlowKey::from_raw(0x01020304, 0x0506, 0x0708090a, 0x0b0c);
        assert_eq!(k.to_bytes(), [1, 2, 3, 4, 7, 8, 9, 10, 5, 6, 11, 12]);
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // Known FNV-1a 64 test vector.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
