//! Streaming packet sources: feed a monitor without materializing a trace.
//!
//! A [`PacketSource`] yields [`PacketMeta`] one packet at a time in capture
//! order, so engines can process traces far larger than RAM. Sources exist
//! for every place packets come from:
//!
//! * [`SliceSource`] — an in-memory trace (tests, the bench harness);
//! * [`IterSource`] — any infallible packet iterator (simulators);
//! * [`TraceReader`] — the native on-disk format, already record-streaming;
//! * [`PcapSource`] — a pcap capture, parsed and direction-classified on
//!   the fly, skipping non-TCP frames like the hardware parser would;
//! * [`Follow`] — a [`Read`] adapter that turns end-of-file into "wait for
//!   more", so the trace/pcap readers can tail a growing capture file or a
//!   fifo that a producer is still writing (the daemon's live ingest);
//! * [`CycleSource`] — an owned trace replayed in a loop with timestamps
//!   rebased each pass, so a finite capture drives an indefinitely long
//!   run with ever-advancing time (soak tests, epoch-rotation exercise).
//!
//! The contract is deliberately minimal: `next_packet` returns `Ok(Some)`
//! per packet in order, `Ok(None)` exactly once at end of stream (and on
//! every call after), or an I/O / format error. [`PacketSource::next_chunk`]
//! batches that into a reusable buffer for consumers that amortize
//! per-packet dispatch (the sharded engine's feeder), with a default
//! implementation in terms of `next_packet` so sources only write one
//! method.

use crate::error::PacketError;
use crate::meta::{Nanos, PacketMeta};
use crate::parse::{parse_ethernet_frame, DirectionClassifier};
use crate::pcap::PcapReader;
use crate::trace::TraceReader;
use std::io::Read;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A stream of packets in capture order.
pub trait PacketSource {
    /// The next packet, `Ok(None)` at (and after) end of stream.
    fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError>;

    /// Fill `buf` (cleared first) with up to `max` packets; returns how
    /// many were read. Zero means end of stream. Lets chunked consumers
    /// reuse one allocation instead of collecting the whole trace.
    fn next_chunk(&mut self, buf: &mut Vec<PacketMeta>, max: usize) -> Result<usize, PacketError> {
        buf.clear();
        while buf.len() < max {
            match self.next_packet()? {
                Some(p) => buf.push(p),
                None => break,
            }
        }
        Ok(buf.len())
    }

    /// The next block of up to `max` packets as a slice; an empty slice
    /// means end of stream. This is the batch drivers' pull point: the
    /// default buffers through `next_chunk` (so the trace readers get a
    /// buffered-slice path for free), while in-memory sources like
    /// [`SliceSource`] override it to hand out a borrowed subslice of the
    /// trace with no copy at all.
    fn next_block<'a>(
        &'a mut self,
        buf: &'a mut Vec<PacketMeta>,
        max: usize,
    ) -> Result<&'a [PacketMeta], PacketError> {
        let n = self.next_chunk(buf, max)?;
        Ok(&buf[..n])
    }
}

/// Boxed sources are sources — this is what lets combinators like
/// `Reconnecting` wrap a `Box<dyn PacketSource + Send>` chosen at runtime
/// by file type. All three methods forward so a concrete source's
/// overrides (e.g. [`SliceSource::next_block`]'s no-copy path) survive
/// the indirection.
impl<P: PacketSource + ?Sized> PacketSource for Box<P> {
    fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError> {
        (**self).next_packet()
    }

    fn next_chunk(&mut self, buf: &mut Vec<PacketMeta>, max: usize) -> Result<usize, PacketError> {
        (**self).next_chunk(buf, max)
    }

    fn next_block<'a>(
        &'a mut self,
        buf: &'a mut Vec<PacketMeta>,
        max: usize,
    ) -> Result<&'a [PacketMeta], PacketError> {
        (**self).next_block(buf, max)
    }
}

/// A source over a borrowed, fully materialized trace.
#[derive(Clone, Debug)]
pub struct SliceSource<'a> {
    packets: &'a [PacketMeta],
    next: usize,
}

impl<'a> SliceSource<'a> {
    /// Stream `packets` in order.
    pub fn new(packets: &'a [PacketMeta]) -> Self {
        SliceSource { packets, next: 0 }
    }

    /// Packets not yet yielded.
    pub fn remaining(&self) -> usize {
        self.packets.len() - self.next
    }
}

impl PacketSource for SliceSource<'_> {
    fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError> {
        let p = self.packets.get(self.next).copied();
        if p.is_some() {
            self.next += 1;
        }
        Ok(p)
    }

    /// Zero-copy override: the block is a subslice of the backing trace;
    /// `buf` is untouched.
    fn next_block<'a>(
        &'a mut self,
        _buf: &'a mut Vec<PacketMeta>,
        max: usize,
    ) -> Result<&'a [PacketMeta], PacketError> {
        let start = self.next;
        let end = start + max.min(self.remaining());
        self.next = end;
        Ok(&self.packets[start..end])
    }
}

impl<'a> From<&'a [PacketMeta]> for SliceSource<'a> {
    fn from(packets: &'a [PacketMeta]) -> Self {
        SliceSource::new(packets)
    }
}

impl<'a> From<&'a Vec<PacketMeta>> for SliceSource<'a> {
    fn from(packets: &'a Vec<PacketMeta>) -> Self {
        SliceSource::new(packets)
    }
}

/// A source over any infallible packet iterator (generators, simulators).
#[derive(Clone, Debug)]
pub struct IterSource<I> {
    iter: I,
}

impl<I: Iterator<Item = PacketMeta>> IterSource<I> {
    /// Stream the iterator's packets in order.
    pub fn new(iter: I) -> Self {
        IterSource { iter }
    }
}

impl<I: Iterator<Item = PacketMeta>> PacketSource for IterSource<I> {
    fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError> {
        Ok(self.iter.next())
    }
}

/// The native trace format already reads record-by-record, so the reader
/// itself is a source.
impl<R: Read> PacketSource for TraceReader<R> {
    fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError> {
        TraceReader::next_packet(self)
    }
}

/// A streaming pcap source: each record is parsed and direction-classified
/// as it is read. Frames the monitor would not see (non-TCP, fragments,
/// truncated) are skipped and counted, matching the batch
/// `load_pcap` semantics.
pub struct PcapSource<R: Read, C: DirectionClassifier> {
    reader: PcapReader<R>,
    classifier: C,
    skipped: u64,
}

impl<R: Read, C: DirectionClassifier> PcapSource<R, C> {
    /// Open a pcap stream; fails on a bad global header.
    pub fn new(input: R, classifier: C) -> Result<Self, PacketError> {
        Ok(PcapSource {
            reader: PcapReader::new(input)?,
            classifier,
            skipped: 0,
        })
    }

    /// Frames skipped so far as unparseable/unmonitored.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

impl<R: Read, C: DirectionClassifier> PacketSource for PcapSource<R, C> {
    fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError> {
        loop {
            let rec = match self.reader.next_record()? {
                Some(rec) => rec,
                None => return Ok(None),
            };
            match parse_ethernet_frame(rec.ts, &rec.data, &self.classifier) {
                Ok(meta) => return Ok(Some(meta)),
                Err(PacketError::Unsupported { .. }) | Err(PacketError::Truncated { .. }) => {
                    self.skipped += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// A [`Read`] adapter that tails a growing input: where the inner reader
/// reports end-of-file, `Follow` sleeps briefly and retries, so a
/// `TraceReader<Follow<File>>` or `PcapSource<Follow<File>, _>` keeps
/// yielding packets as a producer appends to the file (or writes into a
/// fifo). End-of-file becomes real — a final `Ok(0)` — only once the
/// shared stop flag is set.
///
/// The poll sleep backs off: the first dry read waits the base interval
/// (10 ms by default), each consecutive dry read doubles the wait up to a
/// cap (640 ms by default), and any data resets the ladder. A daemon
/// tailing an idle capture therefore wakes O(log idle-time + idle-time/cap)
/// times instead of once per base interval, while a busy stream still
/// sees the base latency.
///
/// Because [`Read::read_exact`] retries through this adapter too, a record
/// split mid-write is simply waited out: the reader blocks at the record
/// boundary until the producer finishes the write, never sees a torn
/// record, and never spins faster than the poll interval.
pub struct Follow<R> {
    inner: R,
    stop: Arc<AtomicBool>,
    poll: Duration,
    max_poll: Duration,
    /// The next dry-read sleep (reset to `poll` whenever data arrives).
    current: Duration,
    /// Dry-read sleeps performed, shared so tests (and gauges) can
    /// observe poll pressure after the adapter moves into a reader.
    polls: Arc<AtomicU64>,
    sleeper: Box<dyn FnMut(Duration) + Send>,
}

impl<R: Read> Follow<R> {
    /// Tail `inner`, sleeping 10 ms at end-of-data (doubling to a 640 ms
    /// cap while the input stays dry), until `stop` is set (at which
    /// point end-of-data becomes end-of-file).
    pub fn new(inner: R, stop: Arc<AtomicBool>) -> Follow<R> {
        let poll = Duration::from_millis(10);
        Follow {
            inner,
            stop,
            poll,
            max_poll: Duration::from_millis(640),
            current: poll,
            polls: Arc::new(AtomicU64::new(0)),
            sleeper: Box::new(std::thread::sleep),
        }
    }

    /// Override the base end-of-data poll interval (the backoff ladder
    /// starts here after every successful read).
    pub fn with_poll_interval(mut self, poll: Duration) -> Follow<R> {
        self.poll = poll;
        self.current = poll;
        if self.max_poll < poll {
            self.max_poll = poll;
        }
        self
    }

    /// Override the backoff cap (clamped to at least the base interval).
    pub fn with_max_poll_interval(mut self, max: Duration) -> Follow<R> {
        self.max_poll = max.max(self.poll);
        self
    }

    /// Replace the sleep implementation (virtual time in tests).
    pub fn with_sleeper(mut self, sleeper: Box<dyn FnMut(Duration) + Send>) -> Follow<R> {
        self.sleeper = sleeper;
        self
    }

    /// A handle counting dry-read sleeps, usable after the adapter moves
    /// into a reader.
    pub fn poll_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.polls)
    }
}

impl<R: Read> Read for Follow<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        loop {
            match self.inner.read(buf) {
                Ok(0) => {
                    if self.stop.load(Ordering::Relaxed) {
                        return Ok(0);
                    }
                    self.polls.fetch_add(1, Ordering::Relaxed);
                    (self.sleeper)(self.current);
                    self.current = (self.current * 2).min(self.max_poll);
                }
                other => {
                    if matches!(other, Ok(n) if n > 0) {
                        self.current = self.poll;
                    }
                    return other;
                }
            }
        }
    }
}

/// An owned trace replayed in a loop with timestamps rebased each pass:
/// pass `k` yields the original packets with `k × period` added to every
/// timestamp, where the period spans the trace plus a configurable
/// inter-pass gap. Time therefore advances monotonically forever — exactly
/// what a long-lived daemon needs to exercise epoch rotation from a finite
/// capture.
///
/// Flow keys repeat across passes by design (it is the same capture), so
/// under rotation each pass's flows look like returning flows whose stale
/// state the previous rotation swept.
#[derive(Clone, Debug)]
pub struct CycleSource {
    packets: Vec<PacketMeta>,
    next: usize,
    offset: Nanos,
    period: Nanos,
    passes_done: u64,
    max_passes: Option<u64>,
    ended: bool,
}

impl CycleSource {
    /// Loop `packets` (capture order assumed) with a 1 ms inter-pass gap.
    /// An empty trace is an immediately-ended source.
    pub fn new(packets: Vec<PacketMeta>) -> CycleSource {
        Self::with_gap(packets, crate::meta::MILLISECOND)
    }

    /// Loop `packets` with `gap` nanoseconds of virtual idle time between
    /// the last packet of one pass and the first of the next.
    pub fn with_gap(packets: Vec<PacketMeta>, gap: Nanos) -> CycleSource {
        let span = match (packets.first(), packets.last()) {
            (Some(first), Some(last)) => last.ts.saturating_sub(first.ts),
            _ => 0,
        };
        CycleSource {
            packets,
            next: 0,
            offset: 0,
            period: span.saturating_add(gap).max(1),
            passes_done: 0,
            max_passes: None,
            ended: false,
        }
    }

    /// Stop after `passes` full replays instead of looping forever (the
    /// unbounded default is for daemons that end via their own shutdown
    /// signal, not stream exhaustion).
    pub fn with_passes(mut self, passes: u64) -> CycleSource {
        self.max_passes = Some(passes);
        self
    }

    /// Full passes completed so far.
    pub fn passes_completed(&self) -> u64 {
        self.passes_done
    }

    /// The timestamp advance applied per pass (trace span + gap).
    pub fn period(&self) -> Nanos {
        self.period
    }
}

impl PacketSource for CycleSource {
    fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError> {
        if self.packets.is_empty() || self.ended {
            return Ok(None);
        }
        if self.next == self.packets.len() {
            self.passes_done += 1;
            if self.max_passes.is_some_and(|max| self.passes_done >= max) {
                self.ended = true;
                return Ok(None);
            }
            self.next = 0;
            self.offset = self.offset.saturating_add(self.period);
        }
        let mut p = self.packets[self.next];
        self.next += 1;
        p.ts = p.ts.saturating_add(self.offset);
        Ok(Some(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;
    use crate::meta::PacketBuilder;

    fn pkt(ts: u64) -> PacketMeta {
        let flow = FlowKey::from_raw(0x0a00_0001, 443, 0xc0a8_0001, 55_000);
        PacketBuilder::new(flow, ts)
            .seq(ts as u32)
            .payload(100)
            .build()
    }

    #[test]
    fn slice_source_streams_in_order_and_ends() {
        let packets = vec![pkt(1), pkt(2), pkt(3)];
        let mut src = SliceSource::new(&packets);
        assert_eq!(src.remaining(), 3);
        assert_eq!(src.next_packet().unwrap(), Some(packets[0]));
        assert_eq!(src.next_packet().unwrap(), Some(packets[1]));
        assert_eq!(src.next_packet().unwrap(), Some(packets[2]));
        assert_eq!(src.next_packet().unwrap(), None);
        // End of stream is sticky.
        assert_eq!(src.next_packet().unwrap(), None);
    }

    #[test]
    fn next_chunk_reuses_buffer_and_reports_counts() {
        let packets: Vec<PacketMeta> = (0..5).map(pkt).collect();
        let mut src = SliceSource::new(&packets);
        let mut buf = Vec::new();
        assert_eq!(src.next_chunk(&mut buf, 2).unwrap(), 2);
        assert_eq!(buf, &packets[0..2]);
        assert_eq!(src.next_chunk(&mut buf, 2).unwrap(), 2);
        assert_eq!(buf, &packets[2..4]);
        assert_eq!(src.next_chunk(&mut buf, 2).unwrap(), 1);
        assert_eq!(buf, &packets[4..5]);
        assert_eq!(src.next_chunk(&mut buf, 2).unwrap(), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn slice_source_blocks_are_borrowed_subslices() {
        let packets: Vec<PacketMeta> = (0..5).map(pkt).collect();
        let mut src = SliceSource::new(&packets);
        let mut buf = Vec::new();
        let b1 = src.next_block(&mut buf, 2).unwrap().to_vec();
        assert_eq!(b1, &packets[0..2]);
        let b2 = src.next_block(&mut buf, 4).unwrap().to_vec();
        assert_eq!(b2, &packets[2..5]);
        assert!(src.next_block(&mut buf, 4).unwrap().is_empty());
        assert!(
            buf.is_empty(),
            "slice blocks never touch the scratch buffer"
        );
        // Mixed pulls stay in order: packet-wise after block-wise.
        let mut src = SliceSource::new(&packets);
        let _ = src.next_block(&mut buf, 2).unwrap();
        assert_eq!(src.next_packet().unwrap(), Some(packets[2]));
    }

    #[test]
    fn default_next_block_buffers_through_chunk() {
        let packets: Vec<PacketMeta> = (0..3).map(pkt).collect();
        let bytes = crate::trace::to_bytes(&packets);
        let mut src = TraceReader::new(&bytes[..]).unwrap();
        let mut buf = Vec::new();
        let b1 = src.next_block(&mut buf, 2).unwrap().to_vec();
        assert_eq!(b1, &packets[0..2]);
        let b2 = src.next_block(&mut buf, 2).unwrap().to_vec();
        assert_eq!(b2, &packets[2..3]);
        assert!(src.next_block(&mut buf, 2).unwrap().is_empty());
    }

    #[test]
    fn iter_source_wraps_generators() {
        let mut src = IterSource::new((0..3).map(pkt));
        let mut seen = Vec::new();
        while let Some(p) = src.next_packet().unwrap() {
            seen.push(p.ts);
        }
        assert_eq!(seen, vec![0, 1, 2]);
    }

    /// A scripted reader: each `read` yields the next chunk, an empty
    /// chunk models "no data yet", and exhaustion flips the stop flag —
    /// a deterministic stand-in for a fifo with a slow producer.
    struct Scripted {
        chunks: std::collections::VecDeque<Vec<u8>>,
        stop: Arc<AtomicBool>,
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.chunks.front_mut() {
                None => {
                    self.stop.store(true, Ordering::Relaxed);
                    Ok(0)
                }
                Some(chunk) if chunk.is_empty() => {
                    // A dry spell: one 0-byte read, then the next chunk.
                    self.chunks.pop_front();
                    Ok(0)
                }
                Some(chunk) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    chunk.drain(..n);
                    if chunk.is_empty() {
                        self.chunks.pop_front();
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn follow_tails_across_data_gaps_and_torn_records() {
        let packets: Vec<PacketMeta> = (0..4).map(pkt).collect();
        let bytes = crate::trace::to_bytes(&packets);
        // Script: header+first record, a dry spell, a *partial* record
        // (torn write), the rest. Follow must wait through the gaps and
        // never surface a torn record to the trace reader.
        let cut_a = bytes.len() / 3;
        let cut_b = cut_a + 5;
        let stop = Arc::new(AtomicBool::new(false));
        let scripted = Scripted {
            chunks: [
                bytes[..cut_a].to_vec(),
                Vec::new(),
                Vec::new(),
                bytes[cut_a..cut_b].to_vec(),
                Vec::new(),
                bytes[cut_b..].to_vec(),
            ]
            .into_iter()
            .collect(),
            stop: Arc::clone(&stop),
        };
        let follow = Follow::new(scripted, stop).with_poll_interval(Duration::from_millis(1));
        let mut src = TraceReader::new(follow).expect("header arrives eventually");
        let mut back = Vec::new();
        while let Some(p) = PacketSource::next_packet(&mut src).expect("no torn records") {
            back.push(p);
        }
        assert_eq!(back, packets);
    }

    #[test]
    fn follow_poll_backoff_is_sublinear_in_wait_time() {
        use std::sync::Mutex;

        /// Dry until `ready_at` on a virtual clock, then one payload.
        struct DryUntil {
            ready_at: Duration,
            clock: Arc<Mutex<Duration>>,
            payload: Vec<u8>,
            stop: Arc<AtomicBool>,
        }

        impl Read for DryUntil {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if *self.clock.lock().unwrap() < self.ready_at {
                    return Ok(0);
                }
                if self.payload.is_empty() {
                    self.stop.store(true, Ordering::Relaxed);
                    return Ok(0);
                }
                let n = self.payload.len().min(buf.len());
                buf[..n].copy_from_slice(&self.payload[..n]);
                self.payload.drain(..n);
                Ok(n)
            }
        }

        let clock = Arc::new(Mutex::new(Duration::ZERO));
        let stop = Arc::new(AtomicBool::new(false));
        let reader = DryUntil {
            ready_at: Duration::from_secs(10),
            clock: Arc::clone(&clock),
            payload: vec![7u8; 16],
            stop: Arc::clone(&stop),
        };
        let sleeper_clock = Arc::clone(&clock);
        let mut follow = Follow::new(reader, stop).with_sleeper(Box::new(move |d| {
            *sleeper_clock.lock().unwrap() += d;
        }));
        let polls = follow.poll_counter();
        let mut buf = [0u8; 16];
        assert_eq!(follow.read(&mut buf).unwrap(), 16, "data after the wait");
        // A fixed 10 ms poll would sleep ~1000 times across 10 s of dry
        // input; the doubling ladder (10 ms → 640 ms cap) needs about
        // 6 doubling steps plus ~15 capped sleeps.
        let dry_polls = polls.load(Ordering::Relaxed);
        assert!(
            (10..=40).contains(&dry_polls),
            "expected a few dozen backoff polls, got {dry_polls}"
        );
        // Data resets the ladder: the final end-of-stream read is
        // immediate (stop flag), so the count stops moving.
        assert_eq!(follow.read(&mut buf).unwrap(), 0);
        assert_eq!(polls.load(Ordering::Relaxed), dry_polls);
    }

    #[test]
    fn cycle_source_rebases_each_pass() {
        let packets = vec![pkt(0), pkt(10), pkt(20)];
        let mut src = CycleSource::with_gap(packets.clone(), 5).with_passes(2);
        assert_eq!(src.period(), 25, "span 20 + gap 5");
        let mut ts = Vec::new();
        while let Some(p) = src.next_packet().unwrap() {
            ts.push(p.ts);
        }
        assert_eq!(ts, vec![0, 10, 20, 25, 35, 45]);
        assert_eq!(src.passes_completed(), 2);
        // End is sticky and the pass count stops moving.
        assert_eq!(src.next_packet().unwrap(), None);
        assert_eq!(src.passes_completed(), 2);
    }

    #[test]
    fn cycle_source_preserves_flows_and_payloads() {
        let packets = vec![pkt(3), pkt(9)];
        let mut src = CycleSource::new(packets.clone()).with_passes(2);
        let first = src.next_packet().unwrap().expect("pass 1");
        assert_eq!(first, packets[0]);
        let _ = src.next_packet().unwrap();
        let again = src.next_packet().unwrap().expect("pass 2");
        assert_eq!(again.flow, packets[0].flow);
        assert_eq!(again.seq, packets[0].seq);
        assert_eq!(again.ts, packets[0].ts + src.period());
    }

    #[test]
    fn empty_cycle_source_ends_immediately() {
        let mut src = CycleSource::new(Vec::new());
        assert_eq!(src.next_packet().unwrap(), None);
        assert_eq!(src.passes_completed(), 0);
    }

    #[test]
    fn trace_reader_source_round_trips() {
        let packets: Vec<PacketMeta> = (0..10).map(pkt).collect();
        let bytes = crate::trace::to_bytes(&packets);
        let mut src = TraceReader::new(&bytes[..]).unwrap();
        let mut back = Vec::new();
        while let Some(p) = PacketSource::next_packet(&mut src).unwrap() {
            back.push(p);
        }
        assert_eq!(back, packets);
    }
}
