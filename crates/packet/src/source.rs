//! Streaming packet sources: feed a monitor without materializing a trace.
//!
//! A [`PacketSource`] yields [`PacketMeta`] one packet at a time in capture
//! order, so engines can process traces far larger than RAM. Sources exist
//! for every place packets come from:
//!
//! * [`SliceSource`] — an in-memory trace (tests, the bench harness);
//! * [`IterSource`] — any infallible packet iterator (simulators);
//! * [`TraceReader`] — the native on-disk format, already record-streaming;
//! * [`PcapSource`] — a pcap capture, parsed and direction-classified on
//!   the fly, skipping non-TCP frames like the hardware parser would.
//!
//! The contract is deliberately minimal: `next_packet` returns `Ok(Some)`
//! per packet in order, `Ok(None)` exactly once at end of stream (and on
//! every call after), or an I/O / format error. [`PacketSource::next_chunk`]
//! batches that into a reusable buffer for consumers that amortize
//! per-packet dispatch (the sharded engine's feeder), with a default
//! implementation in terms of `next_packet` so sources only write one
//! method.

use crate::error::PacketError;
use crate::meta::PacketMeta;
use crate::parse::{parse_ethernet_frame, DirectionClassifier};
use crate::pcap::PcapReader;
use crate::trace::TraceReader;
use std::io::Read;

/// A stream of packets in capture order.
pub trait PacketSource {
    /// The next packet, `Ok(None)` at (and after) end of stream.
    fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError>;

    /// Fill `buf` (cleared first) with up to `max` packets; returns how
    /// many were read. Zero means end of stream. Lets chunked consumers
    /// reuse one allocation instead of collecting the whole trace.
    fn next_chunk(&mut self, buf: &mut Vec<PacketMeta>, max: usize) -> Result<usize, PacketError> {
        buf.clear();
        while buf.len() < max {
            match self.next_packet()? {
                Some(p) => buf.push(p),
                None => break,
            }
        }
        Ok(buf.len())
    }

    /// The next block of up to `max` packets as a slice; an empty slice
    /// means end of stream. This is the batch drivers' pull point: the
    /// default buffers through `next_chunk` (so the trace readers get a
    /// buffered-slice path for free), while in-memory sources like
    /// [`SliceSource`] override it to hand out a borrowed subslice of the
    /// trace with no copy at all.
    fn next_block<'a>(
        &'a mut self,
        buf: &'a mut Vec<PacketMeta>,
        max: usize,
    ) -> Result<&'a [PacketMeta], PacketError> {
        let n = self.next_chunk(buf, max)?;
        Ok(&buf[..n])
    }
}

/// A source over a borrowed, fully materialized trace.
#[derive(Clone, Debug)]
pub struct SliceSource<'a> {
    packets: &'a [PacketMeta],
    next: usize,
}

impl<'a> SliceSource<'a> {
    /// Stream `packets` in order.
    pub fn new(packets: &'a [PacketMeta]) -> Self {
        SliceSource { packets, next: 0 }
    }

    /// Packets not yet yielded.
    pub fn remaining(&self) -> usize {
        self.packets.len() - self.next
    }
}

impl PacketSource for SliceSource<'_> {
    fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError> {
        let p = self.packets.get(self.next).copied();
        if p.is_some() {
            self.next += 1;
        }
        Ok(p)
    }

    /// Zero-copy override: the block is a subslice of the backing trace;
    /// `buf` is untouched.
    fn next_block<'a>(
        &'a mut self,
        _buf: &'a mut Vec<PacketMeta>,
        max: usize,
    ) -> Result<&'a [PacketMeta], PacketError> {
        let start = self.next;
        let end = start + max.min(self.remaining());
        self.next = end;
        Ok(&self.packets[start..end])
    }
}

impl<'a> From<&'a [PacketMeta]> for SliceSource<'a> {
    fn from(packets: &'a [PacketMeta]) -> Self {
        SliceSource::new(packets)
    }
}

impl<'a> From<&'a Vec<PacketMeta>> for SliceSource<'a> {
    fn from(packets: &'a Vec<PacketMeta>) -> Self {
        SliceSource::new(packets)
    }
}

/// A source over any infallible packet iterator (generators, simulators).
#[derive(Clone, Debug)]
pub struct IterSource<I> {
    iter: I,
}

impl<I: Iterator<Item = PacketMeta>> IterSource<I> {
    /// Stream the iterator's packets in order.
    pub fn new(iter: I) -> Self {
        IterSource { iter }
    }
}

impl<I: Iterator<Item = PacketMeta>> PacketSource for IterSource<I> {
    fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError> {
        Ok(self.iter.next())
    }
}

/// The native trace format already reads record-by-record, so the reader
/// itself is a source.
impl<R: Read> PacketSource for TraceReader<R> {
    fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError> {
        TraceReader::next_packet(self)
    }
}

/// A streaming pcap source: each record is parsed and direction-classified
/// as it is read. Frames the monitor would not see (non-TCP, fragments,
/// truncated) are skipped and counted, matching the batch
/// `load_pcap` semantics.
pub struct PcapSource<R: Read, C: DirectionClassifier> {
    reader: PcapReader<R>,
    classifier: C,
    skipped: u64,
}

impl<R: Read, C: DirectionClassifier> PcapSource<R, C> {
    /// Open a pcap stream; fails on a bad global header.
    pub fn new(input: R, classifier: C) -> Result<Self, PacketError> {
        Ok(PcapSource {
            reader: PcapReader::new(input)?,
            classifier,
            skipped: 0,
        })
    }

    /// Frames skipped so far as unparseable/unmonitored.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

impl<R: Read, C: DirectionClassifier> PacketSource for PcapSource<R, C> {
    fn next_packet(&mut self) -> Result<Option<PacketMeta>, PacketError> {
        loop {
            let rec = match self.reader.next_record()? {
                Some(rec) => rec,
                None => return Ok(None),
            };
            match parse_ethernet_frame(rec.ts, &rec.data, &self.classifier) {
                Ok(meta) => return Ok(Some(meta)),
                Err(PacketError::Unsupported { .. }) | Err(PacketError::Truncated { .. }) => {
                    self.skipped += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;
    use crate::meta::PacketBuilder;

    fn pkt(ts: u64) -> PacketMeta {
        let flow = FlowKey::from_raw(0x0a00_0001, 443, 0xc0a8_0001, 55_000);
        PacketBuilder::new(flow, ts)
            .seq(ts as u32)
            .payload(100)
            .build()
    }

    #[test]
    fn slice_source_streams_in_order_and_ends() {
        let packets = vec![pkt(1), pkt(2), pkt(3)];
        let mut src = SliceSource::new(&packets);
        assert_eq!(src.remaining(), 3);
        assert_eq!(src.next_packet().unwrap(), Some(packets[0]));
        assert_eq!(src.next_packet().unwrap(), Some(packets[1]));
        assert_eq!(src.next_packet().unwrap(), Some(packets[2]));
        assert_eq!(src.next_packet().unwrap(), None);
        // End of stream is sticky.
        assert_eq!(src.next_packet().unwrap(), None);
    }

    #[test]
    fn next_chunk_reuses_buffer_and_reports_counts() {
        let packets: Vec<PacketMeta> = (0..5).map(pkt).collect();
        let mut src = SliceSource::new(&packets);
        let mut buf = Vec::new();
        assert_eq!(src.next_chunk(&mut buf, 2).unwrap(), 2);
        assert_eq!(buf, &packets[0..2]);
        assert_eq!(src.next_chunk(&mut buf, 2).unwrap(), 2);
        assert_eq!(buf, &packets[2..4]);
        assert_eq!(src.next_chunk(&mut buf, 2).unwrap(), 1);
        assert_eq!(buf, &packets[4..5]);
        assert_eq!(src.next_chunk(&mut buf, 2).unwrap(), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn slice_source_blocks_are_borrowed_subslices() {
        let packets: Vec<PacketMeta> = (0..5).map(pkt).collect();
        let mut src = SliceSource::new(&packets);
        let mut buf = Vec::new();
        let b1 = src.next_block(&mut buf, 2).unwrap().to_vec();
        assert_eq!(b1, &packets[0..2]);
        let b2 = src.next_block(&mut buf, 4).unwrap().to_vec();
        assert_eq!(b2, &packets[2..5]);
        assert!(src.next_block(&mut buf, 4).unwrap().is_empty());
        assert!(
            buf.is_empty(),
            "slice blocks never touch the scratch buffer"
        );
        // Mixed pulls stay in order: packet-wise after block-wise.
        let mut src = SliceSource::new(&packets);
        let _ = src.next_block(&mut buf, 2).unwrap();
        assert_eq!(src.next_packet().unwrap(), Some(packets[2]));
    }

    #[test]
    fn default_next_block_buffers_through_chunk() {
        let packets: Vec<PacketMeta> = (0..3).map(pkt).collect();
        let bytes = crate::trace::to_bytes(&packets);
        let mut src = TraceReader::new(&bytes[..]).unwrap();
        let mut buf = Vec::new();
        let b1 = src.next_block(&mut buf, 2).unwrap().to_vec();
        assert_eq!(b1, &packets[0..2]);
        let b2 = src.next_block(&mut buf, 2).unwrap().to_vec();
        assert_eq!(b2, &packets[2..3]);
        assert!(src.next_block(&mut buf, 2).unwrap().is_empty());
    }

    #[test]
    fn iter_source_wraps_generators() {
        let mut src = IterSource::new((0..3).map(pkt));
        let mut seen = Vec::new();
        while let Some(p) = src.next_packet().unwrap() {
            seen.push(p.ts);
        }
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn trace_reader_source_round_trips() {
        let packets: Vec<PacketMeta> = (0..10).map(pkt).collect();
        let bytes = crate::trace::to_bytes(&packets);
        let mut src = TraceReader::new(&bytes[..]).unwrap();
        let mut back = Vec::new();
        while let Some(p) = PacketSource::next_packet(&mut src).unwrap() {
            back.push(p);
        }
        assert_eq!(back, packets);
    }
}
