//! Error types for packet parsing and trace I/O.

use std::fmt;
use std::io;

/// Errors produced while decoding packets or reading/writing trace files.
#[derive(Debug)]
pub enum PacketError {
    /// Not enough bytes to decode a header at `layer`.
    Truncated {
        /// Protocol layer being decoded.
        layer: &'static str,
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A header field held an impossible value.
    Malformed {
        /// Protocol layer being decoded.
        layer: &'static str,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The packet is valid but not something Dart monitors (non-IPv4,
    /// non-TCP, fragment, ...).
    Unsupported {
        /// What was encountered.
        what: &'static str,
    },
    /// A trace/pcap file is corrupt or has an unknown format.
    BadTrace(String),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated { layer, needed, got } => {
                write!(
                    f,
                    "truncated {layer} header: need {needed} bytes, got {got}"
                )
            }
            PacketError::Malformed { layer, reason } => {
                write!(f, "malformed {layer} header: {reason}")
            }
            PacketError::Unsupported { what } => write!(f, "unsupported packet: {what}"),
            PacketError::BadTrace(msg) => write!(f, "bad trace file: {msg}"),
            PacketError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for PacketError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PacketError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PacketError {
    fn from(e: io::Error) -> Self {
        PacketError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PacketError::Truncated {
            layer: "tcp",
            needed: 20,
            got: 3,
        };
        assert!(e.to_string().contains("tcp"));
        assert!(e.to_string().contains("20"));
    }

    #[test]
    fn io_error_converts() {
        let e: PacketError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(e, PacketError::Io(_)));
    }
}
