//! # dart
//!
//! A from-scratch Rust reproduction of **Dart** — *Continuous In-Network
//! Round-Trip Time Monitoring* (Sengupta, Kim, Rexford; SIGCOMM 2022): an
//! inline, real-time, continuous RTT measurement system designed for
//! programmable data planes, together with every substrate its evaluation
//! depends on.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`] (`dart-core`) — the Dart engine: Range Tracker, Packet
//!   Tracker, lazy eviction with second-chance recirculation, and the
//!   flow-sharded parallel replay engine (`core::sharded`);
//! * [`packet`] (`dart-packet`) — headers, flow keys, sequence arithmetic,
//!   pcap/native trace I/O;
//! * [`switch`] (`dart-switch`) — the programmable-switch model: register
//!   arrays, hash units, recirculation port, resource estimation;
//! * [`analytics`] (`dart-analytics`) — min-filtering, change detection,
//!   per-prefix aggregation, distribution utilities;
//! * [`baselines`] (`dart-baselines`) — tcptrace-style ground truth,
//!   the strawman tracker, the fridge sampler;
//! * [`sim`] (`dart-sim`) — the deterministic TCP network simulator and
//!   the campus / interception-attack / SYN-flood scenarios.
//!
//! ## Quickstart
//!
//! ```
//! use dart::core::{DartConfig, DartEngine, RttSample};
//! use dart::packet::{Direction, FlowKey, PacketBuilder};
//!
//! // A monitor sees an outbound data packet and its returning ACK.
//! let flow = FlowKey::from_raw(0x0a000001, 44123, 0x5db8d822, 443);
//! let data = PacketBuilder::new(flow, 0)
//!     .seq(0u32).payload(1460).dir(Direction::Outbound).build();
//! let ack = PacketBuilder::new(flow.reverse(), 23_000_000)
//!     .ack(1460u32).dir(Direction::Inbound).build();
//!
//! let mut dart = DartEngine::new(DartConfig::default());
//! let mut samples: Vec<RttSample> = Vec::new();
//! dart.process(&data, &mut samples);
//! dart.process(&ack, &mut samples);
//! assert_eq!(samples[0].rtt_ms(), 23.0);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench/src/bin/` for
//! the harness that regenerates every table and figure of the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dart_analytics as analytics;
pub use dart_baselines as baselines;
pub use dart_core as core;
pub use dart_packet as packet;
pub use dart_sim as sim;
pub use dart_switch as switch;
