//! §7's QUIC extension path: when sequence/ACK numbers are hidden, the RFC
//! 9000 latency spin bit still exposes RTTs — but with one sample per round
//! trip at best, and no defense against loss-induced distortion. This
//! example contrasts spin-bit measurement on a QUIC-like flow with Dart on
//! an equivalent TCP flow.
//!
//! ```text
//! cargo run --release --example quic_spin
//! ```

use dart::core::{run_trace, DartConfig};
use dart::packet::{Direction, FlowKey, MILLISECOND, SECOND};
use dart::sim::netsim::{simulate, ConnSpec, Exchange};
use dart::sim::spin::{spin_flow, SpinFlowConfig, SpinObserver};

fn main() {
    let rtt_ms = 21;

    // --- QUIC-like flow: only the spin bit is visible -------------------
    let spin_cfg = SpinFlowConfig {
        duration: 4 * SECOND,
        ..SpinFlowConfig::default() // 0.5 + 10 ms one-way => 21 ms RTT
    };
    let pkts = spin_flow(spin_cfg);
    let mut obs = SpinObserver::new(Direction::Outbound);
    for p in &pkts {
        obs.offer(p);
    }
    let pkt_count = pkts.iter().filter(|p| p.dir == Direction::Outbound).count();
    println!(
        "QUIC-like flow ({rtt_ms} ms RTT, {} outbound packets):",
        pkt_count
    );
    println!("  spin-bit samples        : {}", obs.samples.len());
    if !obs.samples.is_empty() {
        let avg = obs.samples.iter().sum::<u64>() as f64 / obs.samples.len() as f64 / 1e6;
        println!("  average spin period     : {avg:.2} ms");
    }
    println!(
        "  samples per 1000 packets: {:.1}",
        obs.samples.len() as f64 / pkt_count as f64 * 1000.0
    );

    // --- Same path, TCP: Dart tracks every data packet ------------------
    let flow = FlowKey::from_raw(0x0a08_0001, 50_500, 0x5db8_d822, 443);
    let mut spec = ConnSpec::simple(flow, 0, 1000, 1000);
    spec.exchanges = (0..200)
        .map(|_| Exchange {
            request: 1200,
            response: 1200,
        })
        .collect();
    spec.path.jitter = 0.0;
    spec.path.int_owd = MILLISECOND / 2;
    spec.path.ext_owd = 10 * MILLISECOND;
    let out = simulate(vec![spec], 3);
    let (samples, stats) = run_trace(DartConfig::default(), &out.packets);
    let data_pkts = stats.seq_tracked;
    println!("\nTCP flow on the same path, via Dart:");
    println!("  RTT samples             : {}", samples.len());
    if !samples.is_empty() {
        let avg = samples.iter().map(|s| s.rtt).sum::<u64>() as f64 / samples.len() as f64 / 1e6;
        println!("  average RTT             : {avg:.2} ms");
    }
    println!(
        "  samples per 1000 tracked: {:.1}",
        samples.len() as f64 / data_pkts.max(1) as f64 * 1000.0
    );

    // --- Loss sensitivity -------------------------------------------------
    println!("\nspin-bit under 20% loss (no way to detect the distortion):");
    let lossy = spin_flow(SpinFlowConfig {
        loss: 0.2,
        duration: 4 * SECOND,
        ..SpinFlowConfig::default()
    });
    let mut obs = SpinObserver::new(Direction::Outbound);
    for p in &lossy {
        obs.offer(p);
    }
    let worst = obs
        .samples
        .iter()
        .map(|s| (*s as i64 - (rtt_ms * 1_000_000)).unsigned_abs())
        .max()
        .unwrap_or(0);
    println!(
        "  {} samples, worst deviation from true RTT: {:.2} ms",
        obs.samples.len(),
        worst as f64 / 1e6
    );
    println!("\n(paper §7: spin-bit RTTs can augment, but not replace, Dart's\n per-packet TCP measurement)");
}
