//! §7's multi-vantage-point deployment: Dart instances at several points on
//! the path decompose the end-to-end RTT into legs and localize latency.
//!
//! A 100 ms path is monitored at the campus gateway plus two downstream
//! vantage points; the per-segment RTT contributions fall out of the
//! differences between adjacent vantage points' measurements.
//!
//! ```text
//! cargo run --release --example vantage_points
//! ```

use dart::core::{run_trace, DartConfig};
use dart::packet::{FlowKey, MILLISECOND};
use dart::sim::netsim::{ConnSpec, NetSim};

fn main() {
    // 30 request/response connections over a 100 ms external path.
    let specs: Vec<ConnSpec> = (0..30u16)
        .map(|i| {
            let mut spec = ConnSpec::simple(
                FlowKey::from_raw(0x0a08_0707, 42_000 + i, 0x2d4f_a1b2, 443),
                i as u64 * 40 * MILLISECOND,
                800,
                800,
            );
            spec.path.jitter = 0.01;
            spec.path.int_owd = MILLISECOND;
            spec.path.ext_owd = 50 * MILLISECOND; // 100 ms external RTT
            spec
        })
        .collect();

    // Vantage points at 25%, 50%, and 75% of the way to the servers.
    let fractions = [0.25, 0.5, 0.75];
    let out = NetSim::new(specs, 2024)
        .with_extra_vantage_points(fractions)
        .run();

    println!("primary monitor trace : {:>5} packets", out.packets.len());
    for (f, t) in fractions.iter().zip(&out.vp_traces) {
        println!(
            "vantage point @{:>3.0}%   : {:>5} packets",
            f * 100.0,
            t.len()
        );
    }

    // One independent Dart per vantage point.
    let mut mins = Vec::new();
    let (samples, _) = run_trace(DartConfig::unlimited(), &out.packets);
    mins.push(("gateway".to_string(), min_ms(&samples)));
    for (f, t) in fractions.iter().zip(&out.vp_traces) {
        let (samples, _) = run_trace(DartConfig::unlimited(), t);
        mins.push((format!("vp @{:.0}%", f * 100.0), min_ms(&samples)));
    }

    println!("\nexternal-leg RTT (min) per vantage point:");
    for (name, ms) in &mins {
        println!("  {name:<10} {ms:7.2} ms");
    }

    println!("\nper-segment decomposition (difference of adjacent VPs):");
    let mut prev = ("client side".to_string(), mins[0].1);
    for (name, ms) in mins.iter().skip(1) {
        println!("  {} -> {:<9} {:7.2} ms", prev.0, name, prev.1 - ms);
        prev = (name.clone(), *ms);
    }
    println!("  {} -> server    {:7.2} ms", prev.0, prev.1);
    println!("\n(each quarter of the path contributes ≈25 ms of the 100 ms RTT)");
}

fn min_ms(samples: &[dart::core::RttSample]) -> f64 {
    samples.iter().map(|s| s.rtt).min().unwrap_or(0) as f64 / 1e6
}
