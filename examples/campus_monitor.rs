//! Campus-gateway monitoring: run Dart on both path legs of a synthetic
//! campus workload, contrast wired vs wireless subnets (paper Fig. 6), and
//! aggregate external RTTs per destination /24 (paper §3.3's per-prefix
//! min-filtering).
//!
//! ```text
//! cargo run --release --example campus_monitor
//! ```

use dart::analytics::{PrefixAggregator, RttDistribution, Window};
use dart::core::{run_trace, DartConfig, Leg};
use dart::packet::MILLISECOND;
use dart::sim::flowgen::is_wireless;
use dart::sim::scenario::{campus, CampusConfig};

fn main() {
    let trace = campus(CampusConfig {
        connections: 1500,
        duration: 20 * dart::packet::SECOND,
        ..CampusConfig::default()
    });
    println!(
        "campus trace: {} packets, {} connections\n",
        trace.len(),
        trace.conns.len()
    );

    // --- Internal leg: campus host <-> monitor (Fig. 6) -----------------
    let cfg = DartConfig::default()
        .with_leg(Leg::Internal)
        .with_rt(1 << 14)
        .with_pt(1 << 13, 1);
    let (internal, _) = run_trace(cfg, &trace.packets);
    let mut wired = RttDistribution::new();
    let mut wireless = RttDistribution::new();
    for s in &internal {
        // Internal-leg data flows toward the campus client (flow.dst_ip).
        if is_wireless(s.flow.dst_ip) {
            wireless.push(s.rtt);
        } else {
            wired.push(s.rtt);
        }
    }
    println!("internal leg (client <-> monitor):");
    println!(
        "  wired    : {:6} samples, {:5.1}% below 1 ms",
        wired.len(),
        wired.cdf_at(MILLISECOND) * 100.0
    );
    println!(
        "  wireless : {:6} samples, {:5.1}% below 1 ms, {:4.1}% above 20 ms",
        wireless.len(),
        wireless.cdf_at(MILLISECOND) * 100.0,
        wireless.ccdf_at(20 * MILLISECOND) * 100.0
    );

    // --- External leg: monitor <-> Internet, aggregated per /24 ---------
    let cfg = DartConfig::default().with_rt(1 << 14).with_pt(1 << 13, 1);
    let (external, _) = run_trace(cfg, &trace.packets);
    let mut agg = PrefixAggregator::new(24, Window::Time(5 * dart::packet::SECOND));
    let mut closed = Vec::new();
    for s in &external {
        if let Some((prefix, w)) = agg.offer(s) {
            closed.push((prefix, w));
        }
    }
    println!(
        "\nexternal leg: {} samples across {} destination /24s",
        external.len(),
        agg.prefixes()
    );
    println!("busiest prefixes (min RTT per closed 5s window):");
    let mut snapshot: Vec<_> = agg
        .snapshot()
        .into_iter()
        .map(|(p, _)| (agg.count(&p), p))
        .collect();
    snapshot.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
    for (count, prefix) in snapshot.into_iter().take(8) {
        let best = closed
            .iter()
            .filter(|(p, _)| *p == prefix)
            .map(|(_, w)| w.min_rtt)
            .min();
        println!(
            "  {prefix:<20} {count:6} samples, windowed min {}",
            best.map_or("n/a".into(), |m| format!("{:.2} ms", m as f64 / 1e6))
        );
    }
}
