//! The paper's §5.2 headline demo: detect a BGP traffic-interception attack
//! from the continuous RTT stream, within tens of packets of it taking
//! effect.
//!
//! A campus host exchanges traffic with a victim prefix; mid-trace, a
//! hijacker reroutes the path through a distant network, stepping the RTT
//! from ~25 ms to ~120 ms. Dart's samples feed a windowed min-RTT
//! suspect/confirm detector (Fig. 8).
//!
//! ```text
//! cargo run --example interception_detection
//! ```

use dart::analytics::{ChangeDetector, ChangeDetectorConfig, Verdict};
use dart::core::{run_trace, DartConfig};
use dart::sim::scenario::{interception, AttackConfig};

fn main() {
    let attack = AttackConfig::default();
    println!(
        "victim path: {} ms RTT; hijacked path: {} ms; attack at t = {} s",
        attack.normal_rtt / 1_000_000,
        attack.attacked_rtt / 1_000_000,
        attack.attack_at / 1_000_000_000
    );

    let trace = interception(attack);
    println!("captured {} packets at the monitor", trace.len());

    // Dart collects RTT samples in real time...
    let (samples, stats) = run_trace(DartConfig::default(), &trace.packets);
    println!(
        "dart collected {} samples from {} tracked data packets\n",
        samples.len(),
        stats.seq_tracked
    );

    // ...and the analytics module watches the minimum RTT over windows of 8
    // consecutive samples (paper Fig. 8).
    let mut detector = ChangeDetector::new(ChangeDetectorConfig::default());
    for s in &samples {
        match detector.offer(s.rtt, s.ts) {
            Verdict::Suspected { baseline, observed } => {
                println!(
                    "t={:6.2}s  SUSPECTED: window min jumped {:.1} -> {:.1} ms",
                    s.ts as f64 / 1e9,
                    baseline as f64 / 1e6,
                    observed as f64 / 1e6
                );
            }
            Verdict::Confirmed {
                baseline,
                observed,
                samples_to_confirm,
            } => {
                let packets_between = trace
                    .packets
                    .iter()
                    .filter(|p| p.ts >= attack.attack_at && p.ts <= s.ts)
                    .count();
                println!(
                    "t={:6.2}s  CONFIRMED: min RTT {:.1} -> {:.1} ms ({} samples to confirm)",
                    s.ts as f64 / 1e9,
                    baseline as f64 / 1e6,
                    observed as f64 / 1e6,
                    samples_to_confirm
                );
                println!(
                    "\ndetected {} packets / {:.2} s after the attack took effect",
                    packets_between,
                    (s.ts - attack.attack_at) as f64 / 1e9
                );
                println!("(the paper's testbed run: 63 packets / 2.58 s)");
                return;
            }
            Verdict::Normal => {}
        }
    }
    println!("attack was never confirmed — detector misconfigured?");
}
