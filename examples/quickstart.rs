//! Quickstart: feed a small simulated workload through Dart and print the
//! RTT samples it collects, alongside the engine's internal accounting.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dart::core::{DartConfig, DartEngine, RttSample};
use dart::sim::scenario::{campus, CampusConfig};

fn main() {
    // 1. Synthesize a tiny campus-style trace: 60 connections over 2 s of
    //    traffic through a monitored gateway.
    let trace = campus(CampusConfig {
        connections: 60,
        duration: 2 * dart::packet::SECOND,
        ..CampusConfig::default()
    });
    println!(
        "trace: {} packets from {} connections ({} with live servers)",
        trace.len(),
        trace.conns.len(),
        trace.conns.iter().filter(|c| c.complete).count()
    );

    // 2. Run Dart in its hardware-shaped default configuration: -SYN,
    //    external leg, constrained Range/Packet Tracker tables, one
    //    recirculation allowed.
    let cfg = DartConfig::default().with_rt(1 << 12).with_pt(1 << 10, 1);
    let mut dart = DartEngine::new(cfg);
    let mut samples: Vec<RttSample> = Vec::new();
    dart.process_trace(trace.packets.iter(), &mut samples);

    // 3. Look at what came out.
    println!("\nfirst samples:");
    for s in samples.iter().take(8) {
        println!("  {} -> rtt {:8.3} ms (ack {})", s.flow, s.rtt_ms(), s.eack);
    }

    let stats = dart.stats();
    println!("\nengine accounting:");
    println!("  packets processed        {}", stats.packets);
    println!("  SYN/SYN-ACK skipped      {}", stats.syn_skipped);
    println!("  data packets tracked     {}", stats.seq_tracked);
    println!("  retransmissions refused  {}", stats.seq_retransmission);
    println!("  duplicate ACK collapses  {}", stats.ack_duplicate);
    println!("  optimistic ACKs ignored  {}", stats.ack_optimistic);
    println!("  PT displacements         {}", stats.pt_displaced);
    println!("  recirculations           {}", stats.recirc_issued);
    println!("  RTT samples              {}", stats.samples);
    println!(
        "  recirculations / packet  {:.4}",
        stats.recirc_per_packet()
    );

    // 4. Sanity: in a clean simulation every sample is at least the flow's
    //    base external RTT.
    let mut ok = 0;
    for s in &samples {
        if let Some(conn) = trace.conns.iter().find(|c| c.flow == s.flow) {
            if s.rtt as f64 >= conn.base_ext_rtt as f64 * 0.9 {
                ok += 1;
            }
        }
    }
    println!(
        "\n{} of {} samples within 10% of (or above) their path's propagation floor",
        ok,
        samples.len()
    );
}
