//! SYN-flood robustness (paper §3.1): Dart ignores SYN/SYN-ACK packets, so
//! a flood of spoofed handshakes cannot inflate its tables — compare
//! against the `+SYN` policy and the strawman, which both bloat.
//!
//! ```text
//! cargo run --release --example syn_flood
//! ```

use dart::baselines::{Strawman, StrawmanConfig};
use dart::core::{run_monitor_slice, DartConfig, DartEngine, RttSample, SynPolicy};
use dart::sim::scenario::{syn_flood, SynFloodConfig};

fn main() {
    let cfg = SynFloodConfig {
        syns: 30_000,
        background: 60,
        ..SynFloodConfig::default()
    };
    let trace = syn_flood(cfg);
    let syn_count = trace.packets.iter().filter(|p| p.flags.is_syn()).count();
    println!(
        "flood trace: {} packets, {} SYNs from spoofed sources, {} legit connections\n",
        trace.len(),
        syn_count,
        cfg.background
    );

    // Dart with the deployed -SYN policy: tables stay calm.
    let mut dart = DartEngine::new(DartConfig::default().with_rt(1 << 16).with_pt(1 << 14, 1));
    let mut samples: Vec<RttSample> = Vec::new();
    dart.process_trace(trace.packets.iter(), &mut samples);
    println!("dart (-SYN):");
    println!("  RT entries after flood : {:6}", dart.rt_occupancy());
    println!("  PT entries after flood : {:6}", dart.pt_occupancy());
    println!("  samples from legit flows: {:5}\n", samples.len());

    // The same engine WITH handshake tracking: every spoofed SYN claims
    // Range Tracker and Packet Tracker space.
    let mut naive = DartEngine::new(
        DartConfig::default()
            .with_rt(1 << 16)
            .with_pt(1 << 14, 1)
            .with_syn(SynPolicy::Include),
    );
    let mut naive_samples: Vec<RttSample> = Vec::new();
    naive.process_trace(trace.packets.iter(), &mut naive_samples);
    println!("dart (+SYN) — what skipping saves us from:");
    println!("  RT entries after flood : {:6}", naive.rt_occupancy());
    println!("  PT entries after flood : {:6}\n", naive.pt_occupancy());

    // The strawman has no SYN defense at all when configured naively.
    let mut strawman = Strawman::new(StrawmanConfig {
        slots: 1 << 14,
        syn_policy: SynPolicy::Include,
        ..StrawmanConfig::default()
    });
    let _ = run_monitor_slice(&mut strawman, &trace.packets);
    println!("strawman (+SYN):");
    println!("  insertions             : {:6}", strawman.stats().inserted);
    println!(
        "  evicted by collisions  : {:6}  (legit flows' records trampled)",
        strawman.stats().evicted_on_collision
    );

    let blowup = naive.rt_occupancy() as f64 / dart.rt_occupancy().max(1) as f64;
    println!(
        "\nskipping handshakes keeps RT occupancy {blowup:.0}x smaller under this flood,\n\
         while legitimate traffic still yields {} samples",
        samples.len()
    );
}
