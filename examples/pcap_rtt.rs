//! A `pping`-style command-line tool: read a pcap capture, run Dart over
//! it, and print per-packet RTT samples plus a summary — or, with no
//! argument, synthesize a demo capture first and then analyze it
//! (exercising the full pcap write → read → parse → measure path).
//!
//! ```text
//! cargo run --example pcap_rtt [capture.pcap] [internal-prefix]
//! ```
//!
//! `internal-prefix` (default `10.0.0.0/8`) tells the monitor which side of
//! the capture is "inside"; data flowing away from it is measured on the
//! external leg.

use dart::analytics::RttDistribution;
use dart::core::{DartConfig, DartEngine, RttSample};
use dart::packet::parse::PrefixClassifier;
use dart::sim::replay::{dump_pcap, load_pcap};
use dart::sim::scenario::{campus, CampusConfig};
use std::net::Ipv4Addr;

fn parse_prefix(s: &str) -> (Ipv4Addr, u8) {
    let (addr, len) = s.split_once('/').unwrap_or((s, "8"));
    (
        addr.parse().expect("bad prefix address"),
        len.parse().expect("bad prefix length"),
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next();
    let prefix = parse_prefix(&args.next().unwrap_or_else(|| "10.0.0.0/8".into()));
    let classifier = PrefixClassifier::new([prefix]);

    // Obtain capture bytes: from disk, or synthesized on the spot.
    let bytes = match &path {
        Some(p) => {
            println!("reading {p}");
            std::fs::read(p).expect("read pcap file")
        }
        None => {
            println!("no capture given — synthesizing a demo capture");
            let trace = campus(CampusConfig {
                connections: 120,
                duration: 3 * dart::packet::SECOND,
                ..CampusConfig::default()
            });
            let mut buf = Vec::new();
            dump_pcap(&trace.packets, &mut buf).expect("encode pcap");
            println!(
                "synthesized {} packets ({} bytes of pcap)",
                trace.len(),
                buf.len()
            );
            buf
        }
    };

    let (packets, skipped) = load_pcap(&bytes[..], &classifier).expect("parse pcap");
    println!(
        "parsed {} TCP packets ({skipped} non-TCP/unsupported skipped)\n",
        packets.len()
    );

    let mut dart = DartEngine::new(DartConfig::default().with_rt(1 << 14).with_pt(1 << 13, 1));
    let mut samples: Vec<RttSample> = Vec::new();
    let mut shown = 0;
    for p in &packets {
        let before = samples.len();
        dart.process(p, &mut samples);
        if samples.len() > before && shown < 10 {
            let s = samples.last().unwrap();
            println!(
                "[{:10.6}s] {} rtt={:.3} ms",
                s.ts as f64 / 1e9,
                s.flow,
                s.rtt_ms()
            );
            shown += 1;
        }
    }
    dart.flush();
    if samples.len() > shown {
        println!("... and {} more samples", samples.len() - shown);
    }

    let mut dist = RttDistribution::from_samples(samples.iter().map(|s| s.rtt));
    println!("\nsummary:");
    println!("  samples : {}", dist.len());
    for (label, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0)] {
        if let Some(v) = dist.percentile(p) {
            println!("  {label}     : {:.3} ms", v as f64 / 1e6);
        }
    }
    let stats = dart.stats();
    println!(
        "  tracked : {} data packets, {} retransmissions refused, {} recirculations",
        stats.seq_tracked, stats.seq_retransmission, stats.recirc_issued
    );
}
